//! The generalized RLA (§5.3): receivers at very different distances.
//!
//! Compares the `Equal` pthresh policy against the paper's RTT-scaled
//! `f(x) = x²` policy on the figure-10 topology, where 9 of the 36
//! receivers sit at a 30 ms RTT and 27 at 230 ms. The scaled policy
//! mostly ignores congestion signals from the near receivers, matching
//! TCP's own bias toward short connections.
//!
//! ```text
//! cargo run --release --example unequal_rtt -- [secs]
//! ```

use bounded_fairness::experiments::{CongestionCase, GatewayKind, TreeScenario};
use bounded_fairness::prelude::*;

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0);

    for (name, policy) in [
        ("Equal (pthresh = 1/n)", PthreshPolicy::Equal),
        (
            "RTT-scaled (pthresh = (rtt/rtt_max)^2 / n)",
            PthreshPolicy::paper_rtt_scaled(),
        ),
    ] {
        let mut scenario =
            TreeScenario::paper(CongestionCase::Fig10AllLevel3, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs_f64(secs));
        scenario.rla_config.pthresh_policy = policy;
        let result = scenario.run();
        let rla = &result.rla[0];
        println!("{name}:");
        println!(
            "  RLA {:>7.1} pkt/s  cwnd {:>5.1}  cuts {} of {} signals",
            rla.throughput_pps, rla.cwnd_avg, rla.window_cuts, rla.cong_signals
        );
        println!(
            "  TCP worst {:.1} / best {:.1} pkt/s\n",
            result.worst_tcp().expect("tcp").throughput_pps,
            result.best_tcp().expect("tcp").throughput_pps
        );
    }
    println!("expected shape: the RTT-scaled policy lifts the multicast throughput");
    println!("(the paper reports 161.6 pkt/s on this case) without starving TCP.");
}
