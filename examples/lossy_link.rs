//! Reliable multicast over faulty branches: fault injection plus the
//! RLA's retransmission machinery (multicast vs unicast repair).
//!
//! One branch takes heavy random loss; the session keeps every receiver's
//! in-order stream complete, and the repair strategy switches between
//! multicast and unicast depending on `rexmit_threshold` (footnote 8).
//!
//! ```text
//! cargo run --release --example lossy_link -- [drop_percent] [rexmit_threshold]
//! ```

use bounded_fairness::prelude::*;
use bounded_fairness::rla::McastReceiver as Rx;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let drop_pct: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let threshold: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    let mut engine = Engine::new(9);
    let queue = QueueConfig::paper_droptail();
    let root = engine.add_node("S");
    let group = engine.new_group();
    let mut receivers = Vec::new();
    let mut lossy_channel = None;
    for i in 0..6 {
        let leaf = engine.add_node(format!("R{}", i + 1));
        let (down, _) =
            engine.add_link(root, leaf, 8_000_000, SimDuration::from_millis(20), &queue);
        if i == 0 {
            lossy_channel = Some(down);
        }
        let rx = engine.add_agent(leaf, Box::new(Rx::new(40)));
        engine.join_group(group, rx);
        engine.set_send_overhead(rx, SimDuration::from_millis(1));
        receivers.push(rx);
    }
    let cfg = RlaConfig {
        rexmit_threshold: threshold,
        ..RlaConfig::default()
    };
    let tx = engine.add_agent(root, Box::new(RlaSender::new(group, cfg)));
    engine.compute_routes();
    engine.build_group_tree(group, root);
    engine.set_fault(
        lossy_channel.expect("lossy branch"),
        FaultInjector::new(drop_pct / 100.0).data_only(),
    );
    engine.start_agent_at(tx, SimTime::ZERO);

    println!("6 receivers, branch 1 dropping {drop_pct}% of data, rexmit_threshold = {threshold}");
    engine.run_until(SimTime::from_secs(60));

    let sender = engine.agent_as::<RlaSender>(tx).expect("sender");
    println!(
        "\nsender: {} packets acked by all ({:.1} pkt/s), {} multicast + {} unicast repairs, {} timeouts",
        sender.stats.delivered,
        sender.stats.throughput_pps(engine.now()),
        sender.stats.retransmits_multicast,
        sender.stats.retransmits_unicast,
        sender.stats.timeouts,
    );
    let reach = sender.max_reach_all();
    let mut complete = true;
    for (i, &rx) in receivers.iter().enumerate() {
        let r = engine.agent_as::<Rx>(rx).expect("receiver");
        complete &= r.cum_ack() >= reach;
        println!(
            "receiver {}: in-order prefix {:>6}  arrivals {:>6}  duplicates {:>5}",
            i + 1,
            r.cum_ack(),
            r.stats.arrivals,
            r.stats.duplicates
        );
    }
    println!(
        "\nreliability: every receiver holds the full prefix [0, {reach}): {}",
        if complete { "yes" } else { "NO" }
    );
    println!("try: --example lossy_link -- 10 5   (unicast repairs: fewer duplicates)");
}
