//! Quickstart: one RLA multicast session vs one TCP connection per branch
//! over a small drop-tail star — the paper's problem in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bounded_fairness::prelude::*;

fn main() {
    let mut engine = Engine::new(42);
    let queue = QueueConfig::paper_droptail();

    // A star: the sender S, nine receivers, 200 pkt/s branches.
    // Each branch carries 1 TCP + the multicast -> fair share 100 pkt/s.
    let root = engine.add_node("S");
    let group = engine.new_group();
    let mut tcp = Vec::new();
    let mut mcast_rx = Vec::new();
    for i in 0..9 {
        let leaf = engine.add_node(format!("R{}", i + 1));
        engine.add_link(root, leaf, 1_600_000, SimDuration::from_millis(40), &queue);
        let mrx = engine.add_agent(leaf, Box::new(McastReceiver::new(40)));
        engine.join_group(group, mrx);
        engine.set_send_overhead(mrx, SimDuration::from_millis(2));
        mcast_rx.push(mrx);
        let trx = engine.add_agent(leaf, Box::new(TcpReceiver::new(40)));
        engine.set_send_overhead(trx, SimDuration::from_millis(2));
        let ttx = engine.add_agent(root, Box::new(TcpSender::new(trx, TcpConfig::default())));
        tcp.push((ttx, trx));
    }
    let rla_tx = engine.add_agent(root, Box::new(RlaSender::new(group, RlaConfig::default())));

    engine.compute_routes();
    engine.build_group_tree(group, root);

    // Random processing overhead (one bottleneck service time) kills the
    // drop-tail phase effect, per the paper's §3.1.
    let overhead = SimDuration::from_nanos(netsim::packet::tx_nanos(1000, 1_600_000));
    for (i, &(ttx, _)) in tcp.iter().enumerate() {
        engine.set_send_overhead(ttx, overhead);
        engine.start_agent_at(ttx, SimTime::from_millis(137 * i as u64));
    }
    engine.set_send_overhead(rla_tx, overhead);
    engine.start_agent_at(rla_tx, SimTime::from_secs(1));

    println!("running 300 simulated seconds...");
    engine.run_until(SimTime::from_secs(300));

    let rla = engine.agent_as::<RlaSender>(rla_tx).expect("rla sender");
    let now = engine.now();
    println!("\nRLA session:");
    println!("  throughput {:>6.1} pkt/s", rla.stats.throughput_pps(now));
    println!(
        "  avg window {:>6.1} packets",
        rla.stats.cwnd_avg.average(now)
    );
    println!(
        "  {} congestion signals -> {} window cuts ({} forced)",
        rla.stats.cong_signals,
        rla.stats.window_cuts(),
        rla.stats.forced_cuts
    );

    let mut worst = f64::INFINITY;
    let mut best: f64 = 0.0;
    for &(_, trx) in &tcp {
        let rate = engine
            .agent_as::<TcpReceiver>(trx)
            .expect("tcp receiver")
            .stats
            .delivered as f64
            / now.as_secs_f64();
        worst = worst.min(rate);
        best = best.max(rate);
    }
    println!("\ncompeting TCP: worst {worst:.1}, best {best:.1} pkt/s");

    let ratio = rla.stats.throughput_pps(now) / worst;
    let bounds = FairnessBounds::theorem2_droptail(9);
    println!(
        "\nessential fairness: ratio {:.2} vs Theorem II bounds [{:.2}, {:.1}] -> {}",
        ratio,
        bounds.a,
        bounds.b,
        if bounds.contains(rla.stats.throughput_pps(now), worst) {
            "fair"
        } else {
            "VIOLATED"
        }
    );
}
