//! The paper's full four-level tertiary tree, one case at a time.
//!
//! ```text
//! cargo run --release --example tertiary_tree -- [1-5] [droptail|red] [secs]
//! ```
//!
//! Runs the chosen figure-7/9 column and prints the table row plus the
//! essential-fairness verdict.

use bounded_fairness::experiments::{CongestionCase, GatewayKind, TreeScenario};
use bounded_fairness::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case = match args.get(1).map(String::as_str) {
        Some("1") | None => CongestionCase::Case1RootLink,
        Some("2") => CongestionCase::Case2AllLevel3,
        Some("3") => CongestionCase::Case3AllLeaves,
        Some("4") => CongestionCase::Case4FiveLeaves,
        Some("5") => CongestionCase::Case5OneLevel2,
        Some(other) => {
            eprintln!("unknown case {other:?}; use 1-5");
            std::process::exit(2);
        }
    };
    let gateway = match args.get(2).map(String::as_str) {
        Some("red") => GatewayKind::Red,
        _ => GatewayKind::DropTail,
    };
    let secs: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(300.0);

    println!(
        "case {:?} ({}), {} gateways, {secs:.0} s",
        case,
        case.label(),
        match gateway {
            GatewayKind::Red => "RED",
            GatewayKind::DropTail => "drop-tail",
        }
    );
    let result = TreeScenario::paper(case, gateway)
        .with_duration(SimDuration::from_secs_f64(secs))
        .run();

    let rla = &result.rla[0];
    println!(
        "\nRLA : {:>7.1} pkt/s  cwnd {:>5.1}  rtt {:.3}s  signals {}  cuts {} (forced {})",
        rla.throughput_pps,
        rla.cwnd_avg,
        rla.rtt_avg,
        rla.cong_signals,
        rla.window_cuts,
        rla.forced_cuts
    );
    let w = result.worst_tcp().expect("tcp");
    let b = result.best_tcp().expect("tcp");
    println!(
        "WTCP: {:>7.1} pkt/s  cwnd {:>5.1}  rtt {:.3}s  cuts {}",
        w.throughput_pps, w.cwnd_avg, w.rtt_avg, w.window_cuts
    );
    println!(
        "BTCP: {:>7.1} pkt/s  cwnd {:>5.1}  rtt {:.3}s  cuts {}",
        b.throughput_pps, b.cwnd_avg, b.rtt_avg, b.window_cuts
    );

    let bounds = match gateway {
        GatewayKind::Red => FairnessBounds::theorem1_red(27),
        GatewayKind::DropTail => FairnessBounds::theorem2_droptail(27),
    };
    let tcp_star = result.bottleneck_tcp_throughput();
    let check = FairnessCheck::evaluate(rla.throughput_pps, tcp_star, bounds);
    println!(
        "\nessential fairness vs soft-bottleneck TCP ({tcp_star:.1} pkt/s): ratio {:.2} in [{:.2}, {:.1}] -> {}",
        check.ratio,
        bounds.a,
        bounds.b,
        if check.fair { "fair" } else { "VIOLATED" }
    );
}
