//! Multicast fairness (§4.4 / §5.2): several RLA sessions from the same
//! sender to the same receivers split the bandwidth evenly.
//!
//! ```text
//! cargo run --release --example multi_session -- [sessions] [secs]
//! ```

use bounded_fairness::experiments::{CongestionCase, GatewayKind, TreeScenario};
use netsim::time::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sessions: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300.0);
    assert!((1..=4).contains(&sessions), "1-4 sessions supported");

    println!("{sessions} overlapping RLA sessions on the case-3 tree, {secs:.0} s...");
    let mut scenario = TreeScenario::paper(CongestionCase::Case3AllLeaves, GatewayKind::DropTail)
        .with_duration(SimDuration::from_secs_f64(secs));
    scenario.rla_sessions = sessions;
    let result = scenario.run();

    let total: f64 = result.rla.iter().map(|r| r.throughput_pps).sum();
    println!(
        "\n{:>9} {:>12} {:>10} {:>8}",
        "session", "pkt/s", "share", "cwnd"
    );
    for (i, r) in result.rla.iter().enumerate() {
        println!(
            "{:>9} {:>12.1} {:>9.1}% {:>8.1}",
            i + 1,
            r.throughput_pps,
            100.0 * r.throughput_pps / total,
            r.cwnd_avg
        );
    }
    let min = result
        .rla
        .iter()
        .map(|r| r.throughput_pps)
        .fold(f64::INFINITY, f64::min);
    let max = result
        .rla
        .iter()
        .map(|r| r.throughput_pps)
        .fold(0.0, f64::max);
    println!(
        "\nmax/min across sessions: {:.2} (1.0 = perfect)",
        max / min
    );
    println!(
        "competing TCP: worst {:.1}, best {:.1} pkt/s",
        result.worst_tcp().expect("tcp").throughput_pps,
        result.best_tcp().expect("tcp").throughput_pps
    );
}
