//! Golden-digest regression: five short scenarios pinned to committed
//! manifests under `results/golden/` — the two static paper runs, the
//! two canonical *dynamic* runs (scheduled receiver churn with a link
//! degrade, and Poisson background load) pinning the event-executor's
//! digest determinism, and a CUBIC-background run pinning the v2
//! congestion-control surface (signals bookkeeping, registry-built
//! senders, the cubic window math).
//!
//! The digests cover the *entire* packet-event stream (every enqueue,
//! drop, transmission start, arrival and delivery with its timestamp), so
//! any change to the engine, the queues, the transports or the RNG that
//! shifts even one packet by one nanosecond fails these tests. Behavioural
//! changes are fine — regenerate with
//! `cargo test --test golden_digests -- --ignored regenerate` and commit
//! the new manifests with an explanation.

use std::cell::RefCell;
use std::rc::Rc;

use bounded_fairness::experiments::diff::{diff_manifests, render_table, DiffOptions};
use bounded_fairness::experiments::events::{canonical_bgload_spec, canonical_churn_spec};
use bounded_fairness::experiments::manifest::{scenario_manifest, Json};
use bounded_fairness::experiments::{CongestionCase, GatewayKind, ScenarioResult, TreeScenario};
use netsim::time::SimDuration;
use telemetry::{FlightDumpGuard, FlightRecorder};

/// The pinned scenario behind each committed golden manifest.
fn scenario_for(name: &str) -> TreeScenario {
    match name {
        "case5_droptail_60s" => {
            TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(60))
                .with_seed(1)
        }
        "case5_red_60s" => TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::Red)
            .with_duration(SimDuration::from_secs(60))
            .with_seed(1),
        "case5_droptail_churn_60s" => canonical_churn_spec().build(),
        "case5_droptail_bgload_60s" => canonical_bgload_spec().build(),
        "case5_droptail_cubic_60s" => {
            TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(60))
                .with_seed(1)
                .with_tcp_cc(
                    bounded_fairness::tcp::CcVariant::parse("cubic").expect("cubic is registered"),
                )
        }
        other => panic!("no pinned scenario named {other:?}"),
    }
}

/// Runs the pinned scenario with a flight recorder installed as the
/// tracer: on a digest mismatch the last packet events of every channel
/// go to stderr with the failure, turning "the hash changed" into
/// something debuggable. The recorder cannot perturb the result — the
/// digest is computed independently of the tracer slot. Tracers are
/// single-threaded, so under `RLA_SHARDS` > 1 the run goes untraced —
/// the digests are identical either way, only the failure diagnostics
/// get thinner.
fn run_scenario(name: &str) -> (ScenarioResult, Option<Rc<RefCell<FlightRecorder>>>) {
    let scenario = scenario_for(name);
    let mut world = scenario.build();
    let recorder = (scenario.shards == 1).then(|| {
        let recorder = Rc::new(RefCell::new(FlightRecorder::new(
            telemetry::flight::DEFAULT_FLIGHT_DEPTH,
        )));
        world.engine.set_tracer(recorder.clone());
        recorder
    });
    (world.run(&scenario), recorder)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results/golden")
        .join(format!("{name}.manifest.json"))
}

/// Pull a string or integer field out of the committed JSON without a
/// parser: finds `"key": <value>` and returns the value, unquoted.
fn extract(json: &str, key: &str) -> String {
    let marker = format!("\"{key}\": ");
    let at = json
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in manifest"));
    let rest = &json[at + marker.len()..];
    let raw = rest.split([',', '\n']).next().expect("value after key");
    raw.trim().trim_matches('"').to_string()
}

/// On digest drift, diff the fresh run's registry against the committed
/// manifest so the failure names the metrics that moved ("retransmits
/// doubled on chan.L3.4") instead of just "hash mismatch". Degrades to a
/// one-line note when the committed manifest predates registry sections.
fn registry_diff_report(name: &str, committed: &str, r: &ScenarioResult) -> String {
    let baseline = match Json::parse(committed) {
        Ok(json) => json,
        Err(e) => return format!("(no registry diff: committed {name} manifest: {e})"),
    };
    let candidate = scenario_manifest(name, SimDuration::from_secs(60), std::slice::from_ref(r));
    match diff_manifests(&baseline, &candidate, &DiffOptions::default()) {
        Ok(d) if d.has_drift() => format!(
            "registry diff, committed golden -> this run:\n{}",
            render_table(&d)
        ),
        Ok(_) => "registry diff: no metric moved beyond the default threshold \
                  (the drift is in event timing only)"
            .to_string(),
        Err(e) => format!("(no registry diff: {e})"),
    }
}

fn check(name: &str) {
    let committed = std::fs::read_to_string(golden_path(name)).unwrap_or_else(|e| {
        panic!("missing committed golden manifest {name}: {e}; regenerate with `cargo test --test golden_digests -- --ignored regenerate`")
    });
    let (r, recorder) = run_scenario(name);
    // Dumps the ring to stderr iff one of the asserts below panics.
    let _flight = recorder.map(|rec| FlightDumpGuard::new(name, rec));
    let got_digest = format!("{:016x}", r.trace_digest);
    let want_digest = extract(&committed, "trace_digest");
    if got_digest != want_digest {
        eprintln!("{}", registry_diff_report(name, &committed, &r));
        panic!(
            "{name}: trace digest drifted from the committed manifest \
             (got {got_digest}, committed {want_digest}) — the registry diff \
             above says which metrics moved; if the behaviour change is \
             intended, regenerate the goldens"
        );
    }
    assert_eq!(
        r.trace_events.to_string(),
        extract(&committed, "trace_events"),
        "{name}: event count drifted"
    );
    assert_eq!(r.seed.to_string(), extract(&committed, "seed"));
}

#[test]
fn case5_droptail_matches_committed_manifest() {
    check("case5_droptail_60s");
}

#[test]
fn case5_red_matches_committed_manifest() {
    check("case5_red_60s");
}

#[test]
fn case5_droptail_churn_matches_committed_manifest() {
    check("case5_droptail_churn_60s");
}

#[test]
fn case5_droptail_bgload_matches_committed_manifest() {
    check("case5_droptail_bgload_60s");
}

#[test]
fn case5_droptail_cubic_matches_committed_manifest() {
    check("case5_droptail_cubic_60s");
}

/// Rewrites the committed goldens from the current code. Run explicitly
/// (`--ignored regenerate`) after an intended behavioural change.
#[test]
#[ignore]
fn regenerate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/golden");
    std::fs::create_dir_all(&dir).expect("create results/golden");
    for name in [
        "case5_droptail_60s",
        "case5_red_60s",
        "case5_droptail_churn_60s",
        "case5_droptail_bgload_60s",
        "case5_droptail_cubic_60s",
    ] {
        let (r, _) = run_scenario(name);
        let json = scenario_manifest(name, SimDuration::from_secs(60), std::slice::from_ref(&r));
        let path = dir.join(format!("{name}.manifest.json"));
        std::fs::write(&path, json.pretty()).expect("write golden");
        eprintln!("wrote {}", path.display());
    }
}
