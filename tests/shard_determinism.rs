//! Property tests for the domain-partitioned engine's determinism.
//!
//! The contract `RLA_SHARDS` stands on: the shard count is a pure
//! wall-clock knob. The fine θ-partition — per-region RNG streams, uid
//! tags and digest lanes — is a function of (topology, seed, θ) alone;
//! `RLA_SHARDS` only picks how the cost-aware merge pass groups those
//! regions into execution domains and how many workers walk them. A
//! scenario's digest must therefore be bit-identical at every shard
//! count — for static paper runs and for dynamic runs whose event
//! stream mutates the agent population mid-flight (churn) or injects
//! Poisson background flows (bgload). A single nanosecond of drift
//! anywhere in the merge pass or the batched boundary exchange fails
//! these properties.

use bounded_fairness::experiments::events::ScenarioEvent;
use bounded_fairness::experiments::{CongestionCase, GatewayKind, ScenarioSpec, TreeScenario};
use netsim::time::SimDuration;
use proptest::prelude::*;

/// Runs one scenario at the given worker count and returns the pair the
/// golden manifests pin: (trace digest, event count).
fn run_with_shards(spec: &ScenarioSpec, shards: usize) -> (u64, u64) {
    let scenario: TreeScenario = spec.build().with_shards(shards);
    let mut world = scenario.build();
    let r = world.run(&scenario);
    (r.trace_digest, r.trace_events)
}

/// Digest at every pinned shard count — including 1, where the merge
/// pass collapses the fine partition to a single domain, and 8, where it
/// leaves most regions uncoalesced; the property asserts these agree.
fn across_shards(spec: &ScenarioSpec) -> Vec<(u64, u64)> {
    [1, 2, 4, 8]
        .iter()
        .map(|&s| run_with_shards(spec, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn static_digests_are_identical_across_shard_counts(
        seed in 0u64..1000,
        red in any::<bool>(),
    ) {
        let gateway = if red { GatewayKind::Red } else { GatewayKind::DropTail };
        let spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_gateway(gateway)
            .with_duration(SimDuration::from_secs(8))
            .with_seed(seed);
        let runs = across_shards(&spec);
        prop_assert_eq!(runs[0], runs[1]);
        prop_assert_eq!(runs[0], runs[2]);
        prop_assert_eq!(runs[0], runs[3]);
    }

    #[test]
    fn churn_digests_are_identical_across_shard_counts(
        seed in 0u64..1000,
        rate in 0.1f64..0.8,
    ) {
        // The pinned degrade keeps the run non-vacuous when the Poisson
        // draw lands zero synthesized membership events; mid-run joins
        // add agents to live domain shards, which is exactly the path a
        // shard-count leak would corrupt.
        let spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(10))
            .with_seed(seed)
            .with_churn_rate(rate)
            .with_event(ScenarioEvent::degrade(5.0, "L4.20", 0.05, None));
        let runs = across_shards(&spec);
        prop_assert_eq!(runs[0], runs[1]);
        prop_assert_eq!(runs[0], runs[2]);
        prop_assert_eq!(runs[0], runs[3]);
    }

    #[test]
    fn bgload_digests_are_identical_across_shard_counts(
        seed in 0u64..1000,
        flows_per_sec in 0.5f64..4.0,
    ) {
        let spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(8))
            .with_seed(seed)
            .with_background_load(flows_per_sec, 60.0);
        let runs = across_shards(&spec);
        prop_assert_eq!(runs[0], runs[1]);
        prop_assert_eq!(runs[0], runs[2]);
        prop_assert_eq!(runs[0], runs[3]);
    }
}
