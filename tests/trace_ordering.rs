//! Property test for [`Tracer`] event ordering: on every channel the
//! `qlen` fields carried by Enqueue/Drop/TxStart events must be
//! self-consistent — each event's occupancy follows from the previous
//! one — even under multicast fan-out, where one injected packet turns
//! into many per-channel event streams.
//!
//! The model per channel is a single counter `q`:
//!
//! * `Enqueue { qlen }` reports the length *after* insertion, so
//!   `qlen == q + 1`;
//! * `Drop { qlen }` leaves the buffer untouched (tail, early and fault
//!   drops all discard the *offered* packet), so `qlen == q`;
//! * `TxStart { qlen }` reports the length *after* removal: either the
//!   transmitter was idle and the packet bypassed the buffer
//!   (`q == 0 && qlen == 0`) or it was pulled off the queue
//!   (`qlen == q - 1`).
//!
//! A second invariant ties the pluggable tracer to the always-on
//! digest: the per-kind event counts seen through the `Tracer` trait
//! must equal the engine's `TraceDigest` counters.

use std::cell::RefCell;
use std::rc::Rc;

use bounded_fairness::prelude::*;
use netsim::trace::{TraceEvent, Tracer};
use proptest::prelude::*;

/// Replays the documented qlen transitions and records any event that
/// contradicts them (violations are collected, not asserted, because
/// `trace` runs inside the engine's hot loop).
#[derive(Default)]
struct QlenModel {
    q: Vec<usize>,
    enqueues: u64,
    drops: u64,
    tx_starts: u64,
    violations: Vec<String>,
}

impl QlenModel {
    fn occupancy(&mut self, ch: netsim::id::ChannelId) -> usize {
        let i = ch.index();
        if self.q.len() <= i {
            self.q.resize(i + 1, 0);
        }
        self.q[i]
    }
}

impl Tracer for QlenModel {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue { channel, qlen, .. } => {
                self.enqueues += 1;
                let q = self.occupancy(*channel);
                if *qlen != q + 1 {
                    self.violations.push(format!(
                        "t={now:?} {channel:?}: enqueue to qlen {qlen}, expected {}",
                        q + 1
                    ));
                }
                self.q[channel.index()] = *qlen;
            }
            TraceEvent::Drop {
                channel,
                qlen,
                reason,
                ..
            } => {
                self.drops += 1;
                let q = self.occupancy(*channel);
                if *qlen != q {
                    self.violations.push(format!(
                        "t={now:?} {channel:?}: {reason:?} drop at qlen {qlen}, model has {q}"
                    ));
                }
            }
            TraceEvent::TxStart { channel, qlen, .. } => {
                self.tx_starts += 1;
                let q = self.occupancy(*channel);
                let direct = q == 0 && *qlen == 0;
                let dequeued = *qlen + 1 == q;
                if !(direct || dequeued) {
                    self.violations.push(format!(
                        "t={now:?} {channel:?}: tx start at qlen {qlen}, model has {q}"
                    ));
                }
                self.q[channel.index()] = *qlen;
            }
            TraceEvent::Arrive { .. } | TraceEvent::Deliver { .. } => {}
        }
    }
}

/// A random multicast tree under blaster load, with the model installed
/// as the run's tracer.
fn run_traced_tree(
    seed: u64,
    arity: usize,
    depth: usize,
    bandwidth_kbps: u64,
    count: u32,
    limit: usize,
) -> Result<(), TestCaseError> {
    use netsim::agent::Sink;
    use netsim::topology::{kary_tree, LinkSpec};

    let mut engine = Engine::new(seed);
    let spec = LinkSpec::new(
        bandwidth_kbps * 1000,
        SimDuration::from_millis(5),
        QueueConfig::DropTail { limit },
    );
    let specs = vec![spec; depth];
    let tree = kary_tree(&mut engine, arity, &specs);
    let group = engine.new_group();
    for &leaf in tree.leaves().iter() {
        let s = engine.add_agent(leaf, Box::new(Sink::default()));
        engine.join_group(group, s);
    }

    struct Blaster {
        group: GroupId,
        count: u32,
    }
    impl netsim::agent::Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(Dest::Group(self.group), 1000, Segment::Raw);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let blaster = engine.add_agent(tree.root, Box::new(Blaster { group, count }));
    engine.compute_routes();
    engine.build_group_tree(group, tree.root);
    engine.start_agent_at(blaster, SimTime::ZERO);

    let model = Rc::new(RefCell::new(QlenModel::default()));
    engine.set_tracer(model.clone());
    engine.run_until(SimTime::from_secs(120));

    let model = model.borrow();
    prop_assert!(
        model.violations.is_empty(),
        "{} qlen inconsistencies, first: {}",
        model.violations.len(),
        model.violations[0]
    );
    // The tracer and the always-on digest watched the same stream.
    let digest = engine.trace_digest();
    prop_assert_eq!(model.enqueues, digest.enqueues);
    prop_assert_eq!(model.drops, digest.drops);
    prop_assert_eq!(model.tx_starts, digest.tx_starts);
    // Fan-out sanity: multicast duplication means channels saw at least
    // as many transmissions as injected packets (the root link alone
    // carries all of them).
    prop_assert!(digest.tx_starts >= count as u64 - digest.drops.min(count as u64));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qlen_fields_are_self_consistent_under_fanout(
        seed in 0u64..1000,
        arity in 1usize..4,
        depth in 1usize..4,
        bandwidth_kbps in 100u64..10_000,
        count in 1u32..200,
        limit in 1usize..32,
    ) {
        run_traced_tree(seed, arity, depth, bandwidth_kbps, count, limit)?;
    }
}
