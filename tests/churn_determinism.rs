//! Property tests for the scenario-event layer's determinism.
//!
//! Two guarantees the dynamic scenarios stand on:
//!
//! 1. **Pool independence** — a churn scenario's trace digest is a pure
//!    function of its spec: the worker-pool size used to run a sweep
//!    (`RLA_JOBS`) must never leak into results, exactly as
//!    `run_parallel`'s contract states for static runs.
//! 2. **FIFO tie-break** — events sharing a timestamp apply in schedule
//!    order. The property is pinned with a schedule that is only *valid*
//!    in FIFO order: a leave and a rejoin of the same leaf at the same
//!    instant. If the executor (or the spec builder's sort) ever
//!    reordered equal timestamps, the join would fire against a
//!    still-live receiver and panic instead of reproducing the digest.

use bounded_fairness::experiments::events::ScenarioEvent;
use bounded_fairness::experiments::{
    run_parallel_with_jobs, CongestionCase, ScenarioSpec, TreeScenario,
};
use netsim::time::SimDuration;
use proptest::prelude::*;

/// A short case-5 drop-tail run with synthesized churn.
fn churn_scenario(seed: u64, rate: f64, extra: Vec<ScenarioEvent>) -> TreeScenario {
    ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
        .with_duration(SimDuration::from_secs(40))
        .with_seed(seed)
        .with_churn_rate(rate)
        .with_events(extra)
        .build()
}

fn digests(results: &[bounded_fairness::experiments::ScenarioResult]) -> Vec<(u64, u64)> {
    results
        .iter()
        .map(|r| (r.trace_digest, r.trace_events))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn churn_digests_are_identical_across_pool_sizes(
        seed in 0u64..100,
        rate in 0.05f64..0.8,
        jobs_a in 1usize..4,
        jobs_b in 1usize..4,
    ) {
        // One pinned link event keeps the property non-vacuous even when
        // the Poisson draw for a low rate lands zero synthesized events
        // (a membership event here could collide with the synthesized
        // leave/rejoin stream; a degrade never does).
        let pinned = vec![ScenarioEvent::degrade(25.0, "L4.20", 0.05, None)];
        let batch = || vec![
            churn_scenario(seed, rate, pinned.clone()),
            churn_scenario(seed.wrapping_add(17), rate, pinned.clone()),
        ];
        let a = run_parallel_with_jobs(batch(), jobs_a);
        let b = run_parallel_with_jobs(batch(), jobs_b);
        prop_assert_eq!(digests(&a), digests(&b));
        prop_assert!(!a[0].events.is_empty(), "schedule went missing");
    }

    #[test]
    fn equal_timestamp_events_apply_in_schedule_order(
        seed in 0u64..100,
        leaf in 0usize..27,
        t_frac in 0.55f64..0.95,
        jobs in 1usize..4,
    ) {
        // Both events at the same instant; only leave-before-join is a
        // valid order. Scheduling them behind an earlier unrelated event
        // exercises the stable sort as well as the executor's drain loop.
        let t = 40.0 * t_frac;
        let extra = vec![
            ScenarioEvent::degrade(21.0, "L2.1", 0.02, None),
            ScenarioEvent::leave(t, 0, leaf),
            ScenarioEvent::join(t, 0, leaf),
        ];
        let batch = || vec![churn_scenario(seed, 0.0, extra.clone())];
        let a = run_parallel_with_jobs(batch(), jobs);
        let b = run_parallel_with_jobs(batch(), 1);
        prop_assert_eq!(digests(&a), digests(&b));
    }
}
