//! Reproducibility: the whole stack is bit-deterministic per seed.

use bounded_fairness::experiments::{
    run_parallel_with_jobs, CongestionCase, GatewayKind, TreeScenario,
};
use netsim::time::SimDuration;

fn fingerprint(seed: u64) -> (u64, u64, u64, Vec<u64>, String) {
    let r = TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
        .with_duration(SimDuration::from_secs(80))
        .with_seed(seed)
        .run();
    (
        r.rla[0].cong_signals,
        r.rla[0].window_cuts,
        r.tcp.iter().map(|t| t.window_cuts).sum(),
        r.rla[0].cong_signals_per_receiver.clone(),
        format!(
            "{:.6}|{:.6}",
            r.rla[0].throughput_pps,
            r.avg_tcp_throughput()
        ),
    )
}

#[test]
fn same_seed_same_everything() {
    assert_eq!(fingerprint(1), fingerprint(1));
}

#[test]
fn different_seeds_differ() {
    // Not a strict requirement, but if two seeds produced identical
    // detailed traces the RNG would not be wired through.
    let a = fingerprint(1);
    let b = fingerprint(2);
    assert_ne!(a.4, b.4, "seeds 1 and 2 produced identical throughputs");
}

#[test]
fn trace_digest_identical_sequential_vs_pooled() {
    // The tentpole guarantee: the worker pool returns the same packet
    // event stream — not just the same headline metrics — as running
    // each scenario inline, for any pool size.
    let make = |seed| {
        TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(60))
            .with_seed(seed)
    };
    let sequential: Vec<(u64, u64)> = (1..=3)
        .map(|s| {
            let r = make(s).run();
            (r.trace_digest, r.trace_events)
        })
        .collect();
    assert!(sequential[0].1 > 0, "a 60 s run must trace events");
    assert_ne!(
        sequential[0].0, sequential[1].0,
        "different seeds must give different digests"
    );
    for jobs in [1, 2, 4] {
        let pooled = run_parallel_with_jobs((1..=3).map(make).collect(), jobs);
        let got: Vec<(u64, u64)> = pooled
            .iter()
            .map(|r| (r.trace_digest, r.trace_events))
            .collect();
        assert_eq!(got, sequential, "jobs = {jobs} changed the event stream");
    }
}

#[test]
fn trace_digest_stable_under_red() {
    // RED draws from the engine RNG per enqueue; digests must still
    // reproduce exactly.
    let run = || {
        TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::Red)
            .with_duration(SimDuration::from_secs(60))
            .run()
            .trace_digest
    };
    assert_eq!(run(), run());
}

#[test]
fn determinism_holds_under_red_randomness() {
    // RED consumes RNG draws on a different schedule; determinism must
    // still hold exactly.
    let run = || {
        let r = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::Red)
            .with_duration(SimDuration::from_secs(60))
            .run();
        (
            r.rla[0].cong_signals,
            r.rla[0].window_cuts,
            r.tcp[0].window_cuts,
        )
    };
    assert_eq!(run(), run());
}
