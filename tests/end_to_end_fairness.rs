//! Cross-crate integration: the RLA, TCP and the analysis bounds agree
//! end-to-end on small versions of the paper's scenarios.

use bounded_fairness::experiments::{CongestionCase, GatewayKind, TreeScenario};
use bounded_fairness::prelude::*;

fn quick(case: CongestionCase, gateway: GatewayKind, secs: u64) -> experiments::ScenarioResult {
    TreeScenario::paper(case, gateway)
        .with_duration(SimDuration::from_secs(secs))
        .run()
}

#[test]
fn droptail_cases_satisfy_theorem2() {
    for case in [
        CongestionCase::Case1RootLink,
        CongestionCase::Case3AllLeaves,
        CongestionCase::Case5OneLevel2,
    ] {
        let r = quick(case, GatewayKind::DropTail, 150);
        let bounds = FairnessBounds::theorem2_droptail(27);
        let tcp = r.bottleneck_tcp_throughput();
        assert!(
            bounds.contains(r.rla[0].throughput_pps, tcp),
            "{}: rla {:.1} vs tcp {:.1} outside [{}, {}]",
            r.case_label,
            r.rla[0].throughput_pps,
            tcp,
            bounds.a,
            bounds.b
        );
    }
}

#[test]
fn red_cases_satisfy_theorem1() {
    for case in [
        CongestionCase::Case1RootLink,
        CongestionCase::Case3AllLeaves,
    ] {
        let r = quick(case, GatewayKind::Red, 150);
        let bounds = FairnessBounds::theorem1_red(27);
        let tcp = r.bottleneck_tcp_throughput();
        assert!(
            bounds.contains(r.rla[0].throughput_pps, tcp),
            "{}: rla {:.1} vs tcp {:.1}",
            r.case_label,
            r.rla[0].throughput_pps,
            tcp
        );
    }
}

#[test]
fn red_is_tighter_than_droptail_in_case1() {
    // Figure 9's headline: RED pulls case 1 toward absolute fairness.
    let dt = quick(CongestionCase::Case1RootLink, GatewayKind::DropTail, 200);
    let red = quick(CongestionCase::Case1RootLink, GatewayKind::Red, 200);
    let ratio = |r: &experiments::ScenarioResult| {
        (r.rla[0].throughput_pps / r.bottleneck_tcp_throughput() - 1.0).abs()
    };
    // Allow slack: short runs are noisy; RED must not be *worse*.
    assert!(
        ratio(&red) <= ratio(&dt) + 0.35,
        "RED |ratio-1| {:.2} vs drop-tail {:.2}",
        ratio(&red),
        ratio(&dt)
    );
}

#[test]
fn nobody_is_shut_out() {
    // The minimum requirement of §2.1: TCP survives, multicast survives.
    for gateway in [GatewayKind::DropTail, GatewayKind::Red] {
        let r = quick(CongestionCase::Case2AllLevel3, gateway, 150);
        assert!(r.rla[0].throughput_pps > 10.0, "multicast starved");
        assert!(
            r.worst_tcp().expect("tcp").throughput_pps > 10.0,
            "TCP shut out"
        );
    }
}

#[test]
fn correlation_ordering_of_window_sizes() {
    // The §4.2 Lemma in the full simulator: correlated losses (case 1)
    // give the RLA a larger average window than independent losses
    // (case 3). RED keeps the comparison clean of phase artifacts.
    let c1 = quick(CongestionCase::Case1RootLink, GatewayKind::Red, 250);
    let c3 = quick(CongestionCase::Case3AllLeaves, GatewayKind::Red, 250);
    assert!(
        c1.rla[0].cwnd_avg > c3.rla[0].cwnd_avg * 0.9,
        "case1 cwnd {:.1} should not be below case3 cwnd {:.1}",
        c1.rla[0].cwnd_avg,
        c3.rla[0].cwnd_avg
    );
}

#[test]
fn window_cuts_track_signals_over_n() {
    let r = quick(CongestionCase::Case3AllLeaves, GatewayKind::DropTail, 200);
    let rla = &r.rla[0];
    let per_cut = rla.cong_signals as f64 / rla.window_cuts.max(1) as f64;
    assert!(
        per_cut > 9.0 && per_cut < 81.0,
        "signals per cut {per_cut} should be near n = 27"
    );
}
