//! Property-based cross-crate invariants: random topologies and loads
//! must never violate conservation or routing guarantees.

use bounded_fairness::prelude::*;
use proptest::prelude::*;

/// A random small tree with blaster traffic; checks packet conservation
/// on every channel: offered = accepted + drops; accepted ≈ transmitted +
/// still queued/in service.
fn run_random_tree(
    seed: u64,
    arity: usize,
    depth: usize,
    bandwidth_kbps: u64,
    count: u32,
) -> Result<(), TestCaseError> {
    use netsim::agent::Sink;
    use netsim::topology::{kary_tree, LinkSpec};

    let mut engine = Engine::new(seed);
    let spec = LinkSpec::new(
        bandwidth_kbps * 1000,
        SimDuration::from_millis(5),
        QueueConfig::DropTail { limit: 10 },
    );
    let specs = vec![spec; depth];
    let tree = kary_tree(&mut engine, arity, &specs);
    let group = engine.new_group();
    let sinks: Vec<AgentId> = tree
        .leaves()
        .iter()
        .map(|&leaf| {
            let s = engine.add_agent(leaf, Box::new(Sink::default()));
            engine.join_group(group, s);
            s
        })
        .collect();

    struct Blaster {
        group: GroupId,
        count: u32,
    }
    impl netsim::agent::Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(Dest::Group(self.group), 1000, Segment::Raw);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let blaster = engine.add_agent(tree.root, Box::new(Blaster { group, count }));
    engine.compute_routes();
    engine.build_group_tree(group, tree.root);
    engine.start_agent_at(blaster, SimTime::ZERO);
    engine.run_until(SimTime::from_secs(120));

    // Conservation per channel.
    for i in 0..engine.world().channel_count() {
        let ch = engine.world().channel(netsim::id::ChannelId::from(i));
        prop_assert_eq!(
            ch.stats.offered,
            ch.stats.accepted + ch.stats.queue_drops() + ch.stats.fault_drops,
            "channel admission must partition"
        );
        prop_assert!(
            ch.stats.transmitted <= ch.stats.accepted,
            "cannot transmit more than accepted"
        );
        // After a long quiet period everything accepted has drained.
        prop_assert_eq!(ch.stats.transmitted, ch.stats.accepted);
    }

    // Every sink received the same number of packets, and no more than
    // were sent.
    let first = engine.agent_as::<Sink>(sinks[0]).expect("sink").received;
    prop_assert!(first <= count as u64);
    for &s in &sinks {
        let got = engine.agent_as::<Sink>(s).expect("sink").received;
        // Drops can differ per branch; each sink individually bounded.
        prop_assert!(got <= count as u64);
        let _ = got;
    }
    let _ = first;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multicast_conservation_on_random_trees(
        seed in 0u64..1000,
        arity in 1usize..4,
        depth in 1usize..4,
        bandwidth_kbps in 100u64..10_000,
        count in 1u32..200,
    ) {
        run_random_tree(seed, arity, depth, bandwidth_kbps, count)?;
    }

    #[test]
    fn pa_window_monotone_decreasing(p1 in 0.0005f64..0.3, p2 in 0.0005f64..0.3) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assume!(hi - lo > 1e-9);
        prop_assert!(analysis::pa_window(lo) >= analysis::pa_window(hi));
    }

    #[test]
    fn proposition_window_inside_bounds(
        n in 2usize..30,
        p_max in 0.001f64..0.05,
        shrink in 0.05f64..1.0,
    ) {
        // Probabilities between p_max/eta-ish and p_max. (n = 1 is the
        // degenerate case where W *equals* the lower bound — eq. (1) —
        // so the strict Proposition applies from two receivers up.)
        let p: Vec<f64> = (0..n)
            .map(|i| if i == 0 { p_max } else { p_max * shrink })
            .collect();
        let w = analysis::rla_window_independent(&p);
        let b = analysis::proposition_bounds(p_max, n);
        prop_assert!(w > b.lower * (1.0 - 1e-9) && w < b.upper * (1.0 + 1e-9),
            "W={} outside ({}, {}) for n={} p_max={} shrink={}",
            w, b.lower, b.upper, n, p_max, shrink);
    }

    #[test]
    fn lemma_common_beats_independent(n in 2usize..30, p in 0.001f64..0.05) {
        let indep = analysis::rla_window_independent(&vec![p; n]);
        let common = analysis::rla_window_common(p, n);
        prop_assert!(common > indep);
    }

    #[test]
    fn theorem_bounds_ordering(n in 1usize..100) {
        let t1 = FairnessBounds::theorem1_red(n);
        let t2 = FairnessBounds::theorem2_droptail(n);
        prop_assert!(t1.a > t2.a, "RED lower bound is tighter");
        prop_assert!(t1.b <= t2.b, "RED upper bound is tighter");
    }
}
