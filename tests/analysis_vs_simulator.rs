//! The §4 analysis against the packet-level simulator: the closed-form
//! window fixed points are checked on a *physical* model — Bernoulli loss
//! injected on real links — rather than the abstract window process.

use bounded_fairness::prelude::*;
use bounded_fairness::rla::McastReceiver;

/// An RLA session over `n` independent star branches, each dropping data
/// with probability `p` (figure 2(a) realized with fault injectors).
/// Returns the time-average congestion window.
fn rla_window_on_bernoulli_star(n: usize, p: f64, secs: u64, seed: u64) -> f64 {
    let mut engine = Engine::new(seed);
    let queue = QueueConfig::DropTail { limit: 1000 }; // no queue losses
    let root = engine.add_node("S");
    let group = engine.new_group();
    for i in 0..n {
        let leaf = engine.add_node(format!("R{i}"));
        let (down, _) =
            engine.add_link(root, leaf, 80_000_000, SimDuration::from_millis(30), &queue);
        engine.set_fault(down, FaultInjector::new(p).data_only());
        let rx = engine.add_agent(leaf, Box::new(McastReceiver::new(40)));
        engine.set_send_overhead(rx, SimDuration::from_millis(1));
        engine.join_group(group, rx);
    }
    let tx = engine.add_agent(root, Box::new(RlaSender::new(group, RlaConfig::default())));
    engine.compute_routes();
    engine.build_group_tree(group, root);
    engine.start_agent_at(tx, SimTime::ZERO);
    // Warm up, then measure.
    engine.run_until(SimTime::from_secs(secs / 5));
    let warm = engine.now();
    engine
        .agent_as_mut::<RlaSender>(tx)
        .expect("sender")
        .reset_stats(warm);
    engine.run_until(SimTime::from_secs(secs));
    let s = engine.agent_as::<RlaSender>(tx).expect("sender");
    s.stats.cwnd_avg.average(engine.now())
}

#[test]
fn single_receiver_window_tracks_eq1() {
    // n = 1: the RLA degenerates to TCP-like behaviour; eq. (1) applies.
    // Note: eq. (1) is in *congestion probability* (signals per packet).
    // With uncorrelated Bernoulli loss at p = 2% and the 2·srtt signal
    // grouping, multiple losses can merge, so the effective p is a bit
    // lower and the window a bit higher; accept a wide band.
    let p = 0.02;
    let measured = rla_window_on_bernoulli_star(1, p, 500, 3);
    let predicted = analysis::pa_window(p);
    let ratio = measured / predicted;
    assert!(
        (0.6..2.2).contains(&ratio),
        "measured {measured:.1} vs eq1 {predicted:.1} (ratio {ratio:.2})"
    );
}

#[test]
fn proposition_bounds_hold_on_physical_losses() {
    // n = 4 independent lossy branches at p = 2%: the Proposition brackets
    // the measured window between eq1(p_max) and sqrt(n)*eq1(p_max).
    // Signal grouping only *raises* the window, and the upper bound has
    // sqrt(n) of headroom.
    let p = 0.02;
    let n = 4;
    let measured = rla_window_on_bernoulli_star(n, p, 500, 5);
    let bounds = analysis::proposition_bounds(p, n);
    assert!(
        measured > bounds.lower * 0.8 && measured < bounds.upper * 1.6,
        "measured {measured:.1} outside proposition band ({:.1}, {:.1})",
        bounds.lower,
        bounds.upper
    );
}

#[test]
fn window_grows_with_receiver_count_at_fixed_p() {
    // More independent congested receivers => more signals but only a 1/n
    // listening probability: the fixed point grows with n (that is the
    // essence of the sqrt(n) upper bound).
    let w1 = rla_window_on_bernoulli_star(1, 0.02, 400, 7);
    let w4 = rla_window_on_bernoulli_star(4, 0.02, 400, 7);
    assert!(
        w4 > w1 * 0.9,
        "window must not shrink with more receivers: n=1 {w1:.1}, n=4 {w4:.1}"
    );
}

#[test]
fn particle_model_matches_full_two_session_split() {
    // Both the abstract particle model and the full simulator must agree
    // that two sessions split evenly (within noise).
    let particle = analysis::simulate_particle(3, 40.0, 300_000, 1, 80);
    let rel = (particle.mean_w1 - particle.mean_w2).abs() / particle.mean_w1;
    assert!(rel < 0.03, "particle split {rel}");

    let mut scenario = bounded_fairness::experiments::TreeScenario::paper(
        bounded_fairness::experiments::CongestionCase::Case3AllLeaves,
        bounded_fairness::experiments::GatewayKind::DropTail,
    )
    .with_duration(SimDuration::from_secs(150));
    scenario.rla_sessions = 2;
    let r = scenario.run();
    let (a, b) = (r.rla[0].throughput_pps, r.rla[1].throughput_pps);
    assert!(
        a.max(b) / a.min(b) < 1.8,
        "full-sim sessions {a:.1} vs {b:.1}"
    );
}
