//! Property-based invariants of the RED gateway (§1, §4's Theorem I
//! substrate), alongside the engine invariants in `engine_invariants.rs`.
//!
//! Random configurations and random offered loads must never produce a
//! drop probability outside [0, 1], a negative queue average, or an
//! early/forced drop while the average sits below the minimum threshold.

use netsim::arena::{PacketArena, PacketHandle};
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::queue::{DropReason, Enqueue, QueueDiscipline, Red, RedConfig};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::Segment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn packet(arena: &mut PacketArena, uid: u64) -> PacketHandle {
    arena.insert(Packet {
        uid,
        src: AgentId(0),
        dest: Dest::Agent(AgentId(1)),
        size_bytes: 1000,
        segment: Segment::Raw,
        sent_at: SimTime::ZERO,
    })
}

/// A randomized RED config: thresholds inside a buffer of 4..64 packets,
/// NS2-ish weights, any legal max_p.
fn config(limit: usize, min_frac: f64, gap_frac: f64, weight: f64, max_p: f64) -> RedConfig {
    let min_th = (limit as f64 * min_frac).max(0.5);
    let max_th = (min_th + (limit as f64 - min_th) * gap_frac).max(min_th + 0.5);
    RedConfig {
        limit,
        min_th,
        max_th,
        weight,
        max_p,
        mean_pkt_time: SimDuration::from_micros(800),
    }
}

/// Drive a queue with a random arrival/departure pattern; after every
/// step check the invariants. `ops` encodes the workload: true = offer a
/// packet, false = dequeue one. Time advances a random stride per step so
/// idle aging paths are exercised too.
fn drive(cfg: RedConfig, seed: u64, ops: &[bool], step_micros: u64) -> Result<(), TestCaseError> {
    let mut arena = PacketArena::new();
    let mut q = Red::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    for (i, &offer) in ops.iter().enumerate() {
        now += SimDuration::from_micros(step_micros * ((i % 7) as u64 + 1));
        if offer {
            let outcome = q.enqueue(packet(&mut arena, i as u64), now, &mut rng);
            if let Enqueue::Dropped(h, reason) = outcome {
                arena.remove(h);
                // RED's own drops require the average to have reached the
                // minimum threshold; only physical overflow may fire
                // below it.
                if matches!(reason, DropReason::EarlyDrop | DropReason::ForcedDrop) {
                    prop_assert!(
                        q.avg_queue() >= cfg.min_th,
                        "{reason:?} below min_th: avg {} < {}",
                        q.avg_queue(),
                        cfg.min_th
                    );
                }
                if matches!(reason, DropReason::ForcedDrop) {
                    prop_assert!(
                        q.avg_queue() >= cfg.max_th,
                        "forced drop needs avg {} >= max_th {}",
                        q.avg_queue(),
                        cfg.max_th
                    );
                }
            }
        } else if let Some(h) = q.dequeue(now) {
            arena.remove(h);
        }
        let p = q.drop_probability();
        prop_assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} outside [0,1]"
        );
        prop_assert!(p.is_finite(), "drop probability must be finite");
        prop_assert!(
            q.avg_queue() >= 0.0 && q.avg_queue().is_finite(),
            "EWMA average went negative or non-finite: {}",
            q.avg_queue()
        );
        prop_assert!(
            q.len() <= q.capacity(),
            "buffer over capacity: {} > {}",
            q.len(),
            q.capacity()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn red_invariants_under_random_load(
        seed in 0u64..10_000,
        limit in 4usize..64,
        min_frac in 0.05f64..0.6,
        gap_frac in 0.1f64..1.0,
        weight in 0.001f64..1.0,
        max_p in 0.01f64..1.0,
        ops in proptest::collection::vec(any::<bool>(), 1..400),
        step_micros in 1u64..5_000,
    ) {
        drive(config(limit, min_frac, gap_frac, weight, max_p), seed, &ops, step_micros)?;
    }

    #[test]
    fn red_never_drops_below_min_threshold_paper_config(
        seed in 0u64..10_000,
        burst in 1usize..4,
    ) {
        // The paper's gateway (min_th 5, w = 0.002): short bursts keep the
        // average far below the threshold, so *nothing* may drop — not
        // even overflow, since burst < limit.
        let mut arena = PacketArena::new();
        let mut q = Red::new(RedConfig::paper());
        let mut rng = StdRng::seed_from_u64(seed);
        for uid in 0..burst as u64 {
            let got = q.enqueue(packet(&mut arena, uid), SimTime::from_millis(uid), &mut rng);
            prop_assert!(
                matches!(got, Enqueue::Accepted),
                "drop below min threshold (avg {})",
                q.avg_queue()
            );
        }
        prop_assert!(q.avg_queue() < 5.0);
        prop_assert_eq!(q.drop_probability(), 0.0);
    }

    #[test]
    fn red_drop_probability_monotone_in_average(
        limit in 8usize..64,
        min_frac in 0.05f64..0.5,
        gap_frac in 0.2f64..1.0,
        max_p in 0.01f64..1.0,
    ) {
        // With weight 1 the average tracks the queue exactly; pushing the
        // queue longer must never lower the marking probability.
        let cfg = config(limit, min_frac, gap_frac, 1.0, max_p);
        let mut arena = PacketArena::new();
        let mut q = Red::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last_p = 0.0f64;
        for uid in 0..limit as u64 {
            if let Enqueue::Dropped(h, _) = q.enqueue(packet(&mut arena, uid), SimTime::ZERO, &mut rng) {
                arena.remove(h);
            }
            let p = q.drop_probability();
            prop_assert!(
                p >= last_p - 1e-12,
                "probability fell from {last_p} to {p} as the queue grew"
            );
            last_p = p;
        }
    }
}
