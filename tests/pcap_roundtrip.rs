//! Pcap-export validation: a fixed-seed scenario exported to a capture
//! file must (a) hash to the committed golden byte digest, (b) round-trip
//! through the reader with exactly one record per `TxStart` trace event,
//! nondecreasing timestamps, and sequence/ack numbers consistent with a
//! transmission scoreboard, and (c) never emit a record whose `caplen`
//! exceeds the snap length, for arbitrary packets (property test).
//!
//! The capture is an *observer*: the run's trace digest is computed
//! independently of the tracer slot, so these tests double as proof that
//! `RLA_PCAP` cannot perturb results.

use std::collections::HashMap;

use bounded_fairness::experiments::cli::PcapOptions;
use bounded_fairness::experiments::{CongestionCase, GatewayKind, TreeScenario};
use netsim::id::{AgentId, GroupId};
use netsim::packet::{Dest, Packet};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::{McastAck, McastData, SackList, Segment, TcpAck, TcpData};
use proptest::prelude::*;
use telemetry::pcap::{PcapRecord, DEFAULT_SNAPLEN};
use telemetry::{PcapReader, PcapWriter};

/// FNV-1a over the whole capture file — the same digest family the trace
/// digests use, applied to bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pinned export: case 5, RED, seed 1, 20 s, default snaplen.
/// Returns the capture bytes and the engine's independent `tx_starts`
/// count.
fn export_case5(dir: &std::path::Path) -> (Vec<u8>, u64) {
    std::fs::create_dir_all(dir).expect("create capture dir");
    let scenario = TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::Red)
        .with_duration(SimDuration::from_secs(20))
        .with_seed(1)
        .with_shards(1);
    let mut world = scenario.build();
    let opts = PcapOptions {
        enabled: true,
        snaplen: DEFAULT_SNAPLEN,
        dir: dir.to_path_buf(),
        spool_records: None,
    };
    let tracer = world.install_pcap(&opts, "case5_red_20s");
    world.run(&scenario);
    let written = tracer.borrow_mut().finish().expect("flush capture");
    let tx_starts = world.engine.trace_digest().tx_starts;
    assert_eq!(
        written, tx_starts,
        "the tracer must write exactly one record per TxStart"
    );
    let path = tracer.borrow().path().to_path_buf();
    (std::fs::read(path).expect("read capture"), tx_starts)
}

#[test]
fn case5_export_matches_the_golden_byte_digest() {
    let dir = std::env::temp_dir().join("rla_pcap_golden_test");
    let (bytes, _) = export_case5(&dir);
    // Pinned from the first generation; covers the global header, every
    // record header and every synthetic frame byte. Drift means the
    // engine's packet schedule or the pcap framing changed — if
    // intended, update the constant alongside the trace-digest goldens.
    // (Re-pinned when the cost-aware merge pass collapsed RLA_SHARDS=1
    // to a single execution domain: per-region event streams and trace
    // digests are unchanged, but same-instant records from different
    // regions now interleave in global time-key order instead of the
    // old per-epoch domain grouping.)
    assert_eq!(
        format!("{:016x}", fnv1a(&bytes)),
        "0d81d890fa7a175d",
        "capture byte digest drifted ({} bytes)",
        bytes.len()
    );
}

#[test]
fn case5_export_round_trips_with_a_consistent_scoreboard() {
    let dir = std::env::temp_dir().join("rla_pcap_roundtrip_test");
    let (bytes, tx_starts) = export_case5(&dir);
    let reader = PcapReader::new(&bytes).expect("valid global header");
    assert!(reader.header.nanos, "SimTime is nanosecond-resolution");
    let snaplen = reader.header.snaplen;
    let records = reader.records().expect("every record parses");
    assert_eq!(records.len() as u64, tx_starts, "count == TxStart count");
    assert!(tx_starts > 0, "a 20 s case-5 run transmits packets");

    // Timestamps are the TxStart times of a single engine run: they must
    // never go backwards.
    let mut last = 0u64;
    // Scoreboard: highest data sequence transmitted so far, per flow.
    // TCP keys on the (src, dst) address pair (acks ack the reversed
    // pair); multicast keys on the sender, since group data fans out to
    // every receiver. An ack can only acknowledge data that has started
    // transmission somewhere, so ack <= scoreboard max + 1 at all times.
    let mut tcp_max: HashMap<([u8; 4], [u8; 4]), u64> = HashMap::new();
    let mut mc_max = 0u64;
    let mut data_records = 0u64;
    let mut ack_records = 0u64;
    for r in &records {
        assert!(r.ts_nanos >= last, "timestamps must be nondecreasing");
        last = r.ts_nanos;
        assert!(r.caplen <= snaplen);
        assert!(r.caplen <= r.orig_len);
        let Some(net) = &r.net else {
            panic!("default snaplen keeps every synthetic header parseable");
        };
        match (net.protocol, net.kind) {
            // TCP (kind 255): data carries seq, pure acks carry ack.
            (6, _) if is_tcp_data(r) => {
                let m = tcp_max.entry((net.src_ip, net.dst_ip)).or_insert(0);
                *m = (*m).max(net.number);
                data_records += 1;
            }
            (6, _) => {
                let data_flow = (net.dst_ip, net.src_ip);
                let max = tcp_max.get(&data_flow).copied().unwrap_or(0);
                assert!(
                    net.number <= max + 1,
                    "tcp ack {} outruns the scoreboard {max} for {data_flow:?}",
                    net.number
                );
                ack_records += 1;
            }
            // RLA multicast data / ack (UDP kinds 1 / 2).
            (17, 1) => {
                mc_max = mc_max.max(net.number);
                data_records += 1;
            }
            (17, 2) => {
                assert!(
                    net.number <= mc_max + 1,
                    "mcast ack {} outruns the scoreboard {mc_max}",
                    net.number
                );
                ack_records += 1;
            }
            (17, 0) | (17, 3) | (17, 4) => {}
            other => panic!("unexpected protocol/kind {other:?}"),
        }
    }
    assert!(data_records > 0, "the run carries data segments");
    assert!(ack_records > 0, "the run carries acknowledgements");
}

/// A TCP record is a data segment iff its IPv4 total length reflects a
/// data-sized packet (1000 B simulated vs 40 B acks).
fn is_tcp_data(r: &PcapRecord) -> bool {
    r.net.as_ref().is_some_and(|n| n.ip_total_len >= 500)
}

/// An arbitrary packet spanning every segment family the writer frames.
/// (The vendored proptest has no `prop_map`, so this implements
/// [`Strategy`] directly.)
#[derive(Debug, Clone, Copy)]
struct ArbPacket;

impl Strategy for ArbPacket {
    type Value = Packet;

    fn generate(&self, rng: &mut rand::rngs::StdRng) -> Packet {
        use rand::Rng;
        let seq = rng.gen_range(0u64..1 << 40);
        let agent = rng.gen_range(0u32..8);
        let size_bytes = rng.gen_range(40u32..2000);
        let kind = rng.gen_range(0u32..6);
        let retransmit = rng.gen::<bool>();
        let src = AgentId(agent);
        let peer = AgentId(agent + 1);
        let (dest, segment) = match kind {
            0 => (Dest::Agent(peer), Segment::Raw),
            1 => (
                Dest::Agent(peer),
                Segment::TcpData(TcpData {
                    seq,
                    retransmit,
                    timestamp: SimTime::ZERO,
                }),
            ),
            2 => (
                Dest::Agent(peer),
                Segment::TcpAck(TcpAck {
                    cum_ack: seq,
                    sack: SackList::new(),
                    echo_timestamp: SimTime::ZERO,
                }),
            ),
            3 => (
                Dest::Group(GroupId(2)),
                Segment::McastData(McastData {
                    seq,
                    retransmit,
                    timestamp: SimTime::ZERO,
                }),
            ),
            _ => (
                Dest::Agent(peer),
                Segment::McastAck(McastAck {
                    receiver: src,
                    cum_ack: seq,
                    sack: SackList::new(),
                    echo_timestamp: SimTime::ZERO,
                    urgent_rexmit: kind == 5,
                }),
            ),
        };
        Packet {
            uid: seq ^ 0x5a5a,
            src,
            dest,
            size_bytes,
            segment,
            sent_at: SimTime::ZERO,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the packet and snap length, `caplen` never exceeds the
    /// (floored) snaplen or the original length, and the reader accepts
    /// the writer's output with exact nanosecond timestamps.
    #[test]
    fn caplen_is_bounded_by_snaplen(
        packets in proptest::collection::vec((0u64..1u64 << 50, ArbPacket), 1..20),
        snaplen in 0u32..300,
    ) {
        let mut sorted = packets;
        sorted.sort_by_key(|(t, _)| *t);
        let mut w = PcapWriter::new(Vec::new(), snaplen).unwrap();
        for (nanos, p) in &sorted {
            w.record(SimTime::from_nanos(*nanos), p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let reader = PcapReader::new(&bytes).unwrap();
        let effective = reader.header.snaplen;
        prop_assert!(effective >= 64, "writer floors the snaplen");
        let records = reader.records().map_err(TestCaseError::fail)?;
        prop_assert_eq!(records.len(), sorted.len());
        for (r, (nanos, p)) in records.iter().zip(&sorted) {
            prop_assert!(r.caplen <= effective);
            prop_assert!(r.caplen <= r.orig_len);
            prop_assert_eq!(r.ts_nanos, *nanos);
            prop_assert!(u64::from(r.orig_len) >= 14 + u64::from(p.size_bytes));
        }
    }
}
