//! # bounded-fairness
//!
//! A full reproduction of **“Achieving Bounded Fairness for Multicast and
//! TCP Traffic in the Internet”** (Wang & Schwartz, SIGCOMM 1998): the
//! **Random Listening Algorithm (RLA)** for window-based multicast
//! congestion control, the deterministic network simulator it runs on,
//! the TCP SACK agents it competes with, the rate-based baselines it was
//! proposed against, and the paper's §4 analysis as executable code.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`netsim`] | `netsim` | discrete-event engine, drop-tail + RED gateways, multicast trees, tracing, fault injection |
//! | [`tcp`] | `tcp-sack` | TCP SACK sender/receiver (slow start, SACK fast recovery, RTO) |
//! | [`rla`] | `rla` | the paper's contribution: random listening, troubled-receiver counting, forced cuts, repair policy |
//! | [`baselines`] | `baselines` | LTRC and MBFC rate controllers |
//! | [`analysis`] | `analysis` | PA windows, Proposition/Theorem bounds, the two-session particle model |
//! | [`experiments`] | `experiments` | scenario builders + binaries regenerating every paper table and figure |
//!
//! ## Quickstart
//!
//! ```
//! use bounded_fairness::prelude::*;
//!
//! // A 9-receiver multicast session competing with one TCP per leaf,
//! // through drop-tail gateways — a miniature of the paper's figure 7.
//! let mut engine = Engine::new(7);
//! let queue = QueueConfig::paper_droptail();
//! let root = engine.add_node("S");
//! let group = engine.new_group();
//! let mut tcp_pairs = Vec::new();
//! for i in 0..9 {
//!     let leaf = engine.add_node(format!("R{i}"));
//!     // 200 pkt/s leaf links: fair share 100 pkt/s per session.
//!     engine.add_link(root, leaf, 1_600_000, SimDuration::from_millis(40), &queue);
//!     let mrx = engine.add_agent(leaf, Box::new(McastReceiver::new(40)));
//!     engine.join_group(group, mrx);
//!     let trx = engine.add_agent(leaf, Box::new(TcpReceiver::new(40)));
//!     let ttx = engine.add_agent(root, Box::new(TcpSender::new(trx, TcpConfig::default())));
//!     tcp_pairs.push((ttx, trx));
//! }
//! let rla_tx = engine.add_agent(root, Box::new(RlaSender::new(group, RlaConfig::default())));
//! engine.compute_routes();
//! engine.build_group_tree(group, root);
//! for (i, &(ttx, _)) in tcp_pairs.iter().enumerate() {
//!     engine.start_agent_at(ttx, SimTime::from_millis(137 * i as u64));
//! }
//! engine.start_agent_at(rla_tx, SimTime::from_secs(2));
//! engine.run_until(SimTime::from_secs(60));
//!
//! let rla = engine.agent_as::<RlaSender>(rla_tx).unwrap();
//! assert!(rla.stats.delivered > 0);
//! ```
//!
//! ## Reproducing the paper
//!
//! Every table and figure has a regenerator binary in the `experiments`
//! crate — see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! paper-vs-measured numbers:
//!
//! ```text
//! cargo run --release -p experiments --bin fig7     # drop-tail table
//! cargo run --release -p experiments --bin fig9     # RED table
//! RLA_DURATION_SECS=300 cargo run --release -p experiments --bin fig10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use baselines;
pub use experiments;
pub use netsim;
pub use rla;
pub use tcp_sack as tcp;

/// Everything needed for typical simulations, in one import.
pub mod prelude {
    pub use analysis::{FairnessBounds, FairnessCheck};
    pub use netsim::prelude::*;
    pub use rla::{McastReceiver, PthreshPolicy, RlaConfig, RlaSender};
    pub use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};
}
