//! RLA sender configuration.

use netsim::time::SimDuration;
use transport::defaults;

/// How the window-cut probability threshold `pthresh` is derived for a
/// congestion signal from receiver `i` (paper §3.3 rule 3 and §5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PthreshPolicy {
    /// The restricted-topology rule: `pthresh = 1 / num_trouble_rcvr`.
    Equal,
    /// The generalized rule for unequal round-trip times (§5.3):
    /// `pthresh = (srtt_i / srtt_max)^exponent / num_trouble_rcvr`.
    /// The paper uses `exponent = 2` because TCP throughput scales as
    /// `RTT^-k` with `1 <= k < 2`.
    RttScaled {
        /// The exponent `k` of `f(x) = x^k`.
        exponent: f64,
    },
}

impl PthreshPolicy {
    /// The paper's generalized policy, `f(x) = x^2`.
    pub fn paper_rtt_scaled() -> Self {
        PthreshPolicy::RttScaled { exponent: 2.0 }
    }

    /// Compute `pthresh` for a signal from a receiver with smoothed RTT
    /// `srtt`, given the largest per-receiver RTT `srtt_max` and the
    /// current troubled-receiver count `n` (>= 1).
    pub fn pthresh(&self, srtt: f64, srtt_max: f64, n: usize) -> f64 {
        let n = n.max(1) as f64;
        match *self {
            PthreshPolicy::Equal => 1.0 / n,
            PthreshPolicy::RttScaled { exponent } => {
                if srtt_max <= 0.0 {
                    return 1.0 / n;
                }
                let x = (srtt / srtt_max).clamp(0.0, 1.0);
                x.powf(exponent) / n
            }
        }
    }
}

/// What to do about a receiver that persistently gates the whole session
/// (§4.3: "If this is not desirable, the RLA can implement an option to
/// drop this slow receiver").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlowReceiverPolicy {
    /// The paper's default: the session waits for every receiver.
    Keep,
    /// Eject a receiver that has been the *unique* slowest, lagging the
    /// next-slowest by at least `lag_packets`, continuously for
    /// `patience`. An ejected receiver keeps getting the multicast data
    /// but no longer gates the window, feeds congestion signals, or
    /// receives repairs.
    Eject {
        /// Minimum cumulative-ack gap to the second-slowest receiver.
        lag_packets: u64,
        /// How long the gap must persist.
        patience: SimDuration,
    },
}

/// Parameters of an RLA multicast session.
///
/// Defaults follow the paper: η = 20, all retransmissions multicast
/// (`rexmit_threshold = 0`), 1000-byte packets.
#[derive(Debug, Clone)]
pub struct RlaConfig {
    /// Data packet size on the wire, bytes.
    pub packet_size: u32,
    /// Receiver acknowledgment size, bytes.
    pub ack_size: u32,
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, packets.
    pub initial_ssthresh: f64,
    /// Maximum congestion window / receiver buffer, packets (rule 5's
    /// upper bound: never run past `min_last_ack + max_cwnd`).
    pub max_cwnd: f64,
    /// SACK dup-threshold for loss declaration (3, as in TCP).
    pub dupack_threshold: u64,
    /// The η constant of rule 6: a receiver is troubled while its average
    /// congestion-signal interval is below `η * min_congestion_interval`.
    pub eta: f64,
    /// EWMA gain for the per-receiver congestion-interval average.
    pub interval_gain: f64,
    /// EWMA gain for `awnd`, the moving average of the window size used by
    /// the forced-cut rule.
    pub awnd_gain: f64,
    /// If more than this many receivers request a retransmission it is
    /// multicast, otherwise unicast to each requester (footnote 8). The
    /// paper's simulations use 0: everything multicast.
    pub rexmit_threshold: usize,
    /// Window-cut probability policy.
    pub pthresh_policy: PthreshPolicy,
    /// Enable the forced-cut rule (rule 3's damping of the randomness).
    /// On by default; the ablation experiment turns it off.
    pub forced_cut_enabled: bool,
    /// Policy for a receiver that persistently gates the session (§4.3).
    pub slow_receiver_policy: SlowReceiverPolicy,
    /// Maximum new packets released per ack event (burst limiter — the
    /// paper's fast-recovery guard against a "suddenly widely-open
    /// window").
    pub max_burst: u32,
    /// Lower bound on per-receiver retransmission timeouts.
    pub min_rto: SimDuration,
    /// Upper bound on per-receiver retransmission timeouts.
    pub max_rto: SimDuration,
    /// Period of the sender's timeout-scan timer.
    pub scan_interval: SimDuration,
}

impl Default for RlaConfig {
    fn default() -> Self {
        RlaConfig {
            packet_size: defaults::PACKET_SIZE,
            ack_size: defaults::ACK_SIZE,
            initial_cwnd: defaults::INITIAL_CWND,
            initial_ssthresh: defaults::INITIAL_SSTHRESH,
            max_cwnd: defaults::MAX_CWND,
            dupack_threshold: defaults::DUPACK_THRESHOLD,
            eta: 20.0,
            interval_gain: 0.125,
            awnd_gain: 0.02,
            rexmit_threshold: 0,
            pthresh_policy: PthreshPolicy::Equal,
            forced_cut_enabled: true,
            slow_receiver_policy: SlowReceiverPolicy::Keep,
            max_burst: 4,
            min_rto: defaults::MIN_RTO,
            max_rto: defaults::MAX_RTO,
            scan_interval: SimDuration::from_millis(100),
        }
    }
}

impl RlaConfig {
    /// Validate invariants; called by the sender constructor.
    pub fn validate(&self) {
        assert!(self.packet_size > 0, "packet size must be positive");
        assert!(self.initial_cwnd >= 1.0, "initial cwnd below one packet");
        assert!(self.eta >= 1.0, "eta must be at least 1");
        assert!(
            self.interval_gain > 0.0 && self.interval_gain <= 1.0,
            "interval gain must be in (0, 1]"
        );
        assert!(
            self.awnd_gain > 0.0 && self.awnd_gain <= 1.0,
            "awnd gain must be in (0, 1]"
        );
        assert!(self.max_burst >= 1, "burst limit must allow some sending");
        assert!(
            !self.scan_interval.is_zero(),
            "scan interval must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let cfg = RlaConfig::default();
        cfg.validate();
        assert!(cfg.forced_cut_enabled);
        assert_eq!(cfg.slow_receiver_policy, SlowReceiverPolicy::Keep);
    }

    #[test]
    fn equal_policy_is_inverse_count() {
        let p = PthreshPolicy::Equal;
        assert_eq!(p.pthresh(0.1, 0.3, 4), 0.25);
        assert_eq!(p.pthresh(0.1, 0.3, 0), 1.0, "count clamps at 1");
    }

    #[test]
    fn rtt_scaled_policy_squashes_near_receivers() {
        let p = PthreshPolicy::paper_rtt_scaled();
        // Equal RTTs degenerate to the Equal policy.
        assert!((p.pthresh(0.2, 0.2, 5) - 0.2).abs() < 1e-12);
        // Half the max RTT -> a quarter of the cut probability.
        assert!((p.pthresh(0.1, 0.2, 5) - 0.25 / 5.0).abs() < 1e-12);
        // Degenerate max RTT falls back to Equal.
        assert_eq!(p.pthresh(0.1, 0.0, 5), 0.2);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn bad_eta_rejected() {
        RlaConfig {
            eta: 0.5,
            ..Default::default()
        }
        .validate();
    }
}
