//! The RLA multicast receiver.
//!
//! Identical receive-side machinery to the TCP SACK receiver (§3.3: "our
//! multicast receivers use selective acknowledgments using the same format
//! as SACK TCP receivers"), but the acknowledgment carries the receiver's
//! identity so the sender can keep per-receiver congestion state, and it
//! is unicast back to the multicast sender.

use std::any::Any;
use std::collections::BTreeSet;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::packet::{Dest, Packet};
use netsim::wire::{McastAck, SackList, Segment};

/// Receiver-side statistics.
#[derive(Debug, Default, Clone)]
pub struct McastReceiverStats {
    /// Data arrivals, duplicates included.
    pub arrivals: u64,
    /// Distinct packets delivered in order.
    pub delivered: u64,
    /// Duplicate arrivals (multicast retransmissions of packets this
    /// receiver already had are expected — see footnote 8).
    pub duplicates: u64,
}

/// A multicast receiver endpoint.
#[derive(Debug, Default)]
pub struct McastReceiver {
    cum_ack: u64,
    ooo: BTreeSet<u64>,
    ack_size: u32,
    /// Running statistics.
    pub stats: McastReceiverStats,
}

impl McastReceiver {
    /// A receiver producing `ack_size`-byte acknowledgments.
    pub fn new(ack_size: u32) -> Self {
        McastReceiver {
            ack_size,
            ..Default::default()
        }
    }

    /// A late-joining receiver that enters an in-progress session at
    /// sequence `next_seq` (the sender's next new sequence number at join
    /// time). Everything below `next_seq` counts as already held:
    /// stragglers from packets that were in flight when the tree was
    /// rebuilt are acknowledged as duplicates rather than opening holes
    /// the sender no longer tracks for this receiver.
    pub fn joining_at(next_seq: u64, ack_size: u32) -> Self {
        McastReceiver {
            cum_ack: next_seq,
            ack_size,
            ..Default::default()
        }
    }

    /// Next expected in-order sequence number.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Zero the statistics (end-of-warmup reset).
    pub fn reset_stats(&mut self) {
        self.stats = McastReceiverStats::default();
    }

    fn accept(&mut self, seq: u64) {
        if seq < self.cum_ack || self.ooo.contains(&seq) {
            self.stats.duplicates += 1;
            return;
        }
        if seq == self.cum_ack {
            self.cum_ack += 1;
            self.stats.delivered += 1;
            while self.ooo.remove(&self.cum_ack) {
                self.cum_ack += 1;
                self.stats.delivered += 1;
            }
        } else {
            self.ooo.insert(seq);
        }
    }

    /// Wire SACK blocks for the current reorder buffer (allocation-free;
    /// same format as the TCP receiver, see [`SackList`]).
    fn sack_blocks(&self, latest: u64) -> SackList {
        SackList::from_ascending_seqs(self.ooo.iter().copied(), latest)
    }
}

impl Agent for McastReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let Segment::McastData(data) = packet.segment else {
            debug_assert!(
                false,
                "multicast receiver got {}",
                packet.segment.kind_str()
            );
            return;
        };
        self.stats.arrivals += 1;
        self.accept(data.seq);
        let ack = McastAck {
            receiver: ctx.agent,
            cum_ack: self.cum_ack,
            sack: self.sack_blocks(data.seq),
            echo_timestamp: data.timestamp,
            urgent_rexmit: false,
        };
        ctx.send(
            Dest::Agent(packet.src),
            self.ack_size,
            Segment::McastAck(ack),
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wire::SackBlock;

    #[test]
    fn delivery_and_duplicate_accounting() {
        let mut r = McastReceiver::new(40);
        r.accept(0);
        r.accept(2);
        r.accept(2); // duplicate (e.g. a multicast retransmission)
        r.accept(1);
        assert_eq!(r.cum_ack(), 3);
        assert_eq!(r.stats.delivered, 3);
        assert_eq!(r.stats.duplicates, 1);
    }

    #[test]
    fn sack_blocks_describe_holes() {
        let mut r = McastReceiver::new(40);
        for seq in [0, 3, 4, 8] {
            r.accept(seq);
        }
        let blocks = r.sack_blocks(8);
        assert_eq!(blocks[0], SackBlock { start: 8, end: 9 });
        assert!(blocks.contains(&SackBlock { start: 3, end: 5 }));
    }
}
