//! The Random Listening Algorithm sender (paper §3.3).
//!
//! One multicast sender, N SACK receivers. The sender keeps a scoreboard
//! per receiver, groups each receiver's losses into congestion signals
//! (one per `2·srtt_i`), and on each signal from a *troubled* receiver
//! halves its window **with probability `pthresh`** (the random listening
//! step), forcing a cut if none has happened for `2·awnd·srtt_i`. The
//! window grows by `1/cwnd` each time a packet has been acknowledged by
//! *all* receivers.
//!
//! Skeleton, following the paper's numbered rules:
//!
//! 1. loss detection — SACK scoreboard, dup-threshold 3 ([`tcp_sack::Scoreboard`]);
//! 2. congestion detection — losses within `2·srtt_i` of `cperiod_start_i`
//!    are one signal;
//! 3. window adjustment on congestion — forced-cut / randomized-cut;
//! 4. window growth — `cwnd += 1/cwnd` per packet acked by all;
//! 5. window bounds — base moves with `max_reach_all`, top never beyond
//!    `min_last_ack +` receiver buffer;
//! 6. troubled-receiver count — [`crate::trouble::TroubleTracker`].

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use rand::Rng;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::{AgentId, GroupId};
use netsim::packet::{Dest, Packet};
use netsim::stats::{Running, TimeWeighted};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::{McastAck, McastData, Segment};

use tcp_sack::scoreboard::Scoreboard;
use transport::{CongestionEpoch, FlowStats, RttEstimator, WindowState};

use crate::config::{RlaConfig, SlowReceiverPolicy};
use crate::trouble::TroubleTracker;

/// Timer token of the periodic timeout scan.
const SCAN_TOKEN: u64 = 1;

/// Per-receiver sender-side state.
#[derive(Debug)]
struct ReceiverState {
    id: AgentId,
    scoreboard: Scoreboard,
    rtt: RttEstimator,
    /// The current congestion period (rule 2's `2·srtt_i` loss coalescer).
    cperiod: CongestionEpoch,
    /// Last time any ack arrived from this receiver (timeout detection).
    last_ack_at: SimTime,
    /// Ejected by the slow-receiver policy (§4.3): still receives the
    /// multicast data but no longer gates the window or feeds signals.
    ejected: bool,
}

/// Bookkeeping for RTT-of-packet measurement (only packets delivered to
/// all receivers without any retransmission count, as in the paper's
/// tables).
#[derive(Debug, Clone, Copy)]
struct SentRecord {
    first_sent: SimTime,
    retransmitted: bool,
}

/// Statistics the paper's tables report for the RLA sender.
#[derive(Debug, Clone)]
pub struct RlaStats {
    /// Packets acknowledged by all receivers since the last reset (the
    /// session throughput numerator).
    pub delivered: u64,
    /// Data packets multicast (original transmissions).
    pub data_sent: u64,
    /// Multicast retransmissions.
    pub retransmits_multicast: u64,
    /// Unicast retransmissions.
    pub retransmits_unicast: u64,
    /// Congestion signals detected, total over receivers ("# cong signals").
    pub cong_signals: u64,
    /// Congestion signals per receiver (figure 8's per-branch counts).
    pub cong_signals_per_receiver: Vec<u64>,
    /// Randomized window cuts.
    pub randomized_cuts: u64,
    /// Forced window cuts ("# forced cut"; the paper observes ~0).
    pub forced_cuts: u64,
    /// Per-receiver ack timeouts.
    pub timeouts: u64,
    /// Congestion signals ignored because the receiver was not troubled.
    pub skipped_rare: u64,
    /// Acks whose receiver id was not in the group (indicates miswiring).
    pub unknown_acks: u64,
    /// Early retransmissions (window-edge holes repaired without RTO).
    pub early_retransmits: u64,
    /// Receivers ejected by the slow-receiver policy (§4.3).
    pub ejected_receivers: Vec<AgentId>,
    /// Time-weighted average congestion window.
    pub cwnd_avg: TimeWeighted,
    /// Per-packet round-trip times (send until acked by all receivers, for
    /// packets never retransmitted).
    pub rtt: Running,
    /// When the statistics window began.
    pub since: SimTime,
}

impl RlaStats {
    fn new(now: SimTime, cwnd: f64, n: usize) -> Self {
        RlaStats {
            delivered: 0,
            data_sent: 0,
            retransmits_multicast: 0,
            retransmits_unicast: 0,
            cong_signals: 0,
            cong_signals_per_receiver: vec![0; n],
            randomized_cuts: 0,
            forced_cuts: 0,
            timeouts: 0,
            skipped_rare: 0,
            unknown_acks: 0,
            early_retransmits: 0,
            ejected_receivers: Vec::new(),
            cwnd_avg: TimeWeighted::new(now, cwnd),
            rtt: Running::new(),
            since: now,
        }
    }

    /// Total window cuts (randomized + forced), the paper's "# wnd cut".
    pub fn window_cuts(&self) -> u64 {
        self.randomized_cuts + self.forced_cuts
    }

    /// Session throughput in packets per second over `[since, now]`.
    pub fn throughput_pps(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.since).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.delivered as f64 / span
        }
    }
}

impl telemetry::RegistryExport for RlaStats {
    fn export(&self, reg: &mut telemetry::Registry, prefix: &str, now: SimTime) {
        reg.record_count(format!("{prefix}.delivered"), self.delivered);
        reg.record_count(format!("{prefix}.data_sent"), self.data_sent);
        reg.record_count(
            format!("{prefix}.retransmits_multicast"),
            self.retransmits_multicast,
        );
        reg.record_count(
            format!("{prefix}.retransmits_unicast"),
            self.retransmits_unicast,
        );
        reg.record_count(format!("{prefix}.cong_signals"), self.cong_signals);
        reg.record_count(format!("{prefix}.randomized_cuts"), self.randomized_cuts);
        reg.record_count(format!("{prefix}.forced_cuts"), self.forced_cuts);
        reg.record_count(format!("{prefix}.timeouts"), self.timeouts);
        reg.record_count(format!("{prefix}.skipped_rare"), self.skipped_rare);
        reg.record_count(format!("{prefix}.unknown_acks"), self.unknown_acks);
        reg.record_count(
            format!("{prefix}.early_retransmits"),
            self.early_retransmits,
        );
        reg.record_count(
            format!("{prefix}.ejected_receivers"),
            self.ejected_receivers.len() as u64,
        );
        reg.record_gauge(format!("{prefix}.throughput_pps"), self.throughput_pps(now));
        reg.record_gauge(format!("{prefix}.cwnd_avg"), self.cwnd_avg.average(now));
        reg.record_gauge(format!("{prefix}.rtt_avg"), self.rtt.mean());
    }
}

impl FlowStats for RlaStats {
    fn delivered(&self) -> u64 {
        self.delivered
    }

    fn total_cuts(&self) -> u64 {
        self.window_cuts()
    }

    fn timeouts(&self) -> u64 {
        self.timeouts
    }

    fn cwnd_avg(&self) -> &TimeWeighted {
        &self.cwnd_avg
    }

    fn rtt(&self) -> &Running {
        &self.rtt
    }

    fn since(&self) -> SimTime {
        self.since
    }
}

/// The RLA multicast sender.
pub struct RlaSender {
    cfg: RlaConfig,
    group: GroupId,
    receivers: Vec<ReceiverState>,
    index_of: HashMap<AgentId, usize>,
    trouble: TroubleTracker,

    win: WindowState,
    /// Moving average of the window size (forced-cut horizon).
    awnd: f64,
    /// Next new sequence number.
    high_seq: u64,
    /// All packets `seq < reach_all` are held by every receiver
    /// (`max_reach_all` in the paper).
    reach_all: u64,
    /// Tracks when the window was last halved (the forced-cut horizon).
    cut_epoch: CongestionEpoch,
    /// Sequences declared lost by at least one receiver, awaiting the
    /// everyone-has-spoken retransmission decision (footnote 8).
    pending_rexmit: BTreeSet<u64>,
    /// First-transmission times for RTT bookkeeping.
    sent_log: BTreeMap<u64, SentRecord>,
    /// The unique slowest receiver being watched by the ejection policy,
    /// and since when it has been the unique laggard.
    laggard: Option<(usize, SimTime)>,

    /// Collected statistics.
    pub stats: RlaStats,
}

impl RlaSender {
    /// A sender that will multicast to `group` (member agents must join
    /// the group and the tree must be built before the sender starts).
    pub fn new(group: GroupId, cfg: RlaConfig) -> Self {
        cfg.validate();
        let win = WindowState::new(cfg.initial_cwnd, cfg.initial_ssthresh, cfg.max_cwnd);
        let cwnd = win.cwnd();
        RlaSender {
            trouble: TroubleTracker::new(0, cfg.eta, cfg.interval_gain),
            group,
            receivers: Vec::new(),
            index_of: HashMap::new(),
            win,
            awnd: cwnd,
            high_seq: 0,
            reach_all: 0,
            cut_epoch: CongestionEpoch::new(),
            pending_rexmit: BTreeSet::new(),
            sent_log: BTreeMap::new(),
            laggard: None,
            stats: RlaStats::new(SimTime::ZERO, cwnd, 0),
            cfg,
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    /// Moving average of the window size.
    pub fn awnd(&self) -> f64 {
        self.awnd
    }

    /// Current troubled-receiver count.
    pub fn num_trouble_rcvr(&self, now: SimTime) -> usize {
        self.trouble.troubled_count(now)
    }

    /// The highest packet acknowledged by all receivers.
    pub fn max_reach_all(&self) -> u64 {
        self.reach_all
    }

    /// Smallest cumulative ack over all receivers (`min_last_ack`).
    pub fn min_last_ack(&self) -> u64 {
        self.receivers
            .iter()
            .filter(|r| !r.ejected)
            .map(|r| r.scoreboard.cum_ack())
            .min()
            .unwrap_or(0)
    }

    /// Sender-side per-receiver view: (receiver id, cumulative ack, time
    /// of the last ack heard). Diagnostic.
    pub fn receiver_states(&self) -> Vec<(AgentId, u64, SimTime)> {
        self.receivers
            .iter()
            .map(|r| (r.id, r.scoreboard.cum_ack(), r.last_ack_at))
            .collect()
    }

    /// Discard statistics and start a fresh window at `now` (warmup reset).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.stats = RlaStats::new(now, self.win.cwnd(), self.receivers.len());
    }

    /// The next new sequence number the sender will transmit. A receiver
    /// joining mid-session starts its cumulative ack here
    /// ([`crate::receiver::McastReceiver::joining_at`]).
    pub fn next_seq(&self) -> u64 {
        self.high_seq
    }

    /// Number of receivers the sender tracks (including ejected ones).
    /// Zero until [`Agent::on_start`] reads the group membership.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Attach a receiver that joined the multicast group mid-session. The
    /// caller must already have added `id` to the group and rebuilt the
    /// distribution tree; the new receiver's scoreboard is pre-advanced to
    /// [`RlaSender::next_seq`], so only packets sent from now on gate the
    /// window or trigger repairs for it. Panics when the sender has not
    /// started yet (pre-start joiners are simply picked up by `on_start`)
    /// or when `id` is already tracked.
    pub fn add_receiver(&mut self, id: AgentId, now: SimTime) {
        assert!(
            !self.receivers.is_empty(),
            "add_receiver before the sender started — a pre-start joiner is \
             picked up by on_start from the group membership"
        );
        assert!(
            !self.index_of.contains_key(&id),
            "receiver {id} is already tracked by this sender"
        );
        let mut scoreboard = Scoreboard::new();
        let _ = scoreboard.on_ack(self.high_seq, &[], self.cfg.dupack_threshold);
        let idx = self.receivers.len();
        self.receivers.push(ReceiverState {
            id,
            scoreboard,
            rtt: RttEstimator::new(self.cfg.min_rto, self.cfg.max_rto),
            cperiod: CongestionEpoch::new(),
            last_ack_at: now,
            ejected: false,
        });
        self.index_of.insert(id, idx);
        self.trouble.add_receiver();
        self.stats.cong_signals_per_receiver.push(0);
    }

    /// Detach a receiver that left the multicast group mid-session:
    /// it stops gating the window, feeding the troubled count, or being
    /// owed repairs. Unlike a slow-receiver ejection (§4.3) this is a
    /// voluntary leave, so it is not reported in
    /// [`RlaStats::ejected_receivers`]. Returns `false` when `id` is
    /// unknown or already detached.
    pub fn remove_receiver(&mut self, id: AgentId) -> bool {
        let Some(&idx) = self.index_of.get(&id) else {
            return false;
        };
        if self.receivers[idx].ejected {
            return false;
        }
        self.detach(idx);
        true
    }

    // ------------------------------------------------------------------
    // Window management
    // ------------------------------------------------------------------

    /// Fold a just-applied window change into `awnd` (the forced-cut
    /// horizon tracks *every* adjustment) and the time-weighted average.
    fn after_window_change(&mut self, now: SimTime, cwnd: f64) {
        self.awnd += self.cfg.awnd_gain * (cwnd - self.awnd);
        self.stats.cwnd_avg.set(now, cwnd);
    }

    /// Rule 4: growth per packet acknowledged by all receivers.
    fn open_cwnd(&mut self, now: SimTime) {
        let cwnd = self.win.open();
        self.after_window_change(now, cwnd);
    }

    fn cut_window(&mut self, now: SimTime) {
        let cwnd = self.win.cut();
        self.after_window_change(now, cwnd);
        self.cut_epoch.mark(now);
    }

    /// The largest smoothed RTT among receivers, in seconds — the
    /// session's effective RTT (drives the RTT-scaled pthresh policy and
    /// the telemetry timeline). Zero until the first RTT sample.
    pub fn srtt_max(&self) -> f64 {
        self.receivers
            .iter()
            .filter(|r| !r.ejected)
            .filter_map(|r| r.rtt.srtt())
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max)
    }

    /// Rule 2: fold a loss event from receiver `idx` into its congestion
    /// period — losses within `2 * srtt_i` of `cperiod_start_i` are the
    /// same signal; a loss beyond that opens a new period and emits one
    /// congestion signal.
    fn note_congestion(&mut self, idx: usize, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let srtt = self.receivers[idx]
            .rtt
            .srtt()
            .unwrap_or(SimDuration::from_millis(100));
        let period = srtt.mul_f64(2.0);
        if self.receivers[idx].cperiod.note_loss(now, period) {
            self.on_congestion_signal(idx, ctx);
        }
    }

    /// Rule 3: react to one congestion signal from receiver `idx`.
    fn on_congestion_signal(&mut self, idx: usize, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.trouble.record_signal(idx, now);
        self.stats.cong_signals += 1;
        self.stats.cong_signals_per_receiver[idx] += 1;

        if !self.trouble.is_troubled(idx, now) {
            // A rare loss from an otherwise healthy receiver: skip.
            self.stats.skipped_rare += 1;
            return;
        }

        let srtt = self.receivers[idx]
            .rtt
            .srtt()
            .unwrap_or(SimDuration::from_millis(100));
        // The forced-cut horizon is paced by the *session* round-trip
        // time (the slowest receiver): window growth is clocked by
        // acked-by-all progress, so "2·awnd round trips" means the long
        // RTT. Using the signalling receiver's own srtt would let a
        // nearby receiver (30 ms against the session's 230 ms in figure
        // 10) force a cut every fraction of a real window period and
        // collapse the window.
        let session_srtt = {
            let max = self.srtt_max();
            if max > 0.0 {
                SimDuration::from_secs_f64(max)
            } else {
                srtt
            }
        };
        let forced_horizon = session_srtt.mul_f64(2.0 * self.awnd.max(1.0));
        if self.cfg.forced_cut_enabled && self.cut_epoch.elapsed_exceeds(now, forced_horizon) {
            self.cut_window(now);
            self.stats.forced_cuts += 1;
            return;
        }

        let n = self.trouble.troubled_count(now).max(1);
        let pthresh = self
            .cfg
            .pthresh_policy
            .pthresh(srtt.as_secs_f64(), self.srtt_max(), n);
        let pi: f64 = ctx.rng().gen();
        if pi <= pthresh {
            self.cut_window(now);
            self.stats.randomized_cuts += 1;
        }
    }

    // ------------------------------------------------------------------
    // Transmission
    // ------------------------------------------------------------------

    /// Packets currently believed to be in the network: the worst
    /// receiver's unsacked, undeclared count (the SACK "pipe").
    fn pipe(&self) -> u64 {
        self.receivers
            .iter()
            .filter(|r| !r.ejected)
            .map(|r| r.scoreboard.in_flight())
            .max()
            .unwrap_or(0)
    }

    /// Rule 5's send gate plus the burst limiter: release new packets while
    /// the pipe has room under `cwnd` and the slowest receiver's buffer
    /// (`min_last_ack + max_cwnd`) allows. Using pipe accounting rather
    /// than freezing on `max_reach_all` keeps the ack clock running while
    /// a hole is being repaired, exactly as TCP SACK's fast recovery does —
    /// otherwise every loss anywhere in the group would idle the session
    /// for a repair round-trip.
    fn try_send(&mut self, ctx: &mut Context<'_>) {
        let mut burst = 0;
        let mut pipe = self.pipe();
        let allowed = self.win.allowed();
        while burst < self.cfg.max_burst {
            let buffer_top = self.min_last_ack() + self.cfg.max_cwnd as u64;
            if pipe >= allowed || self.high_seq >= buffer_top {
                break;
            }
            let seq = self.high_seq;
            self.high_seq += 1;
            self.transmit_multicast(ctx, seq, false);
            pipe += 1;
            burst += 1;
        }
    }

    fn transmit_multicast(&mut self, ctx: &mut Context<'_>, seq: u64, retransmit: bool) {
        let now = ctx.now();
        for r in &mut self.receivers {
            if !r.ejected && !r.scoreboard.is_received(seq) {
                r.scoreboard.on_send(seq, now);
            }
        }
        match self.sent_log.entry(seq) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(SentRecord {
                    first_sent: now,
                    retransmitted: retransmit,
                });
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                o.get_mut().retransmitted = true;
            }
        }
        if retransmit {
            self.stats.retransmits_multicast += 1;
        } else {
            self.stats.data_sent += 1;
        }
        ctx.send(
            Dest::Group(self.group),
            self.cfg.packet_size,
            Segment::McastData(McastData {
                seq,
                retransmit,
                timestamp: now,
            }),
        );
    }

    fn transmit_unicast(&mut self, ctx: &mut Context<'_>, seq: u64, idx: usize) {
        let now = ctx.now();
        self.receivers[idx].scoreboard.on_send(seq, now);
        if let Some(rec) = self.sent_log.get_mut(&seq) {
            rec.retransmitted = true;
        }
        self.stats.retransmits_unicast += 1;
        let dest = Dest::Agent(self.receivers[idx].id);
        ctx.send(
            dest,
            self.cfg.packet_size,
            Segment::McastData(McastData {
                seq,
                retransmit: true,
                timestamp: now,
            }),
        );
    }

    /// Footnote 8: a lost packet is retransmitted by multicast if more
    /// than `rexmit_threshold` receivers request it, by unicast otherwise.
    /// The multicast branch fires as soon as the requester count crosses
    /// the threshold — at that point hearing from more receivers cannot
    /// change the decision, and with 27 branches the extra half-RTT of
    /// waiting would freeze `max_reach_all` (and therefore the send
    /// window) on every loss. The unicast branch still waits until every
    /// receiver has spoken, since the final requester set determines who
    /// gets a copy.
    fn service_retransmissions(&mut self, ctx: &mut Context<'_>) {
        let pending: Vec<u64> = self.pending_rexmit.iter().copied().collect();
        for seq in pending {
            let mut requesters: Vec<usize> = Vec::new();
            let mut heard_from_all = true;
            for (idx, r) in self.receivers.iter().enumerate() {
                if r.ejected || r.scoreboard.is_received(seq) {
                    continue;
                }
                if r.scoreboard.is_lost(seq) {
                    requesters.push(idx);
                } else {
                    // Still in flight toward this receiver.
                    heard_from_all = false;
                }
            }
            if requesters.len() > self.cfg.rexmit_threshold {
                self.pending_rexmit.remove(&seq);
                self.transmit_multicast(ctx, seq, true);
            } else if heard_from_all {
                self.pending_rexmit.remove(&seq);
                for idx in requesters {
                    self.transmit_unicast(ctx, seq, idx);
                }
            }
            // Otherwise: keep waiting for the remaining acks.
        }
    }

    /// Advance `max_reach_all` and apply rule 4 for each packet that has
    /// now been acknowledged by everyone.
    fn advance_reach_all(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        loop {
            let seq = self.reach_all;
            if seq >= self.high_seq {
                break;
            }
            if !self
                .receivers
                .iter()
                .all(|r| r.ejected || r.scoreboard.is_received(seq))
            {
                break;
            }
            self.reach_all += 1;
            self.stats.delivered += 1;
            self.open_cwnd(now);
            if let Some(rec) = self.sent_log.remove(&seq) {
                if !rec.retransmitted {
                    self.stats
                        .rtt
                        .push(now.saturating_since(rec.first_sent).as_secs_f64());
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Input processing
    // ------------------------------------------------------------------

    fn on_ack(&mut self, ack: McastAck, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let Some(&idx) = self.index_of.get(&ack.receiver) else {
            self.stats.unknown_acks += 1;
            debug_assert!(false, "ack from unknown receiver {}", ack.receiver);
            return;
        };

        {
            let r = &mut self.receivers[idx];
            if r.ejected {
                return; // no longer part of the control loop
            }
            r.last_ack_at = now;
            r.rtt.sample(now.saturating_since(ack.echo_timestamp));
        }

        let prior_cum = self.receivers[idx].scoreboard.cum_ack();
        let newly_lost = self.receivers[idx].scoreboard.on_ack(
            ack.cum_ack,
            &ack.sack,
            self.cfg.dupack_threshold,
        );

        if newly_lost > 0 {
            for seq in self.receivers[idx].scoreboard.lost_unretransmitted() {
                self.pending_rexmit.insert(seq);
            }
            self.note_congestion(idx, ctx);
        }

        // NewReno-style partial-ack continuation: when the send window has
        // stalled and this ack advances the receiver's cumulative ack but
        // the next head hole has already aged past its RTO, the hole
        // cannot still be in flight — it is part of a multi-packet loss
        // burst (e.g. a branch outage that has since healed). Repair it
        // now, ack-clocked, instead of waiting out a fresh per-packet RTO;
        // the receiver's silence timer keeps resetting on these very
        // repair acks, so the timeout scan alone recovers such bursts at
        // only one packet per RTO. The stalled-window guard keeps this
        // path out of ordinary recovery, where dup-SACK evidence repairs
        // holes long before they age anywhere near the RTO.
        let window_exhausted = self.pipe() >= self.win.allowed();
        if window_exhausted && self.receivers[idx].scoreboard.cum_ack() > prior_cum {
            if let Some((_, sent_at, _, retransmitted)) = self.receivers[idx].scoreboard.head_hole()
            {
                let rto = self.receivers[idx].rtt.rto();
                if !retransmitted && now.saturating_since(sent_at) > rto {
                    if let Some(seq) = self.receivers[idx].scoreboard.mark_head_lost() {
                        self.stats.early_retransmits += 1;
                        self.pending_rexmit.insert(seq);
                        self.note_congestion(idx, ctx);
                    }
                }
            }
        }

        self.advance_reach_all(ctx);
        self.service_retransmissions(ctx);
        self.try_send(ctx);
    }

    /// §4.3's option: eject a receiver that has been the unique slowest,
    /// lagging everyone else by at least `lag_packets`, continuously for
    /// `patience`.
    fn apply_slow_receiver_policy(&mut self, now: SimTime) {
        let SlowReceiverPolicy::Eject {
            lag_packets,
            patience,
        } = self.cfg.slow_receiver_policy
        else {
            return;
        };
        // Find the slowest and second-slowest active receivers.
        let mut slowest: Option<(usize, u64)> = None;
        let mut second: Option<u64> = None;
        for (idx, r) in self.receivers.iter().enumerate() {
            if r.ejected {
                continue;
            }
            let cum = r.scoreboard.cum_ack();
            match slowest {
                Some((_, s)) if cum >= s => {
                    second = Some(second.map_or(cum, |x: u64| x.min(cum)));
                }
                Some((_, s)) => {
                    second = Some(second.map_or(s, |x: u64| x.min(s)));
                    slowest = Some((idx, cum));
                }
                None => slowest = Some((idx, cum)),
            }
        }
        let (Some((idx, cum)), Some(second)) = (slowest, second) else {
            self.laggard = None;
            return; // fewer than two active receivers: nothing to compare
        };
        if second.saturating_sub(cum) < lag_packets {
            self.laggard = None;
            return;
        }
        match self.laggard {
            Some((li, since)) if li == idx => {
                if now.saturating_since(since) >= patience {
                    self.eject(idx, now);
                    self.laggard = None;
                }
            }
            _ => self.laggard = Some((idx, now)),
        }
    }

    fn eject(&mut self, idx: usize, _now: SimTime) {
        let id = self.receivers[idx].id;
        self.detach(idx);
        self.stats.ejected_receivers.push(id);
    }

    /// Shared by ejection and voluntary leave: drop `idx` out of the
    /// control loop without forgetting its identity (in-flight acks from
    /// it still resolve through `index_of` and hit the ejected early
    /// return).
    fn detach(&mut self, idx: usize) {
        self.receivers[idx].ejected = true;
        self.trouble.deactivate(idx);
        // Repairs owed only to the detached receiver are cancelled; shared
        // ones stay pending for the remaining requesters.
        let pending: Vec<u64> = self.pending_rexmit.iter().copied().collect();
        for seq in pending {
            let still_needed = self
                .receivers
                .iter()
                .any(|r| !r.ejected && !r.scoreboard.is_received(seq) && r.scoreboard.is_lost(seq));
            let still_in_flight = self.receivers.iter().any(|r| {
                !r.ejected && !r.scoreboard.is_received(seq) && !r.scoreboard.is_lost(seq)
            });
            if !still_needed && !still_in_flight {
                self.pending_rexmit.remove(&seq);
            }
        }
    }

    /// The periodic timeout scan: a receiver that has been silent for a
    /// full RTO while its oldest outstanding packet has also aged past the
    /// RTO has lost that packet. Only the head of its window is marked —
    /// one retransmission per timeout event, the same pacing TCP applies,
    /// so a burst of timeouts cannot turn into a retransmission storm.
    fn scan_timeouts(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.apply_slow_receiver_policy(now);
        let window_exhausted = self.pipe() >= self.win.allowed();
        for idx in 0..self.receivers.len() {
            if self.receivers[idx].ejected {
                continue;
            }
            if let Some((_, sent_at, evidence, retransmitted)) =
                self.receivers[idx].scoreboard.head_hole()
            {
                let srtt = self.receivers[idx]
                    .rtt
                    .srtt()
                    .unwrap_or(SimDuration::from_millis(100));
                let age = now.saturating_since(sent_at);
                // Lost retransmission: a repair should be acknowledged
                // within about one RTT; once it has aged well past that,
                // it was dropped too, and SACK can never re-declare it (the
                // `retransmitted` flag suppresses duplicate declarations).
                // Repair again without waiting out a backed-off RTO.
                let lost_rexmit = retransmitted && age > srtt.mul_f64(1.5);
                // Early retransmit: the send window has stalled, so no
                // further dup-SACK evidence will arrive; a head hole with a
                // SACKed packet above it that has aged a full srtt is lost.
                let early = window_exhausted && !retransmitted && evidence && age > srtt;
                if lost_rexmit || early {
                    if let Some(seq) = self.receivers[idx].scoreboard.mark_head_lost() {
                        self.stats.early_retransmits += 1;
                        self.pending_rexmit.insert(seq);
                        self.note_congestion(idx, ctx);
                        continue;
                    }
                }
            }

            let Some(oldest) = self.receivers[idx].scoreboard.oldest_sent_at() else {
                continue;
            };
            let rto = self.receivers[idx].rtt.rto();
            let silent = now.saturating_since(self.receivers[idx].last_ack_at);
            let head_age = now.saturating_since(oldest);
            if silent <= rto || head_age <= rto {
                continue;
            }
            // Timeout for this receiver.
            self.stats.timeouts += 1;
            self.receivers[idx].rtt.on_timeout();
            self.receivers[idx].last_ack_at = now;
            if let Some(seq) = self.receivers[idx].scoreboard.mark_head_lost() {
                self.pending_rexmit.insert(seq);
            }
            self.note_congestion(idx, ctx);
        }
        self.service_retransmissions(ctx);
        self.try_send(ctx);
    }
}

impl telemetry::FlowProbe for RlaSender {
    fn probe_kind(&self) -> &'static str {
        "rla"
    }

    fn flow_sample(&self) -> telemetry::FlowSample {
        let srtt = self.srtt_max();
        telemetry::FlowSample {
            cwnd: self.cwnd(),
            ssthresh: None,
            awnd: Some(self.awnd()),
            rtt: (srtt > 0.0).then_some(srtt),
        }
    }
}

impl Agent for RlaSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let members: Vec<AgentId> = ctx.group_members(self.group).to_vec();
        assert!(
            !members.is_empty(),
            "RLA sender started with an empty group"
        );
        self.receivers = members
            .iter()
            .map(|&id| ReceiverState {
                id,
                scoreboard: Scoreboard::new(),
                rtt: RttEstimator::new(self.cfg.min_rto, self.cfg.max_rto),
                cperiod: CongestionEpoch::new(),
                last_ack_at: now,
                ejected: false,
            })
            .collect();
        self.index_of = members.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        self.trouble = TroubleTracker::new(members.len(), self.cfg.eta, self.cfg.interval_gain);
        self.stats = RlaStats::new(now, self.win.cwnd(), members.len());
        self.cut_epoch.mark(now);
        self.try_send(ctx);
        ctx.set_timer(self.cfg.scan_interval, SCAN_TOKEN);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match packet.segment {
            Segment::McastAck(ack) => self.on_ack(ack, ctx),
            ref other => debug_assert!(false, "RLA sender got {}", other.kind_str()),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, SCAN_TOKEN);
        self.scan_timeouts(ctx);
        ctx.set_timer(self.cfg.scan_interval, SCAN_TOKEN);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::id::NodeId;
    use netsim::queue::QueueConfig;
    use netsim::topology::{kary_tree, LinkSpec};

    use crate::receiver::McastReceiver;

    /// A small multicast session over a 3-ary tree of the given depth.
    /// Returns (engine, sender agent, receiver agents, leaf access links).
    fn session(
        seed: u64,
        depth: usize,
        leaf_bw: u64,
        cfg: RlaConfig,
    ) -> (Engine, AgentId, Vec<AgentId>) {
        let mut e = Engine::new(seed);
        let spec_fast = LinkSpec::new(
            100_000_000,
            netsim::time::SimDuration::from_millis(5),
            QueueConfig::paper_droptail(),
        );
        let spec_leaf = LinkSpec::new(
            leaf_bw,
            netsim::time::SimDuration::from_millis(5),
            QueueConfig::paper_droptail(),
        );
        let mut specs = vec![spec_fast; depth.saturating_sub(1)];
        specs.push(spec_leaf);
        let tree = kary_tree(&mut e, 3, &specs);
        let group = e.new_group();
        let receivers: Vec<AgentId> = tree
            .leaves()
            .iter()
            .map(|&leaf| {
                let r = e.add_agent(leaf, Box::new(McastReceiver::new(40)));
                e.join_group(group, r);
                r
            })
            .collect();
        let sender = e.add_agent(tree.root, Box::new(RlaSender::new(group, cfg)));
        e.compute_routes();
        e.build_group_tree(group, tree.root);
        e.start_agent_at(sender, SimTime::ZERO);
        (e, sender, receivers)
    }

    #[test]
    fn delivers_in_order_to_every_receiver() {
        let (mut e, sender, receivers) = session(5, 2, 100_000_000, RlaConfig::default());
        e.run_until(SimTime::from_secs(10));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        let delivered = s.stats.delivered;
        assert!(delivered > 1000, "delivered {delivered}");
        for &r in &receivers {
            let rx: &McastReceiver = e.agent_as(r).unwrap();
            assert!(rx.cum_ack() >= delivered, "receiver behind reach_all");
        }
    }

    #[test]
    fn window_tracks_slowest_path_capacity() {
        // Leaf links at 800 kbps (100 pkt/s): the session must settle near
        // the bottleneck rate, not collapse and not overshoot.
        let (mut e, sender, _) = session(7, 2, 800_000, RlaConfig::default());
        e.run_until(SimTime::from_secs(100));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        let rate = s.stats.throughput_pps(e.now());
        assert!(
            rate > 60.0 && rate <= 105.0,
            "throughput {rate} pkt/s should sit near the 100 pkt/s bottleneck"
        );
        assert!(s.stats.window_cuts() > 0, "congestion must cause cuts");
    }

    #[test]
    fn cuts_are_roughly_one_per_n_signals() {
        let (mut e, sender, receivers) = session(11, 2, 800_000, RlaConfig::default());
        let n = receivers.len() as f64; // 9 receivers
        e.run_until(SimTime::from_secs(300));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        let signals = s.stats.cong_signals as f64;
        let cuts = s.stats.window_cuts() as f64;
        assert!(signals > 100.0, "need enough signals ({signals})");
        let ratio = signals / cuts.max(1.0);
        assert!(
            ratio > n / 3.0 && ratio < n * 3.0,
            "signals per cut {ratio} should be near n = {n}"
        );
    }

    #[test]
    fn recovers_all_losses_on_a_faulty_branch() {
        use netsim::fault::FaultInjector;
        let (mut e, sender, receivers) = session(13, 2, 100_000_000, RlaConfig::default());
        // 5% random loss on one leaf's access link (data only).
        let leaf_node = e.world().agent_node(receivers[0]);
        let parent_ch = (0..e.world().channel_count())
            .map(netsim::id::ChannelId::from)
            .find(|&c| e.world().channel(c).to == leaf_node)
            .unwrap();
        e.set_fault(parent_ch, FaultInjector::new(0.05).data_only());
        e.run_until(SimTime::from_secs(30));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(
            s.stats.retransmits_multicast + s.stats.retransmits_unicast > 0,
            "losses must be repaired"
        );
        // Reliability: every receiver's in-order prefix reaches reach_all.
        let reach = s.max_reach_all();
        assert!(reach > 100);
        for &r in &receivers {
            let rx: &McastReceiver = e.agent_as(r).unwrap();
            assert!(rx.cum_ack() >= reach);
        }
    }

    #[test]
    fn unicast_retransmission_when_threshold_high() {
        use netsim::fault::FaultInjector;
        let cfg = RlaConfig {
            rexmit_threshold: 100, // force unicast repairs
            ..RlaConfig::default()
        };
        let (mut e, sender, receivers) = session(17, 2, 100_000_000, cfg);
        let leaf_node = e.world().agent_node(receivers[0]);
        let parent_ch = (0..e.world().channel_count())
            .map(netsim::id::ChannelId::from)
            .find(|&c| e.world().channel(c).to == leaf_node)
            .unwrap();
        e.set_fault(parent_ch, FaultInjector::new(0.05).data_only());
        e.run_until(SimTime::from_secs(30));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(s.stats.retransmits_unicast > 0, "repairs must be unicast");
        assert_eq!(s.stats.retransmits_multicast, 0);
    }

    #[test]
    fn stalls_when_one_receiver_goes_dark_but_survives() {
        use netsim::fault::FaultInjector;
        let (mut e, sender, receivers) = session(19, 1, 100_000_000, RlaConfig::default());
        e.run_until(SimTime::from_secs(5));
        // Black out one receiver's branch entirely.
        let leaf_node = e.world().agent_node(receivers[0]);
        let parent_ch = (0..e.world().channel_count())
            .map(netsim::id::ChannelId::from)
            .find(|&c| e.world().channel(c).to == leaf_node)
            .unwrap();
        e.set_fault(parent_ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(20));
        // The session is flow-controlled by the dead receiver (no drop
        // option implemented), but must not crash or spin; reach_all
        // freezes while timeouts accumulate.
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(s.stats.timeouts > 0);
        // Heal and verify progress resumes.
        let frozen = s.max_reach_all();
        e.world_mut().channel_mut(parent_ch).fault = None;
        e.run_until(SimTime::from_secs(40));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(
            s.max_reach_all() > frozen + 100,
            "session must resume after the branch heals"
        );
    }

    #[test]
    fn slow_receiver_is_ejected_and_session_recovers() {
        use crate::config::SlowReceiverPolicy;
        use netsim::fault::FaultInjector;
        let cfg = RlaConfig {
            slow_receiver_policy: SlowReceiverPolicy::Eject {
                lag_packets: 50,
                patience: netsim::time::SimDuration::from_secs(5),
            },
            ..RlaConfig::default()
        };
        let (mut e, sender, receivers) = session(19, 1, 100_000_000, cfg);
        e.run_until(SimTime::from_secs(5));
        // Black out one receiver's branch entirely.
        let leaf_node = e.world().agent_node(receivers[0]);
        let parent_ch = (0..e.world().channel_count())
            .map(netsim::id::ChannelId::from)
            .find(|&c| e.world().channel(c).to == leaf_node)
            .unwrap();
        e.set_fault(parent_ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(60));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert_eq!(
            s.stats.ejected_receivers,
            vec![receivers[0]],
            "the dead receiver must be ejected"
        );
        // The session must have kept moving for the other receivers: on a
        // fast clean path it delivers thousands of packets in 60 s.
        assert!(
            s.max_reach_all() > 2000,
            "session stalled despite ejection: reach_all = {}",
            s.max_reach_all()
        );
        for &r in &receivers[1..] {
            let rx: &McastReceiver = e.agent_as(r).unwrap();
            assert!(rx.cum_ack() >= s.max_reach_all());
        }
    }

    #[test]
    fn keep_policy_never_ejects() {
        use netsim::fault::FaultInjector;
        let (mut e, sender, receivers) = session(19, 1, 100_000_000, RlaConfig::default());
        e.run_until(SimTime::from_secs(5));
        let leaf_node = e.world().agent_node(receivers[0]);
        let parent_ch = (0..e.world().channel_count())
            .map(netsim::id::ChannelId::from)
            .find(|&c| e.world().channel(c).to == leaf_node)
            .unwrap();
        e.set_fault(parent_ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(30));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(s.stats.ejected_receivers.is_empty());
    }

    #[test]
    fn mid_session_leave_and_join_keep_the_session_consistent() {
        let (mut e, sender, receivers) = session(29, 2, 100_000_000, RlaConfig::default());
        e.run_until(SimTime::from_secs(5));
        let group = GroupId::from(0usize);
        let root = e.world().agent_node(sender);
        // Receiver 0 leaves: group membership, tree, then sender state.
        assert!(e.leave_group(group, receivers[0]));
        e.build_group_tree(group, root);
        {
            let s: &mut RlaSender = e.agent_as_mut(sender).unwrap();
            assert!(s.remove_receiver(receivers[0]));
            assert!(!s.remove_receiver(receivers[0]), "double leave is a no-op");
        }
        e.run_until(SimTime::from_secs(10));
        // A fresh receiver joins at the same leaf mid-session.
        let leaf = e.world().agent_node(receivers[0]);
        let now = e.now();
        let next = {
            let s: &RlaSender = e.agent_as(sender).unwrap();
            s.next_seq()
        };
        let joiner = e.add_agent(leaf, Box::new(McastReceiver::joining_at(next, 40)));
        e.join_group(group, joiner);
        e.build_group_tree(group, root);
        {
            let s: &mut RlaSender = e.agent_as_mut(sender).unwrap();
            s.add_receiver(joiner, now);
        }
        e.run_until(SimTime::from_secs(30));
        let s: &RlaSender = e.agent_as(sender).unwrap();
        assert!(
            s.max_reach_all() > next + 500,
            "session must keep moving after churn (reach_all {} vs join seq {next})",
            s.max_reach_all()
        );
        let rx: &McastReceiver = e.agent_as(joiner).unwrap();
        assert!(
            rx.cum_ack() >= s.max_reach_all(),
            "joiner's in-order prefix must reach reach_all"
        );
        assert!(
            s.stats.ejected_receivers.is_empty(),
            "a voluntary leave is not an ejection"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut e, sender, _) = session(23, 2, 800_000, RlaConfig::default());
            e.run_until(SimTime::from_secs(50));
            let s: &RlaSender = e.agent_as(sender).unwrap();
            (
                s.stats.delivered,
                s.stats.cong_signals,
                s.stats.window_cuts(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_rejected_at_start() {
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let _other = e.add_node("m");
        let g = e.new_group();
        let s = e.add_agent(n, Box::new(RlaSender::new(g, RlaConfig::default())));
        e.compute_routes();
        let _ = NodeId(0);
        e.start_agent_at(s, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
    }
}
