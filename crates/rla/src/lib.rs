//! # rla — the Random Listening Algorithm
//!
//! The primary contribution of *Achieving Bounded Fairness for Multicast
//! and TCP Traffic in the Internet* (Wang & Schwartz, SIGCOMM 1998):
//! window-based multicast congestion control that shares bandwidth with TCP
//! within **provable bounds** ("essential fairness") without locating the
//! session's bottleneck branches.
//!
//! ## The idea
//!
//! A multicast sender hears congestion signals from *every* congested
//! receiver. Reacting to each one would drive throughput to zero as the
//! group grows; reacting only to the worst receiver requires identifying
//! it, which loss information alone cannot do quickly. The RLA instead
//! **listens at random**: on each congestion signal it halves its window
//! with probability `1/n`, where `n` is the number of receivers currently
//! reporting losses frequently. On average it reacts once per `n` signals —
//! as if listening to one representative receiver — and the paper proves
//! the resulting throughput is bounded between `a·λ_TCP` and `b·λ_TCP`
//! (Theorem I: `a = 1/3`, `b = √(3n)` with RED gateways; Theorem II:
//! `a = 1/4`, `b = 2n` with drop-tail gateways and phase effects removed).
//!
//! ## Crate contents
//!
//! * [`RlaSender`] / [`McastReceiver`] — the protocol agents (§3.3's six
//!   rules, including forced cuts, the troubled-receiver count with
//!   `η = 20`, and the multicast/unicast retransmission policy).
//! * [`TroubleTracker`] — rule 6's dynamic `num_trouble_rcvr`.
//! * [`PthreshPolicy`] — the restricted-topology rule `1/n` and the
//!   generalized `(rtt_i/rtt_max)²/n` for unequal round-trip times (§5.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod rate_rla;
pub mod receiver;
pub mod sender;
pub mod trouble;

pub use config::{PthreshPolicy, RlaConfig, SlowReceiverPolicy};
pub use rate_rla::{RateRla, RateRlaConfig};
pub use receiver::{McastReceiver, McastReceiverStats};
pub use sender::{RlaSender, RlaStats};
pub use trouble::{CongestionHistory, TroubleTracker};
