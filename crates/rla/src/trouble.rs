//! Troubled-receiver accounting (paper §3.3, rule 6).
//!
//! The RLA sender reduces its window with probability `1/n` per congestion
//! signal, where `n = num_trouble_rcvr` is a *dynamic* count of receivers
//! reporting losses frequently. A congested receiver counts as troubled
//! only if its congestion probability exceeds
//! `1 / (η * min_congestion_interval)` — equivalently, if its average
//! congestion-signal interval is below `η` times the smallest average
//! interval among all receivers. The proof of the Proposition (§4.2) needs
//! every troubled receiver's congestion probability to be at least
//! `p_max / η`; with `η = 20` that leaves margin over the bound
//! `f(p_1) ≈ 0.03` required for the upper bound of equation (2).
//!
//! To make the count *adaptive* (receivers whose congestion ended must age
//! out), the interval estimate of a receiver is taken as
//! `max(EWMA, time since its last signal)`: a silent receiver's estimated
//! interval grows with its silence, and it eventually leaves the set.

use netsim::time::SimTime;

/// Per-receiver congestion-signal history.
#[derive(Debug, Clone, Default)]
pub struct CongestionHistory {
    /// Congestion signals detected from this receiver (total).
    pub signals: u64,
    /// Time of the most recent signal.
    pub last_signal: Option<SimTime>,
    /// EWMA of the interval between consecutive signals, seconds.
    pub interval_ewma: Option<f64>,
}

impl CongestionHistory {
    /// Best current estimate of this receiver's congestion-signal interval:
    /// the EWMA, but never less than the time it has now been silent.
    pub fn interval_estimate(&self, now: SimTime) -> Option<f64> {
        let last = self.last_signal?;
        let gap = now.saturating_since(last).as_secs_f64();
        Some(match self.interval_ewma {
            Some(ewma) => ewma.max(gap),
            None => gap,
        })
    }
}

/// The dynamic troubled-receiver tracker.
#[derive(Debug)]
pub struct TroubleTracker {
    eta: f64,
    gain: f64,
    histories: Vec<CongestionHistory>,
}

impl TroubleTracker {
    /// Track `n` receivers with the given η and EWMA gain.
    pub fn new(n: usize, eta: f64, gain: f64) -> Self {
        TroubleTracker {
            eta,
            gain,
            histories: vec![CongestionHistory::default(); n],
        }
    }

    /// Record a congestion signal from receiver `idx` at `now`.
    pub fn record_signal(&mut self, idx: usize, now: SimTime) {
        let h = &mut self.histories[idx];
        if let Some(last) = h.last_signal {
            let interval = now.saturating_since(last).as_secs_f64();
            h.interval_ewma = Some(match h.interval_ewma {
                Some(ewma) => ewma + self.gain * (interval - ewma),
                None => interval,
            });
        }
        h.last_signal = Some(now);
        h.signals += 1;
    }

    /// The receiver's history (for statistics).
    pub fn history(&self, idx: usize) -> &CongestionHistory {
        &self.histories[idx]
    }

    /// The smallest interval estimate among receivers with an established
    /// EWMA (>= 2 signals); falls back to single-signal receivers when no
    /// EWMA exists yet.
    pub fn min_congestion_interval(&self, now: SimTime) -> Option<f64> {
        let with_ewma = self
            .histories
            .iter()
            .filter(|h| h.interval_ewma.is_some())
            .filter_map(|h| h.interval_estimate(now))
            .fold(f64::INFINITY, f64::min);
        if with_ewma.is_finite() {
            return Some(with_ewma);
        }
        let any = self
            .histories
            .iter()
            .filter_map(|h| h.interval_estimate(now))
            .fold(f64::INFINITY, f64::min);
        any.is_finite().then_some(any)
    }

    /// Is receiver `idx` currently troubled?
    pub fn is_troubled(&self, idx: usize, now: SimTime) -> bool {
        let Some(est) = self.histories[idx].interval_estimate(now) else {
            return false; // never congested
        };
        match self.min_congestion_interval(now) {
            Some(min) => est <= self.eta * min.max(f64::MIN_POSITIVE),
            None => false,
        }
    }

    /// The dynamic `num_trouble_rcvr`.
    pub fn troubled_count(&self, now: SimTime) -> usize {
        let Some(min) = self.min_congestion_interval(now) else {
            return 0;
        };
        let bound = self.eta * min.max(f64::MIN_POSITIVE);
        self.histories
            .iter()
            .filter(|h| h.interval_estimate(now).is_some_and(|e| e <= bound))
            .count()
    }

    /// Forget a receiver's history entirely (used when the sender ejects
    /// a slow receiver): it immediately stops counting as troubled and
    /// contributes nothing to `min_congestion_interval`.
    pub fn deactivate(&mut self, idx: usize) {
        self.histories[idx] = CongestionHistory::default();
    }

    /// Track one more receiver (a mid-session join): it starts with an
    /// empty history, so it is not troubled until it signals. Returns the
    /// new receiver's index.
    pub fn add_receiver(&mut self) -> usize {
        self.histories.push(CongestionHistory::default());
        self.histories.len() - 1
    }

    /// Number of tracked receivers.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// `true` when no receivers are tracked.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// Feed receiver `idx` one signal every `period` seconds over `span`.
    fn feed(tr: &mut TroubleTracker, idx: usize, period: f64, span: f64) {
        let mut at = 0.0;
        while at <= span {
            tr.record_signal(idx, t(at));
            at += period;
        }
    }

    #[test]
    fn untracked_receiver_is_not_troubled() {
        let tr = TroubleTracker::new(3, 20.0, 0.125);
        assert!(!tr.is_troubled(0, t(10.0)));
        assert_eq!(tr.troubled_count(t(10.0)), 0);
    }

    #[test]
    fn equally_congested_receivers_all_troubled() {
        let mut tr = TroubleTracker::new(3, 20.0, 0.125);
        for idx in 0..3 {
            feed(&mut tr, idx, 1.0, 30.0);
        }
        assert_eq!(tr.troubled_count(t(30.0)), 3);
        let min = tr.min_congestion_interval(t(30.0)).unwrap();
        assert!((min - 1.0).abs() < 0.05, "min interval ~1s, got {min}");
    }

    #[test]
    fn mildly_congested_receiver_stays_within_eta() {
        let mut tr = TroubleTracker::new(2, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 60.0); // heavy congestion: 1 Hz
        feed(&mut tr, 1, 15.0, 60.0); // mild: every 15 s < 20 * 1 s
        assert!(tr.is_troubled(0, t(60.0)));
        assert!(tr.is_troubled(1, t(60.0)));
        assert_eq!(tr.troubled_count(t(60.0)), 2);
    }

    #[test]
    fn rare_loss_receiver_excluded() {
        let mut tr = TroubleTracker::new(2, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 120.0); // heavy congestion
        feed(&mut tr, 1, 50.0, 120.0); // rare: every 50 s > 20 * 1 s
        assert!(tr.is_troubled(0, t(120.0)));
        assert!(!tr.is_troubled(1, t(120.0)), "rare loss must not count");
        assert_eq!(tr.troubled_count(t(120.0)), 1);
    }

    #[test]
    fn silent_receiver_ages_out() {
        let mut tr = TroubleTracker::new(2, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 100.0);
        feed(&mut tr, 1, 1.0, 50.0); // stops being congested at t=50
        assert!(tr.is_troubled(1, t(51.0)), "recently congested");
        // After a silence of more than eta * min_interval = 20 s, receiver
        // 1 must have aged out.
        for at in 100..200 {
            tr.record_signal(0, t(at as f64));
        }
        assert!(
            !tr.is_troubled(1, t(200.0)),
            "silent receiver still counted"
        );
        assert_eq!(tr.troubled_count(t(200.0)), 1);
    }

    #[test]
    fn single_signal_receiver_is_provisionally_troubled() {
        let mut tr = TroubleTracker::new(2, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 30.0);
        tr.record_signal(1, t(30.0));
        // Right after its first signal the gap is ~0 <= eta * min.
        assert!(tr.is_troubled(1, t(30.5)));
        // But if it never signals again it ages out.
        for at in 31..120 {
            tr.record_signal(0, t(at as f64));
        }
        assert!(!tr.is_troubled(1, t(120.0)));
    }

    #[test]
    fn deactivated_receiver_vanishes() {
        let mut tr = TroubleTracker::new(2, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 30.0);
        feed(&mut tr, 1, 1.0, 30.0);
        assert_eq!(tr.troubled_count(t(30.0)), 2);
        tr.deactivate(1);
        assert_eq!(tr.troubled_count(t(30.0)), 1);
        assert!(!tr.is_troubled(1, t(30.0)));
    }

    #[test]
    fn ewma_tracks_changing_interval() {
        let mut tr = TroubleTracker::new(1, 20.0, 0.5);
        // Intervals of 2 s, then 4 s: EWMA must move toward 4.
        for at in [0.0, 2.0, 4.0, 6.0, 10.0, 14.0, 18.0, 22.0] {
            tr.record_signal(0, t(at));
        }
        let ewma = tr.history(0).interval_ewma.unwrap();
        assert!(ewma > 3.0 && ewma < 4.1, "ewma = {ewma}");
    }

    #[test]
    fn interval_estimate_grows_with_silence() {
        let mut tr = TroubleTracker::new(1, 20.0, 0.125);
        feed(&mut tr, 0, 1.0, 10.0);
        let e1 = tr.history(0).interval_estimate(t(11.0)).unwrap();
        let e2 = tr.history(0).interval_estimate(t(100.0)).unwrap();
        assert!(e2 > e1 && e2 > 80.0);
    }
}
