//! Rate-based random listening — the paper's §6 future-work direction.
//!
//! > "It is worth noting that the idea of 'random listening' can be used
//! > in conjunction with other forms of congestion control mechanism,
//! > such as rate-based control. The key idea is to randomly react to the
//! > congestion signals from all receivers and to achieve a reasonable
//! > reaction to congestion on the average over a long run."
//!
//! This module implements exactly that: a [`RateController`] (pluggable
//! into the `baselines` crate's [`RateSender`](baselines::RateSender))
//! that, on each update tick, treats every receiver reporting fresh
//! losses as one congestion signal and halves the rate **with probability
//! `1/n`** per signal, where `n` is the troubled-receiver count derived
//! from the same η-rule as the window-based RLA. Unlike LTRC/MBFC there
//! is no loss-rate threshold to tune.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use baselines::rate_sender::{RateController, ReceiverReport};
use netsim::id::AgentId;
use netsim::time::{SimDuration, SimTime};

use crate::trouble::TroubleTracker;

/// Configuration of the rate-based random listener.
#[derive(Debug, Clone)]
pub struct RateRlaConfig {
    /// The η constant of the troubled-receiver rule.
    pub eta: f64,
    /// EWMA gain for per-receiver congestion intervals.
    pub interval_gain: f64,
    /// Additive increase per update interval, pkt/s.
    pub increase_pps: f64,
    /// Ignore reports older than this.
    pub report_timeout: SimDuration,
    /// RNG seed for the listening coin (kept internal so the controller
    /// can be driven outside an engine; determinism still holds per
    /// seed).
    pub seed: u64,
}

impl Default for RateRlaConfig {
    fn default() -> Self {
        RateRlaConfig {
            eta: 20.0,
            interval_gain: 0.125,
            increase_pps: 2.0,
            report_timeout: SimDuration::from_secs(5),
            seed: 7,
        }
    }
}

/// The §6 controller: random listening over loss reports.
#[derive(Debug)]
pub struct RateRla {
    cfg: RateRlaConfig,
    rng: StdRng,
    /// Receiver identities in tracker order.
    receivers: Vec<AgentId>,
    trouble: TroubleTracker,
    /// Highest report timestamp already processed per receiver.
    processed: Vec<SimTime>,
    reductions: u64,
}

impl RateRla {
    /// A fresh controller.
    pub fn new(cfg: RateRlaConfig) -> Self {
        assert!(cfg.eta >= 1.0, "eta must be at least 1");
        RateRla {
            rng: StdRng::seed_from_u64(cfg.seed),
            trouble: TroubleTracker::new(0, cfg.eta, cfg.interval_gain),
            receivers: Vec::new(),
            processed: Vec::new(),
            cfg,
            reductions: 0,
        }
    }

    fn index_of(&mut self, receiver: AgentId) -> usize {
        if let Some(i) = self.receivers.iter().position(|&r| r == receiver) {
            return i;
        }
        // First report from a new receiver: grow the tracker.
        self.receivers.push(receiver);
        self.processed.push(SimTime::ZERO);
        let mut grown =
            TroubleTracker::new(self.receivers.len(), self.cfg.eta, self.cfg.interval_gain);
        std::mem::swap(&mut grown, &mut self.trouble);
        // Replay nothing: histories restart, which only makes the count
        // conservative for a few intervals.
        for idx in 0..grown.len() {
            let _ = idx;
        }
        self.receivers.len() - 1
    }
}

impl RateController for RateRla {
    fn update(&mut self, now: SimTime, rate: f64, reports: &[ReceiverReport]) -> f64 {
        // Gather fresh loss signals.
        let mut signals = 0usize;
        for report in reports {
            if now.saturating_since(report.updated_at) > self.cfg.report_timeout {
                continue;
            }
            let idx = self.index_of(report.receiver);
            if report.updated_at <= self.processed[idx] {
                continue; // already seen this report
            }
            self.processed[idx] = report.updated_at;
            if report.interval_loss_rate > 0.0 {
                self.trouble.record_signal(idx, now);
                signals += 1;
            }
        }
        if signals == 0 {
            return rate + self.cfg.increase_pps;
        }
        // Random listening: each signal is heeded with probability 1/n.
        let n = self.trouble.troubled_count(now).max(1);
        let mut cuts = 0u32;
        for _ in 0..signals {
            if self.rng.gen::<f64>() < 1.0 / n as f64 {
                cuts += 1;
            }
        }
        if cuts > 0 {
            self.reductions += u64::from(cuts);
            rate / 2.0f64.powi(cuts.min(8) as i32)
        } else {
            rate + self.cfg.increase_pps
        }
    }

    fn reductions(&self) -> u64 {
        self.reductions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(id: u32, loss: f64, at: SimTime) -> ReceiverReport {
        ReceiverReport {
            receiver: AgentId(id),
            avg_loss_rate: loss,
            interval_loss_rate: loss,
            updated_at: at,
        }
    }

    #[test]
    fn increases_without_losses() {
        let mut c = RateRla::new(RateRlaConfig::default());
        let r = c.update(
            SimTime::from_secs(1),
            10.0,
            &[report(0, 0.0, SimTime::from_secs(1))],
        );
        assert!(r > 10.0);
        assert_eq!(c.reductions(), 0);
    }

    #[test]
    fn single_receiver_always_listens() {
        // n = 1: every loss signal must halve the rate.
        let mut c = RateRla::new(RateRlaConfig::default());
        let mut rate = 64.0;
        for tick in 1..=5 {
            rate = c.update(
                SimTime::from_secs(tick),
                rate,
                &[report(0, 0.1, SimTime::from_secs(tick))],
            );
        }
        assert_eq!(c.reductions(), 5);
        assert!(rate < 64.0 / 16.0);
    }

    #[test]
    fn stale_reports_not_double_counted() {
        let mut c = RateRla::new(RateRlaConfig::default());
        let rep = report(0, 0.1, SimTime::from_secs(1));
        let r1 = c.update(SimTime::from_secs(1), 32.0, &[rep]);
        // Same report again: no new signal, rate must increase.
        let r2 = c.update(SimTime::from_secs(2), r1, &[rep]);
        assert!(r2 > r1);
        assert_eq!(c.reductions(), 1);
    }

    #[test]
    fn listening_probability_scales_with_population() {
        // 20 equally-congested receivers: across many ticks the cut count
        // should be near (ticks * 20) / n = ticks, not ticks * 20.
        let mut c = RateRla::new(RateRlaConfig::default());
        let ticks = 400u64;
        let mut rate = 100.0;
        for tick in 1..=ticks {
            let now = SimTime::from_secs(tick);
            let reports: Vec<ReceiverReport> = (0..20).map(|i| report(i, 0.05, now)).collect();
            rate = c.update(now, rate, &reports).clamp(1.0, 1e6);
        }
        let cuts = c.reductions();
        // Expectation ≈ ticks (each tick: 20 signals × 1/20). Allow 3σ.
        assert!(
            (cuts as f64) > ticks as f64 * 0.5 && (cuts as f64) < ticks as f64 * 1.6,
            "cuts {cuts} should be near {ticks}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut c = RateRla::new(RateRlaConfig::default());
            let mut rate = 50.0;
            for tick in 1..=50 {
                let now = SimTime::from_secs(tick);
                let reports: Vec<ReceiverReport> = (0..5).map(|i| report(i, 0.02, now)).collect();
                rate = c.update(now, rate, &reports);
            }
            (rate.to_bits(), c.reductions())
        };
        assert_eq!(run(), run());
    }
}
