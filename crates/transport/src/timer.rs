//! Generation-tokened timer management (retransmission and pacing).
//!
//! The engine's [`Context::set_timer`] cannot cancel a pending timer, so
//! window-based senders re-arm by bumping a generation counter and using
//! it as the timer token: when a timer fires with a stale token it has
//! been superseded by a later re-arm and is ignored. [`RexmitTimer`] owns
//! that counter so every sender spells the protocol the same way.
//!
//! [`PacingTimer`] applies the same protocol to the pacing release timer
//! a rate-based sender arms between transmissions. Both timers deliver
//! through the same `Agent::on_timer(token)` entry point, so the pacing
//! tokens carry a high tag bit ([`PACING_TOKEN_BIT`]) that keeps the two
//! token spaces disjoint: the sender routes on the bit, then validates
//! the generation.

use netsim::engine::Context;
use netsim::time::{SimDuration, SimTime};

/// Tag bit marking a timer token as a pacing token. Generation counters
/// are far below `2^63`, so the bit is unambiguous.
pub const PACING_TOKEN_BIT: u64 = 1 << 63;

/// A re-armable retransmission timer built on the engine's one-shot
/// timers.
#[derive(Debug, Clone, Default)]
pub struct RexmitTimer {
    generation: u64,
}

impl RexmitTimer {
    /// A timer that has never been armed.
    pub fn new() -> Self {
        RexmitTimer { generation: 0 }
    }

    /// (Re)arm the timer to fire `rto` from now. Any previously armed
    /// firing becomes stale.
    pub fn arm(&mut self, ctx: &mut Context<'_>, rto: SimDuration) {
        self.generation += 1;
        ctx.set_timer(rto, self.generation);
    }

    /// Whether a firing with `token` is the current arm (stale firings
    /// must be ignored).
    pub fn is_current(&self, token: u64) -> bool {
        token == self.generation
    }
}

/// A re-armable pacing timer: wakes the sender when the pacing gate
/// opens. Its tokens carry [`PACING_TOKEN_BIT`] so they cannot collide
/// with a [`RexmitTimer`] sharing the agent's `on_timer`.
#[derive(Debug, Clone, Default)]
pub struct PacingTimer {
    generation: u64,
}

impl PacingTimer {
    /// A timer that has never been armed.
    pub fn new() -> Self {
        PacingTimer { generation: 0 }
    }

    /// (Re)arm the timer to fire at the absolute instant `at`. Any
    /// previously armed firing becomes stale.
    pub fn arm_at(&mut self, ctx: &mut Context<'_>, at: SimTime) {
        self.generation += 1;
        ctx.set_timer_at(at, PACING_TOKEN_BIT | self.generation);
    }

    /// Whether `token` belongs to the pacing token space at all (route on
    /// this first, then check [`PacingTimer::is_current`]).
    pub fn matches(token: u64) -> bool {
        token & PACING_TOKEN_BIT != 0
    }

    /// Whether a firing with `token` is the current arm.
    pub fn is_current(&self, token: u64) -> bool {
        token == PACING_TOKEN_BIT | self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::agent::Agent;
    use netsim::engine::Engine;
    use netsim::packet::Packet;
    use netsim::time::SimTime;
    use std::any::Any;

    /// An agent that re-arms its timer on start and again shortly after,
    /// recording which firings were current.
    struct Rearmer {
        timer: RexmitTimer,
        fired_current: u64,
        fired_stale: u64,
    }

    impl Agent for Rearmer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.timer.arm(ctx, SimDuration::from_millis(100));
            // Supersede immediately: the first arm's firing must be stale.
            self.timer.arm(ctx, SimDuration::from_millis(200));
        }

        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_>) {
            if self.timer.is_current(token) {
                self.fired_current += 1;
            } else {
                self.fired_stale += 1;
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// An agent running a rexmit and a pacing timer side by side: the
    /// token spaces must stay disjoint and each generation protocol must
    /// work through the shared `on_timer`.
    struct DualTimer {
        rexmit: RexmitTimer,
        pacer: PacingTimer,
        rexmit_fired: u64,
        pacing_current: u64,
        pacing_stale: u64,
    }

    impl Agent for DualTimer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.rexmit.arm(ctx, SimDuration::from_millis(50));
            self.pacer.arm_at(ctx, SimTime::from_millis(100));
            // Supersede the pacing arm: only the second may be current.
            self.pacer.arm_at(ctx, SimTime::from_millis(150));
        }

        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_>) {
            if PacingTimer::matches(token) {
                if self.pacer.is_current(token) {
                    self.pacing_current += 1;
                } else {
                    self.pacing_stale += 1;
                }
            } else if self.rexmit.is_current(token) {
                self.rexmit_fired += 1;
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn pacing_and_rexmit_tokens_stay_disjoint() {
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let a = e.add_agent(
            n,
            Box::new(DualTimer {
                rexmit: RexmitTimer::new(),
                pacer: PacingTimer::new(),
                rexmit_fired: 0,
                pacing_current: 0,
                pacing_stale: 0,
            }),
        );
        e.compute_routes();
        e.start_agent_at(a, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let agent: &DualTimer = e.agent_as(a).unwrap();
        assert_eq!(agent.rexmit_fired, 1, "rexmit arm must fire current");
        assert_eq!(agent.pacing_stale, 1, "first pacing arm must be stale");
        assert_eq!(agent.pacing_current, 1, "second pacing arm is current");
    }

    #[test]
    fn rearming_supersedes_pending_firings() {
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let a = e.add_agent(
            n,
            Box::new(Rearmer {
                timer: RexmitTimer::new(),
                fired_current: 0,
                fired_stale: 0,
            }),
        );
        e.compute_routes();
        e.start_agent_at(a, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let agent: &Rearmer = e.agent_as(a).unwrap();
        assert_eq!(agent.fired_stale, 1, "first arm must fire stale");
        assert_eq!(agent.fired_current, 1, "second arm must fire current");
    }
}
