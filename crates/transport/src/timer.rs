//! Generation-tokened retransmission-timer management.
//!
//! The engine's [`Context::set_timer`] cannot cancel a pending timer, so
//! window-based senders re-arm by bumping a generation counter and using
//! it as the timer token: when a timer fires with a stale token it has
//! been superseded by a later re-arm and is ignored. This type owns that
//! counter so every sender spells the protocol the same way.

use netsim::engine::Context;
use netsim::time::SimDuration;

/// A re-armable retransmission timer built on the engine's one-shot
/// timers.
#[derive(Debug, Clone, Default)]
pub struct RexmitTimer {
    generation: u64,
}

impl RexmitTimer {
    /// A timer that has never been armed.
    pub fn new() -> Self {
        RexmitTimer { generation: 0 }
    }

    /// (Re)arm the timer to fire `rto` from now. Any previously armed
    /// firing becomes stale.
    pub fn arm(&mut self, ctx: &mut Context<'_>, rto: SimDuration) {
        self.generation += 1;
        ctx.set_timer(rto, self.generation);
    }

    /// Whether a firing with `token` is the current arm (stale firings
    /// must be ignored).
    pub fn is_current(&self, token: u64) -> bool {
        token == self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::agent::Agent;
    use netsim::engine::Engine;
    use netsim::packet::Packet;
    use netsim::time::SimTime;
    use std::any::Any;

    /// An agent that re-arms its timer on start and again shortly after,
    /// recording which firings were current.
    struct Rearmer {
        timer: RexmitTimer,
        fired_current: u64,
        fired_stale: u64,
    }

    impl Agent for Rearmer {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.timer.arm(ctx, SimDuration::from_millis(100));
            // Supersede immediately: the first arm's firing must be stale.
            self.timer.arm(ctx, SimDuration::from_millis(200));
        }

        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_>) {
            if self.timer.is_current(token) {
                self.fired_current += 1;
            } else {
                self.fired_stale += 1;
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn rearming_supersedes_pending_firings() {
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let a = e.add_agent(
            n,
            Box::new(Rearmer {
                timer: RexmitTimer::new(),
                fired_current: 0,
                fired_stale: 0,
            }),
        );
        e.compute_routes();
        e.start_agent_at(a, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let agent: &Rearmer = e.agent_as(a).unwrap();
        assert_eq!(agent.fired_stale, 1, "first arm must fire stale");
        assert_eq!(agent.fired_current, 1, "second arm must fire current");
    }
}
