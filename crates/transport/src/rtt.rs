//! Round-trip time estimation and the retransmission timeout.
//!
//! Jacobson's estimator (`srtt`, `rttvar`) with exponential backoff, as in
//! RFC 6298 and the NS2 agents the paper simulated against. Moved here
//! from `tcp_sack::rto` (which re-exports it) so the RLA's per-receiver
//! estimators and the baselines share one implementation.

use netsim::time::SimDuration;

/// RTT estimator and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    /// The raw most-recent accepted sample (Karn-ambiguous ones excluded).
    last_sample: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Current backoff multiplier (doubles per timeout, resets on new ack).
    backoff: u32,
}

impl RttEstimator {
    /// A fresh estimator with the given RTO clamp.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            last_sample: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Fold in a new RTT sample (and clear any timeout backoff, since a
    /// sample implies forward progress).
    pub fn sample(&mut self, rtt: SimDuration) {
        self.last_sample = Some(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // rttvar <- 3/4 rttvar + 1/4 |err| ; srtt <- 7/8 srtt + 1/8 rtt
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() / 4) * 3 + err.as_nanos() / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() / 8) * 7 + rtt.as_nanos() / 8,
                ));
            }
        }
        self.backoff = 0;
    }

    /// Karn's algorithm: fold in the sample only when the acknowledged
    /// segment was never retransmitted — an ack for a retransmitted
    /// segment is ambiguous (it may answer either transmission), so it
    /// must neither update the estimate nor clear the timeout backoff.
    /// Returns whether the sample was taken.
    pub fn karn_sample(&mut self, rtt: SimDuration, retransmitted: bool) -> bool {
        if retransmitted {
            return false;
        }
        self.sample(rtt);
        true
    }

    /// The smoothed round-trip time, if any sample has been taken.
    ///
    /// `None` before the first measurement — callers must not invent a
    /// default here; reporting an SRTT that was never measured is exactly
    /// the bug the raw accessors exist to avoid.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The raw, unsmoothed most-recent RTT sample, if any has been
    /// accepted. Karn-ambiguous samples (rejected by
    /// [`RttEstimator::karn_sample`]) do not appear here: an ambiguous
    /// measurement is as wrong for a min-RTT filter as it is for the
    /// smoother. This is the accessor BBR's min-RTT filter feeds on —
    /// smoothing would hide exactly the queue-drain minima it looks for.
    pub fn last_sample(&self) -> Option<SimDuration> {
        self.last_sample
    }

    /// The current retransmission timeout (backoff included, clamped).
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => SimDuration::from_secs(3), // RFC 6298 initial RTO
            Some(srtt) => srtt.saturating_add(self.rttvar * 4),
        };
        let factor = 1u64 << self.backoff.min(16);
        let backed = SimDuration::from_nanos(base.as_nanos().saturating_mul(factor));
        backed.clamp(self.min_rto, self.max_rto)
    }

    /// A retransmission timer expired: double the RTO.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(64))
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        assert_eq!(e.srtt(), None);
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn no_estimate_is_reported_before_any_measurement() {
        // Regression: a fresh estimator must answer `None` for both the
        // smoothed and the raw views — not an NS2-style default the
        // caller could mistake for a measurement.
        let e = est();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.last_sample(), None);
    }

    #[test]
    fn last_sample_is_raw_and_karn_filtered() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        e.sample(SimDuration::from_millis(60));
        // The smoother has barely moved, the raw view is exactly 60 ms.
        assert_eq!(e.last_sample(), Some(SimDuration::from_millis(60)));
        assert!(e.srtt().unwrap() > SimDuration::from_millis(90));
        // A Karn-ambiguous sample must not leak into the raw view either.
        assert!(!e.karn_sample(SimDuration::from_secs(5), true));
        assert_eq!(e.last_sample(), Some(SimDuration::from_millis(60)));
    }

    #[test]
    fn smoothing_converges_to_constant_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.080).abs() < 0.001, "srtt = {srtt}");
        // With zero variance the RTO pins at the minimum.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 2);
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 4);
        e.sample(SimDuration::from_millis(100));
        assert!(e.rto() <= base, "backoff must clear on a new sample");
    }

    #[test]
    fn rto_clamped_at_max() {
        let mut e = est();
        e.sample(SimDuration::from_secs(1));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64));
    }

    #[test]
    fn initial_rto_without_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(3));
    }

    #[test]
    fn karn_skips_retransmitted_segments() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let srtt = e.srtt();
        let rto = e.rto();
        // A wildly different RTT measured off a retransmitted segment must
        // leave the estimate untouched.
        assert!(!e.karn_sample(SimDuration::from_secs(5), true));
        assert_eq!(e.srtt(), srtt);
        assert_eq!(e.rto(), rto);
        // A clean segment's sample is folded in normally.
        assert!(e.karn_sample(SimDuration::from_millis(100), false));
        assert_eq!(e.srtt(), srtt);
    }

    #[test]
    fn karn_preserves_timeout_backoff() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        e.on_timeout();
        let backed = e.rto();
        // An ambiguous sample must not clear the backoff...
        assert!(!e.karn_sample(SimDuration::from_millis(100), true));
        assert_eq!(e.rto(), backed);
        // ...but an unambiguous one does.
        assert!(e.karn_sample(SimDuration::from_millis(100), false));
        assert!(e.rto() < backed);
    }

    #[test]
    fn backoff_factor_caps_at_two_to_the_sixteen() {
        // A huge max_rto exposes the raw backoff factor: after 16 timeouts
        // the multiplier must stop doubling (no shift overflow, no runaway
        // RTO) no matter how many more timeouts fire.
        let mut e = RttEstimator::new(SimDuration::from_millis(1), SimDuration::from_secs(100_000));
        e.sample(SimDuration::from_millis(100));
        let base = e.rto();
        for _ in 0..16 {
            e.on_timeout();
        }
        let capped = e.rto();
        assert_eq!(capped.as_nanos(), base.as_nanos() * (1 << 16));
        for _ in 0..100 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), capped, "backoff factor must saturate");
    }

    proptest! {
        /// From any starting sample, repeated constant samples converge the
        /// smoothed RTT to that constant (within the estimator's integer
        /// truncation) and the RTO stays within its clamp.
        #[test]
        fn srtt_converges_under_constant_samples(
            initial_ns in 1u64..10_000_000_000,
            constant_ns in 1u64..10_000_000_000,
        ) {
            let mut e = est();
            e.sample(SimDuration::from_nanos(initial_ns));
            for _ in 0..256 {
                e.sample(SimDuration::from_nanos(constant_ns));
            }
            let srtt = e.srtt().unwrap().as_nanos();
            // 7/8-smoothing decays the initial error below a nanosecond in
            // well under 256 steps; what remains is the /8 truncation.
            let diff = srtt.abs_diff(constant_ns);
            prop_assert!(diff <= 64, "srtt {srtt} vs constant {constant_ns}");
            let rto = e.rto();
            prop_assert!(rto >= SimDuration::from_millis(200));
            prop_assert!(rto <= SimDuration::from_secs(64));
        }
    }
}
