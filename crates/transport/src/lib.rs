//! # transport — shared congestion-control machinery
//!
//! The paper's fairness results rest on the RLA mimicking TCP's window
//! dynamics (§4.1): both grow by `+1` per ack in slow start and `+1/cwnd`
//! in congestion avoidance, both halve on a congestion signal, and both
//! coalesce the losses of one window into a single signal. Before this
//! crate existed the TCP SACK sender, the RLA sender and the rate-based
//! baselines each re-implemented that machinery; now they share it:
//!
//! * [`WindowState`] — cwnd/ssthresh with the exact growth and halving
//!   arithmetic of the NS2 agents the paper simulated against (plus
//!   [`WindowState::cut_by`] for CUBIC's β = 0.7 decrease);
//! * [`CongestionControl`] — the pluggable policy seam, v2: rate-aware
//!   (`on_ack` / `on_loss` / `on_timeout` / `allowed_window` /
//!   `pacing_rate` over a [`CcSignals`] view), with [`SackCc`] (one
//!   halving per loss window, the paper's `Sack1`), [`RenoCc`] (dup-ack
//!   counting, NewReno-style recovery), [`CubicCc`] (RFC 8312) and
//!   [`BbrV1Cc`] (delivery-rate model, pacing) as the implementations;
//! * [`CcSignals`] — the windowed path estimates ([`minrtt`]'s
//!   [`MinRttFilter`] and [`BandwidthFilter`]) a sender accumulates for
//!   its policy;
//! * [`CongestionEpoch`] — the `2·srtt` loss-coalescing window (rule 2)
//!   and the hold-off timers of the rate-based baselines;
//! * [`RttEstimator`] — Jacobson/Karn RTT estimation and the RTO (moved
//!   here from `tcp_sack::rto`, which re-exports it), with the raw
//!   [`RttEstimator::last_sample`] view the min-RTT filter feeds on;
//! * [`RexmitTimer`] / [`PacingTimer`] — generation-tokened timer
//!   management over the engine's timer facility, in disjoint token
//!   spaces so one agent can run both;
//! * [`SenderStats`] / [`FlowStats`] — the per-flow statistics hook
//!   feeding [`netsim::stats`] accumulators, shared by every sender;
//! * [`defaults`] — the single source of truth for the paper's NS2
//!   parameter defaults (initial window, ssthresh, RTO clamp, sizes).
//!
//! The declarative controller selector (`CcVariant`) moved to
//! `tcp_sack::variants`: it is a registry of *sender* factories, and the
//! senders live there — this crate only defines the policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbr;
pub mod cc;
pub mod cubic;
pub mod defaults;
pub mod epoch;
pub mod minrtt;
pub mod rtt;
pub mod stats;
pub mod timer;
pub mod window;

pub use bbr::BbrV1Cc;
pub use cc::{AckEvent, AckOutcome, CcSignals, CongestionControl, RateSample, RenoCc, SackCc};
pub use cubic::CubicCc;
pub use epoch::CongestionEpoch;
pub use minrtt::{BandwidthFilter, MinRttFilter};
pub use rtt::RttEstimator;
pub use stats::{FlowStats, SenderStats};
pub use timer::{PacingTimer, RexmitTimer};
pub use window::WindowState;
