//! # transport — shared congestion-control machinery
//!
//! The paper's fairness results rest on the RLA mimicking TCP's window
//! dynamics (§4.1): both grow by `+1` per ack in slow start and `+1/cwnd`
//! in congestion avoidance, both halve on a congestion signal, and both
//! coalesce the losses of one window into a single signal. Before this
//! crate existed the TCP SACK sender, the RLA sender and the rate-based
//! baselines each re-implemented that machinery; now they share it:
//!
//! * [`WindowState`] — cwnd/ssthresh with the exact growth and halving
//!   arithmetic of the NS2 agents the paper simulated against;
//! * [`CongestionControl`] — the pluggable policy seam
//!   (`on_ack` / `on_loss` / `on_timeout` / `allowed_window`), with
//!   [`SackCc`] (one halving per loss window, the paper's `Sack1`) and
//!   [`RenoCc`] (dup-ack counting, NewReno-style recovery) as the
//!   implementations;
//! * [`CongestionEpoch`] — the `2·srtt` loss-coalescing window (rule 2)
//!   and the hold-off timers of the rate-based baselines;
//! * [`RttEstimator`] — Jacobson/Karn RTT estimation and the RTO (moved
//!   here from `tcp_sack::rto`, which re-exports it);
//! * [`RexmitTimer`] — generation-tokened retransmission-timer management
//!   over the engine's timer facility;
//! * [`SenderStats`] / [`FlowStats`] — the per-flow statistics hook
//!   feeding [`netsim::stats`] accumulators, shared by every sender;
//! * [`defaults`] — the single source of truth for the paper's NS2
//!   parameter defaults (initial window, ssthresh, RTO clamp, sizes);
//! * [`CcVariant`] — the declarative controller selector the experiment
//!   layer threads through `ScenarioSpec`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod defaults;
pub mod epoch;
pub mod rtt;
pub mod stats;
pub mod timer;
pub mod window;

pub use cc::{AckEvent, AckOutcome, CcVariant, CongestionControl, RenoCc, SackCc};
pub use epoch::CongestionEpoch;
pub use rtt::RttEstimator;
pub use stats::{FlowStats, SenderStats};
pub use timer::RexmitTimer;
pub use window::WindowState;
