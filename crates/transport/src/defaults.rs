//! The paper's NS2 parameter defaults, in one place.
//!
//! These constants used to be defined independently in `tcp::config` and
//! `rla::config`; every transport configuration now draws from here so the
//! two cannot drift apart. The values mirror the paper's simulation setup
//! (§5): 1000-byte data packets, 40-byte acknowledgments, and the NS2-era
//! window and timer constants of the `Sack1` agent.

use netsim::time::SimDuration;

/// Data packet size on the wire, bytes.
pub const PACKET_SIZE: u32 = 1000;

/// Acknowledgment size on the wire, bytes.
pub const ACK_SIZE: u32 = 40;

/// Initial congestion window, packets.
pub const INITIAL_CWND: f64 = 1.0;

/// Initial slow-start threshold, packets.
pub const INITIAL_SSTHRESH: f64 = 64.0;

/// Maximum congestion window (the advertised receiver buffer), packets.
pub const MAX_CWND: f64 = 10_000.0;

/// Number of SACKed (or duplicate-acked) packets above a hole that
/// declares it lost — the fast-retransmit dup-threshold, 3 in the paper
/// and the RFCs.
pub const DUPACK_THRESHOLD: u64 = 3;

/// Lower bound on the retransmission timeout.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Upper bound on the retransmission timeout.
pub const MAX_RTO: SimDuration = SimDuration::from_secs(64);

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's NS2 defaults, pinned: the golden trace digests and
    /// every committed table were produced under exactly these values.
    #[test]
    fn ns2_defaults_unchanged() {
        assert_eq!(PACKET_SIZE, 1000);
        assert_eq!(ACK_SIZE, 40);
        assert_eq!(INITIAL_CWND, 1.0);
        assert_eq!(INITIAL_SSTHRESH, 64.0);
        assert_eq!(MAX_CWND, 10_000.0);
        assert_eq!(DUPACK_THRESHOLD, 3);
        assert_eq!(MIN_RTO, SimDuration::from_millis(200));
        assert_eq!(MAX_RTO, SimDuration::from_secs(64));
    }
}
