//! Congestion-epoch bookkeeping: loss coalescing and cut hold-offs.
//!
//! Three places in the codebase keep a "when did this last happen" mark
//! and compare the elapsed time against a horizon:
//!
//! * the paper's rule 2 — losses within `2·srtt_i` of the start of a
//!   receiver's congestion period are *one* congestion signal
//!   ([`CongestionEpoch::note_loss`]);
//! * the paper's rule 3 forced cut — a cut is forced when none has
//!   happened for `2·awnd` round trips
//!   ([`CongestionEpoch::elapsed_exceeds`]);
//! * the rate-based baselines' hold time — the rate is not reduced again
//!   within `hold_time` of the last reduction ([`CongestionEpoch::in_hold`]).
//!
//! The boundary semantics differ deliberately and are preserved exactly:
//! `note_loss` and `elapsed_exceeds` use strict `elapsed > horizon` (at
//! exactly the horizon the epoch is still open), while `in_hold` uses
//! strict `elapsed < hold` (at exactly the hold time the sender may cut
//! again). The golden digests pin both behaviours.

use netsim::time::{SimDuration, SimTime};

/// A marker for the start of the most recent congestion epoch (loss
/// window, window cut, or rate reduction — the caller decides what the
/// mark means).
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestionEpoch {
    start: Option<SimTime>,
}

impl CongestionEpoch {
    /// An epoch tracker with no event recorded yet.
    pub fn new() -> Self {
        CongestionEpoch { start: None }
    }

    /// When the current epoch started, if any event has been recorded.
    pub fn start(&self) -> Option<SimTime> {
        self.start
    }

    /// Record an epoch-starting event at `now`.
    pub fn mark(&mut self, now: SimTime) {
        self.start = Some(now);
    }

    /// Rule 2's loss coalescing: returns `true` (and opens a new epoch at
    /// `now`) when this loss falls *outside* the current epoch — i.e. it
    /// is a fresh congestion signal. A loss within `period` of the epoch
    /// start belongs to the same signal and returns `false`.
    pub fn note_loss(&mut self, now: SimTime, period: SimDuration) -> bool {
        let new_epoch = match self.start {
            None => true,
            Some(start) => now.saturating_since(start) > period,
        };
        if new_epoch {
            self.start = Some(now);
        }
        new_epoch
    }

    /// Whether more than `horizon` has elapsed since the last mark
    /// (strict `>`; `false` when nothing has been marked). The forced-cut
    /// rule's test.
    pub fn elapsed_exceeds(&self, now: SimTime, horizon: SimDuration) -> bool {
        self.start
            .is_some_and(|t| now.saturating_since(t) > horizon)
    }

    /// Whether the last mark is less than `hold` ago (strict `<`; `false`
    /// when nothing has been marked). The rate-based baselines' hold-off
    /// test.
    pub fn in_hold(&self, now: SimTime, hold: SimDuration) -> bool {
        self.start.is_some_and(|t| now.saturating_since(t) < hold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_loss_opens_an_epoch() {
        let mut e = CongestionEpoch::new();
        assert!(e.note_loss(SimTime::from_secs(1), SimDuration::from_millis(200)));
        assert_eq!(e.start(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn losses_inside_the_period_coalesce() {
        let mut e = CongestionEpoch::new();
        let period = SimDuration::from_millis(200);
        assert!(e.note_loss(SimTime::from_millis(1000), period));
        assert!(!e.note_loss(SimTime::from_millis(1100), period));
        // Exactly at the boundary: still the same signal (strict >).
        assert!(!e.note_loss(SimTime::from_millis(1200), period));
        // The epoch start did not move on coalesced losses.
        assert!(e.note_loss(SimTime::from_millis(1201), period));
        assert_eq!(e.start(), Some(SimTime::from_millis(1201)));
    }

    #[test]
    fn elapsed_exceeds_is_strict_and_needs_a_mark() {
        let mut e = CongestionEpoch::new();
        let h = SimDuration::from_secs(2);
        assert!(!e.elapsed_exceeds(SimTime::from_secs(100), h));
        e.mark(SimTime::from_secs(10));
        assert!(!e.elapsed_exceeds(SimTime::from_secs(12), h), "boundary");
        assert!(e.elapsed_exceeds(SimTime::from_secs_f64(12.001), h));
    }

    #[test]
    fn in_hold_is_strict_and_needs_a_mark() {
        let mut e = CongestionEpoch::new();
        let hold = SimDuration::from_secs(1);
        assert!(!e.in_hold(SimTime::from_secs(5), hold), "no mark: may cut");
        e.mark(SimTime::from_secs(5));
        assert!(e.in_hold(SimTime::from_secs_f64(5.5), hold));
        // Exactly at the hold boundary the sender may cut again (strict <).
        assert!(!e.in_hold(SimTime::from_secs(6), hold));
    }
}
