//! The congestion window: slow start, congestion avoidance, halving.
//!
//! Both the TCP SACK sender and the RLA keep the same window dynamics
//! (paper §4.1): grow by `+1` per acknowledgment below `ssthresh`, by
//! `+1/cwnd` above it, halve on a congestion signal, and collapse to one
//! packet on a retransmission timeout. This type holds that arithmetic in
//! one place so the two cannot diverge.
//!
//! The golden trace digests certify the port of the senders onto this
//! type bit-for-bit, so the floating-point expressions here must stay
//! *exactly* as the senders wrote them: same operations, same order.

/// Congestion-window state shared by every window-based sender.
#[derive(Debug, Clone)]
pub struct WindowState {
    cwnd: f64,
    ssthresh: f64,
    max_cwnd: f64,
}

impl WindowState {
    /// A window starting at `initial_cwnd` with the given slow-start
    /// threshold, clamped to `[1, max_cwnd]` packets for its lifetime.
    pub fn new(initial_cwnd: f64, initial_ssthresh: f64, max_cwnd: f64) -> Self {
        assert!(initial_cwnd >= 1.0, "initial cwnd below one packet");
        assert!(max_cwnd >= initial_cwnd, "max cwnd below initial");
        WindowState {
            cwnd: initial_cwnd,
            ssthresh: initial_ssthresh,
            max_cwnd,
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold, packets.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// The configured window ceiling, packets.
    pub fn max_cwnd(&self) -> f64 {
        self.max_cwnd
    }

    /// Whether the next growth step is exponential (below `ssthresh`).
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Whole packets the window currently admits (at least one — the
    /// sender must always be able to probe).
    pub fn allowed(&self) -> u64 {
        (self.cwnd as u64).max(1)
    }

    /// Set the window to `cwnd`, clamped to `[1, max_cwnd]`; returns the
    /// clamped value so callers can feed their stats hooks.
    pub fn set(&mut self, cwnd: f64) -> f64 {
        self.cwnd = cwnd.clamp(1.0, self.max_cwnd);
        self.cwnd
    }

    /// Growth on one acknowledged packet: `+1` in slow start, `+1/cwnd`
    /// in congestion avoidance. Returns the new window.
    pub fn open(&mut self) -> f64 {
        let next = if self.cwnd < self.ssthresh {
            self.cwnd + 1.0 // slow start
        } else {
            self.cwnd + 1.0 / self.cwnd // congestion avoidance
        };
        self.set(next)
    }

    /// One congestion signal: halve the window (floor one packet) and pull
    /// `ssthresh` down to the halved value (floor two). Returns the new
    /// window.
    pub fn cut(&mut self) -> f64 {
        let half = (self.cwnd / 2.0).max(1.0);
        self.ssthresh = half.max(2.0);
        self.set(half)
    }

    /// Retransmission timeout: remember half the window as `ssthresh`
    /// (floor two) and restart from one packet. Returns the new window.
    pub fn collapse(&mut self) -> f64 {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.set(1.0)
    }

    /// A multiplicative decrease by an arbitrary factor `beta` in `(0, 1]`
    /// (CUBIC cuts by 0.7 where AIMD halves): scale the window (floor one
    /// packet) and pull `ssthresh` down to the scaled value (floor two).
    /// Returns the new window. [`WindowState::cut`] keeps its own exact
    /// expression — the golden digests certify it — so the two must stay
    /// separate even though `cut_by(0.5)` is numerically close.
    pub fn cut_by(&mut self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "decrease factor out of (0, 1]");
        let scaled = (self.cwnd * beta).max(1.0);
        self.ssthresh = scaled.max(2.0);
        self.set(scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win() -> WindowState {
        WindowState::new(1.0, 64.0, 10_000.0)
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut w = win();
        assert!(w.in_slow_start());
        w.open();
        assert_eq!(w.cwnd(), 2.0);
        w.open();
        assert_eq!(w.cwnd(), 3.0);
    }

    #[test]
    fn avoidance_grows_by_reciprocal() {
        let mut w = WindowState::new(10.0, 5.0, 10_000.0);
        assert!(!w.in_slow_start());
        w.open();
        assert_eq!(w.cwnd(), 10.0 + 1.0 / 10.0);
    }

    #[test]
    fn cut_halves_and_sets_ssthresh() {
        let mut w = WindowState::new(10.0, 64.0, 10_000.0);
        w.cut();
        assert_eq!(w.cwnd(), 5.0);
        assert_eq!(w.ssthresh(), 5.0);
        // Floors: window never below 1, ssthresh never below 2.
        let mut w = WindowState::new(1.0, 64.0, 10_000.0);
        w.cut();
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(w.ssthresh(), 2.0);
    }

    #[test]
    fn collapse_restarts_from_one() {
        let mut w = WindowState::new(12.0, 64.0, 10_000.0);
        w.collapse();
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(w.ssthresh(), 6.0);
        assert!(w.in_slow_start());
    }

    #[test]
    fn clamped_at_max_cwnd() {
        let mut w = WindowState::new(7.5, 64.0, 8.0);
        w.open();
        assert_eq!(w.cwnd(), 8.0);
        w.open();
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn cut_by_scales_and_floors() {
        let mut w = WindowState::new(10.0, 64.0, 10_000.0);
        w.cut_by(0.7);
        assert!((w.cwnd() - 7.0).abs() < 1e-12);
        assert!((w.ssthresh() - 7.0).abs() < 1e-12);
        // Floors: window never below 1, ssthresh never below 2.
        let mut w = WindowState::new(1.0, 64.0, 10_000.0);
        w.cut_by(0.7);
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(w.ssthresh(), 2.0);
    }

    #[test]
    fn allowed_floors_at_one_packet() {
        let w = win();
        assert_eq!(w.allowed(), 1);
        let mut w = WindowState::new(3.9, 64.0, 10.0);
        assert_eq!(w.allowed(), 3);
        w.set(0.5);
        assert_eq!(w.allowed(), 1);
    }
}
