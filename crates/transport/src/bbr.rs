//! BBRv1 congestion control (Cardwell et al., "BBR: Congestion-Based
//! Congestion Control").
//!
//! BBR is the first policy in this crate that is *rate-based*: instead of
//! reacting to loss it builds an explicit model of the path — the
//! bottleneck bandwidth (windowed max of delivery-rate samples) and the
//! round-trip propagation delay (windowed min RTT), both read from
//! [`CcSignals`] — and steers towards the Kleinrock point where
//! `inflight = BDP = bandwidth × min_rtt`.
//!
//! The classic four-state machine drives the gains:
//!
//! ```text
//!             bw plateau                 inflight <= BDP
//! Startup ------------------> Drain ------------------------> ProbeBw
//!    ^   (3 rounds < 25% growth)                                |  ^
//!    |                                                          v  |
//!    |       min-RTT sample stale for 10 s (from any state)     |  |
//!    +------------------ ProbeRtt <-----------------------------+  |
//!      (pipe not full)      |       (cwnd = 4 for 200 ms)          |
//!                           +--------------------------------------+
//!                                       (pipe full)
//! ```
//!
//! * **Startup** doubles the delivery rate every round (gain 2/ln 2 ≈
//!   2.885) until the bandwidth filter plateaus (< 25% growth for three
//!   rounds), then
//! * **Drain** inverts the gain to empty the queue Startup built, until
//!   inflight falls to one BDP, then
//! * **ProbeBw** cycles eight pacing-gain phases
//!   `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`, one windowed-min RTT each,
//!   probing for new bandwidth and draining what the probe queued;
//! * **ProbeRtt** interrupts whenever the min-RTT sample has not been
//!   refreshed for 10 s: cwnd drops to 4 packets for 200 ms so the queue
//!   empties and the propagation delay can be re-measured.
//!
//! Packet loss is *not* a primary signal: `on_loss` returns `false` (no
//! AIMD cut), and only a retransmission timeout collapses the window.
//! Pacing is where BBR bites: [`BbrV1Cc::pacing_rate`] returns
//! `pacing_gain × bandwidth`, which `tcp_sack`'s send loop enforces
//! between ack clocks.

use netsim::time::{SimDuration, SimTime};

use crate::cc::{AckEvent, AckOutcome, CcSignals, CongestionControl, MIN_RTT_WINDOW};
use crate::window::WindowState;

/// Startup pacing/cwnd gain: `2 / ln 2`, doubling per round trip.
pub const BBR_STARTUP_GAIN: f64 = 2.885;

/// Cwnd gain while probing bandwidth (two BDPs absorbs delayed acks and
/// the probe phase's own queue).
pub const BBR_CWND_GAIN: f64 = 2.0;

/// The ProbeBw pacing-gain cycle: probe a quarter above the estimate,
/// drain the same quarter, then cruise six phases at the estimate.
pub const BBR_PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];

/// Floor on the congestion window (packets) — keeps ProbeRtt and early
/// startup from stalling the ack clock.
pub const BBR_MIN_CWND: f64 = 4.0;

/// How long ProbeRtt holds the window at the floor.
pub const BBR_PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);

/// The four BBRv1 states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrState {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// BBRv1 over the shared [`WindowState`] and [`CcSignals`].
#[derive(Debug, Clone)]
pub struct BbrV1Cc {
    state: BbrState,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Bandwidth estimate at the last full-pipe check (pkt/s).
    full_bw: f64,
    /// Consecutive rounds without 25% bandwidth growth.
    full_bw_count: u32,
    /// Startup saw the bandwidth plateau: the pipe is full.
    filled_pipe: bool,
    /// Round-trip counting: the round ends when the delivered counter
    /// passes the value it will have once everything now in flight is
    /// acked.
    next_round_delivered: u64,
    round_start: bool,
    /// ProbeBw gain-cycle position and the time the phase started.
    cycle_index: usize,
    cycle_stamp: SimTime,
    /// BBR's own min-RTT bookkeeping for ProbeRtt scheduling: the
    /// windowed filter in [`CcSignals`] forgets by *raising* the min, so
    /// staleness (nothing at or below the tracked min for 10 s) is
    /// tracked here.
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    /// The tracked min went unrefreshed for [`MIN_RTT_WINDOW`] as of the
    /// current ack (computed before the stamp refresh, so the ProbeRtt
    /// entry check sees it).
    min_rtt_expired: bool,
    /// ProbeRtt dwell deadline once inflight has reached the floor.
    probe_rtt_done_at: Option<SimTime>,
    /// Window to restore when ProbeRtt ends.
    prior_cwnd: f64,
}

impl Default for BbrV1Cc {
    fn default() -> Self {
        Self::new()
    }
}

impl BbrV1Cc {
    /// A fresh policy in Startup.
    pub fn new() -> Self {
        BbrV1Cc {
            state: BbrState::Startup,
            pacing_gain: BBR_STARTUP_GAIN,
            cwnd_gain: BBR_STARTUP_GAIN,
            full_bw: 0.0,
            full_bw_count: 0,
            filled_pipe: false,
            next_round_delivered: 0,
            round_start: false,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            min_rtt_expired: false,
            probe_rtt_done_at: None,
            prior_cwnd: BBR_MIN_CWND,
        }
    }

    /// The current pacing gain (exposed for the pacing-bound proptest).
    pub fn pacing_gain(&self) -> f64 {
        self.pacing_gain
    }

    /// The current cwnd gain (exposed for the pacing-bound proptest).
    pub fn cwnd_gain(&self) -> f64 {
        self.cwnd_gain
    }

    /// Whether Startup has declared the pipe full.
    pub fn filled_pipe(&self) -> bool {
        self.filled_pipe
    }

    /// Short state name for debugging and telemetry.
    pub fn state_name(&self) -> &'static str {
        match self.state {
            BbrState::Startup => "startup",
            BbrState::Drain => "drain",
            BbrState::ProbeBw => "probe_bw",
            BbrState::ProbeRtt => "probe_rtt",
        }
    }

    /// Bandwidth-delay product in packets, once both estimates exist.
    fn bdp(&self, signals: &CcSignals) -> Option<f64> {
        let bw = signals.bandwidth_pps()?;
        let rtt = self.min_rtt.or(signals.min_rtt())?;
        Some(bw * rtt.as_secs_f64())
    }

    /// The windowed-min RTT as a phase length (fallback before samples).
    fn phase_len(&self) -> SimDuration {
        self.min_rtt.unwrap_or(SimDuration::from_millis(100))
    }

    fn update_round(&mut self, ev: &AckEvent, signals: &CcSignals) {
        if signals.delivered() >= self.next_round_delivered {
            self.next_round_delivered = signals.delivered() + ev.in_flight;
            self.round_start = true;
        } else {
            self.round_start = false;
        }
    }

    fn update_min_rtt(&mut self, ev: &AckEvent) {
        self.min_rtt_expired = self.min_rtt.is_some()
            && ev.ack_time.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW;
        if let Some(rtt) = ev.rtt_sample {
            if self.min_rtt_expired || self.min_rtt.is_none_or(|m| rtt <= m) {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = ev.ack_time;
            }
        }
    }

    /// Once per round in Startup: has the bandwidth stopped growing?
    fn check_full_pipe(&mut self, signals: &CcSignals) {
        if self.filled_pipe || !self.round_start {
            return;
        }
        let Some(bw) = signals.bandwidth_pps() else {
            return;
        };
        if bw >= self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
            return;
        }
        self.full_bw_count += 1;
        if self.full_bw_count >= 3 {
            self.filled_pipe = true;
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.state = BbrState::ProbeBw;
        // Start in a cruise phase: the drain that just finished already
        // emptied Startup's queue, so probing immediately would re-queue.
        self.cycle_index = 2;
        self.cycle_stamp = now;
        self.pacing_gain = BBR_PROBE_BW_GAINS[self.cycle_index];
        self.cwnd_gain = BBR_CWND_GAIN;
    }

    fn update_state(&mut self, win: &mut WindowState, ev: &AckEvent, signals: &CcSignals) {
        let now = ev.ack_time;

        // ProbeRtt pre-empts every other state.
        if self.state != BbrState::ProbeRtt && self.min_rtt_expired {
            self.state = BbrState::ProbeRtt;
            self.pacing_gain = 1.0;
            self.cwnd_gain = 1.0;
            self.prior_cwnd = win.cwnd();
            self.probe_rtt_done_at = None;
        }

        match self.state {
            BbrState::Startup => {
                self.check_full_pipe(signals);
                if self.filled_pipe {
                    self.state = BbrState::Drain;
                    self.pacing_gain = 1.0 / BBR_STARTUP_GAIN;
                    self.cwnd_gain = BBR_STARTUP_GAIN;
                }
            }
            BbrState::Drain => {
                if let Some(bdp) = self.bdp(signals) {
                    if (ev.in_flight as f64) <= bdp {
                        self.enter_probe_bw(now);
                    }
                }
            }
            BbrState::ProbeBw => {
                // Advance the gain cycle once per windowed-min RTT.
                if now.saturating_since(self.cycle_stamp) >= self.phase_len() {
                    self.cycle_index = (self.cycle_index + 1) % BBR_PROBE_BW_GAINS.len();
                    self.cycle_stamp = now;
                    self.pacing_gain = BBR_PROBE_BW_GAINS[self.cycle_index];
                }
            }
            BbrState::ProbeRtt => {
                if self.probe_rtt_done_at.is_none() && ev.in_flight as f64 <= BBR_MIN_CWND {
                    // The queue is drained; dwell at the floor.
                    self.probe_rtt_done_at = Some(now + BBR_PROBE_RTT_DURATION);
                }
                if let Some(done) = self.probe_rtt_done_at {
                    if now >= done {
                        // Fresh propagation-delay measurement secured.
                        self.min_rtt_stamp = now;
                        win.set(self.prior_cwnd);
                        if self.filled_pipe {
                            self.enter_probe_bw(now);
                        } else {
                            self.state = BbrState::Startup;
                            self.pacing_gain = BBR_STARTUP_GAIN;
                            self.cwnd_gain = BBR_STARTUP_GAIN;
                        }
                    }
                }
            }
        }
    }

    fn set_cwnd(&mut self, win: &mut WindowState, ev: &AckEvent, signals: &CcSignals) {
        if self.state == BbrState::ProbeRtt {
            win.set(BBR_MIN_CWND);
            return;
        }
        match self.bdp(signals) {
            Some(bdp) => {
                win.set((self.cwnd_gain * bdp).max(BBR_MIN_CWND));
            }
            None => {
                // No model yet: grow like slow start so samples arrive.
                win.set(win.cwnd() + ev.newly_acked as f64);
            }
        }
    }
}

impl CongestionControl for BbrV1Cc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent, signals: &CcSignals) -> AckOutcome {
        self.update_round(ev, signals);
        self.update_min_rtt(ev);
        self.update_state(win, ev, signals);
        self.set_cwnd(win, ev, signals);
        AckOutcome::default()
    }

    fn on_loss(&mut self, _win: &mut WindowState, _high_seq: u64, _now: SimTime) -> bool {
        // Loss is not a primary signal in BBRv1: the model, not the loss,
        // sets the rate. (Recovery conservation is below this seam.)
        false
    }

    fn on_timeout(&mut self, win: &mut WindowState, _now: SimTime) {
        // An RTO means the model failed badly: restart conservatively.
        self.prior_cwnd = win.cwnd().max(self.prior_cwnd);
        win.collapse();
    }

    fn allowed_window(&self, win: &WindowState, _signals: &CcSignals) -> u64 {
        win.allowed()
    }

    fn pacing_rate(&self, signals: &CcSignals) -> Option<f64> {
        signals.bandwidth_pps().map(|bw| self.pacing_gain * bw)
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::RateSample;

    fn win() -> WindowState {
        WindowState::new(4.0, f64::INFINITY, 10_000.0)
    }

    /// Drive one ack through signals and policy, BBR-shaped.
    fn drive(
        cc: &mut BbrV1Cc,
        w: &mut WindowState,
        s: &mut CcSignals,
        cum_ack: u64,
        ack_ms: u64,
        rtt_ms: u64,
        in_flight: u64,
    ) {
        let ev = AckEvent {
            cum_ack,
            newly_acked: 1,
            newly_delivered: 1,
            newly_lost: 0,
            high_seq: cum_ack + in_flight,
            ack_time: SimTime::from_millis(ack_ms),
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            in_flight,
            rate: Some(RateSample {
                newly_acked_bytes: 1000,
                sent_at: SimTime::from_millis(ack_ms.saturating_sub(rtt_ms)),
                delivered_at_send: s.delivered().saturating_sub(in_flight.min(s.delivered())),
                app_limited: false,
            }),
        };
        s.on_ack(&ev);
        cc.on_ack(w, &ev, s);
    }

    #[test]
    fn starts_in_startup_with_startup_gains() {
        let cc = BbrV1Cc::new();
        assert_eq!(cc.state_name(), "startup");
        assert_eq!(cc.pacing_gain(), BBR_STARTUP_GAIN);
        assert_eq!(cc.cwnd_gain(), BBR_STARTUP_GAIN);
        assert_eq!(cc.pacing_rate(&CcSignals::new()), None, "no model yet");
    }

    #[test]
    fn plateau_drives_startup_to_drain_to_probe_bw() {
        let mut cc = BbrV1Cc::new();
        let mut w = win();
        let mut s = CcSignals::new();
        // A constant-bandwidth path: 10 pkt per 100 ms round → the filter
        // plateaus and Startup must exit within a few rounds.
        let mut t = 100;
        let mut seq = 0;
        for _round in 0..8 {
            for _ in 0..10 {
                seq += 1;
                drive(&mut cc, &mut w, &mut s, seq, t, 100, 10);
                t += 10;
            }
        }
        assert!(cc.filled_pipe(), "constant bw must plateau the filter");
        assert_ne!(cc.state_name(), "startup");
        // Drain ends once inflight <= BDP; with BDP ≈ 10 pkt an inflight
        // of 5 gets there immediately.
        seq += 1;
        drive(&mut cc, &mut w, &mut s, seq, t, 100, 5);
        assert_eq!(cc.state_name(), "probe_bw");
        assert_eq!(cc.cwnd_gain(), BBR_CWND_GAIN);
        let bw = s.bandwidth_pps().unwrap();
        let rate = cc.pacing_rate(&s).unwrap();
        assert!(rate <= bw * 1.25 + 1e-9, "probe gain tops at 1.25");
    }

    #[test]
    fn stale_min_rtt_triggers_probe_rtt_and_restores_cwnd() {
        let mut cc = BbrV1Cc::new();
        let mut w = win();
        let mut s = CcSignals::new();
        drive(&mut cc, &mut w, &mut s, 1, 100, 100, 10);
        let cwnd_before = w.cwnd();
        // 11 s later, every sample above the tracked min: stale → ProbeRtt.
        drive(&mut cc, &mut w, &mut s, 2, 11_200, 150, 10);
        assert_eq!(cc.state_name(), "probe_rtt");
        assert_eq!(w.cwnd(), BBR_MIN_CWND);
        // Inflight at the floor starts the 200 ms dwell; after it expires
        // the window is restored and the machine leaves ProbeRtt.
        drive(&mut cc, &mut w, &mut s, 3, 11_300, 150, 2);
        drive(&mut cc, &mut w, &mut s, 4, 11_600, 150, 2);
        assert_ne!(cc.state_name(), "probe_rtt");
        assert!(w.cwnd() >= cwnd_before.min(BBR_MIN_CWND));
    }

    #[test]
    fn pacing_rate_is_gain_times_bandwidth() {
        let mut cc = BbrV1Cc::new();
        let mut w = win();
        let mut s = CcSignals::new();
        drive(&mut cc, &mut w, &mut s, 1, 100, 100, 10);
        let bw = s.bandwidth_pps().unwrap();
        let rate = cc.pacing_rate(&s).unwrap();
        assert!((rate - cc.pacing_gain() * bw).abs() < 1e-9);
        assert!(rate <= bw * cc.cwnd_gain() + 1e-9);
    }

    #[test]
    fn loss_is_ignored_but_timeout_collapses() {
        let mut cc = BbrV1Cc::new();
        let mut w = win();
        let mut s = CcSignals::new();
        drive(&mut cc, &mut w, &mut s, 1, 100, 100, 10);
        let cwnd = w.cwnd();
        assert!(!cc.on_loss(&mut w, 50, SimTime::from_millis(200)));
        assert_eq!(w.cwnd(), cwnd, "loss must not cut the window");
        cc.on_timeout(&mut w, SimTime::from_millis(300));
        assert_eq!(w.cwnd(), 1.0, "an RTO still collapses");
    }

    #[test]
    fn probe_bw_cycles_through_all_gains() {
        let mut cc = BbrV1Cc::new();
        let mut w = win();
        let mut s = CcSignals::new();
        let mut t = 100;
        let mut seq = 0;
        for _ in 0..80 {
            seq += 1;
            drive(&mut cc, &mut w, &mut s, seq, t, 100, 10);
            t += 10;
        }
        // Force drain exit, then walk the cycle: every gain must appear.
        seq += 1;
        drive(&mut cc, &mut w, &mut s, seq, t, 100, 5);
        assert_eq!(cc.state_name(), "probe_bw");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seq += 1;
            t += 60;
            drive(&mut cc, &mut w, &mut s, seq, t, 100, 10);
            seen.insert((cc.pacing_gain() * 100.0) as i64);
        }
        assert!(seen.contains(&125), "probe phase must occur");
        assert!(seen.contains(&75), "drain phase must occur");
        assert!(seen.contains(&100), "cruise phases must occur");
    }
}
