//! Per-flow sender statistics shared by the window-based senders.
//!
//! [`SenderStats`] (moved here from `tcp_sack::sender`, which re-exports
//! it) is the windowed counter block every unicast sender keeps; the
//! [`FlowStats`] trait is the common read surface the experiment layer
//! uses, implemented by [`SenderStats`] here and by the RLA's session
//! statistics in its own crate. Both feed the [`netsim::stats`]
//! accumulators ([`TimeWeighted`], [`Running`]).

use netsim::stats::{Running, TimeWeighted};
use netsim::time::SimTime;
use telemetry::{Registry, RegistryExport};

/// The common read surface over a sender's per-flow statistics: the
/// numbers every paper table reports, regardless of which congestion
/// controller produced them.
pub trait FlowStats {
    /// Packets delivered since the last reset (the throughput numerator —
    /// cumulative-ack progress for TCP, acked-by-all progress for the RLA).
    fn delivered(&self) -> u64;

    /// All congestion-window reductions (fast recovery plus timeouts for
    /// TCP; randomized plus forced cuts for the RLA).
    fn total_cuts(&self) -> u64;

    /// Retransmission timeouts.
    fn timeouts(&self) -> u64;

    /// Time-weighted average congestion window.
    fn cwnd_avg(&self) -> &TimeWeighted;

    /// Per-flow round-trip-time samples.
    fn rtt(&self) -> &Running;

    /// When the statistics window began.
    fn since(&self) -> SimTime;

    /// Throughput in packets per second over `[since, now]`.
    fn throughput_pps(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.since()).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.delivered() as f64 / span
        }
    }
}

/// Sender-side statistics for the paper's tables.
#[derive(Debug, Clone)]
pub struct SenderStats {
    /// Packets newly delivered (cumulative-ack progress) since the last
    /// reset — the throughput numerator.
    pub delivered: u64,
    /// Data packets transmitted (including retransmissions).
    pub data_sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Fast-recovery window cuts (the paper's "# wnd cut" less timeouts).
    pub window_cuts: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Time-weighted average congestion window.
    pub cwnd_avg: TimeWeighted,
    /// RTT samples.
    pub rtt: Running,
    /// When the statistics window began.
    pub since: SimTime,
}

impl SenderStats {
    /// A zeroed statistics window starting at `now` with the window
    /// average seeded at `cwnd`.
    pub fn new(now: SimTime, cwnd: f64) -> Self {
        SenderStats {
            delivered: 0,
            data_sent: 0,
            retransmits: 0,
            window_cuts: 0,
            timeouts: 0,
            cwnd_avg: TimeWeighted::new(now, cwnd),
            rtt: Running::new(),
            since: now,
        }
    }

    /// All congestion-window reductions (fast recovery plus timeouts).
    pub fn total_cuts(&self) -> u64 {
        self.window_cuts + self.timeouts
    }

    /// Throughput in packets per second over `[since, now]`.
    pub fn throughput_pps(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.since).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.delivered as f64 / span
        }
    }
}

impl RegistryExport for SenderStats {
    fn export(&self, reg: &mut Registry, prefix: &str, now: SimTime) {
        reg.record_count(format!("{prefix}.delivered"), self.delivered);
        reg.record_count(format!("{prefix}.data_sent"), self.data_sent);
        reg.record_count(format!("{prefix}.retransmits"), self.retransmits);
        reg.record_count(format!("{prefix}.window_cuts"), self.window_cuts);
        reg.record_count(format!("{prefix}.timeouts"), self.timeouts);
        reg.record_gauge(format!("{prefix}.throughput_pps"), self.throughput_pps(now));
        reg.record_gauge(format!("{prefix}.cwnd_avg"), self.cwnd_avg.average(now));
        reg.record_gauge(format!("{prefix}.rtt_avg"), self.rtt.mean());
    }
}

impl FlowStats for SenderStats {
    fn delivered(&self) -> u64 {
        self.delivered
    }

    fn total_cuts(&self) -> u64 {
        self.total_cuts()
    }

    fn timeouts(&self) -> u64 {
        self.timeouts
    }

    fn cwnd_avg(&self) -> &TimeWeighted {
        &self.cwnd_avg
    }

    fn rtt(&self) -> &Running {
        &self.rtt
    }

    fn since(&self) -> SimTime {
        self.since
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_over_the_window() {
        let mut s = SenderStats::new(SimTime::from_secs(100), 1.0);
        s.delivered = 500;
        assert_eq!(s.throughput_pps(SimTime::from_secs(110)), 50.0);
        // Zero-width window reports zero, not a division error.
        assert_eq!(s.throughput_pps(SimTime::from_secs(100)), 0.0);
    }

    #[test]
    fn flow_stats_view_matches_inherent_methods() {
        let mut s = SenderStats::new(SimTime::from_secs(10), 2.0);
        s.delivered = 30;
        s.window_cuts = 3;
        s.timeouts = 2;
        let f: &dyn FlowStats = &s;
        assert_eq!(f.delivered(), 30);
        assert_eq!(f.total_cuts(), 5);
        assert_eq!(f.timeouts(), 2);
        assert_eq!(f.since(), SimTime::from_secs(10));
        assert_eq!(
            f.throughput_pps(SimTime::from_secs(20)),
            s.throughput_pps(SimTime::from_secs(20))
        );
    }
}
