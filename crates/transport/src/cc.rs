//! The pluggable congestion-control seam.
//!
//! A [`CongestionControl`] policy decides how the shared
//! [`WindowState`] reacts to acknowledgments, loss signals and timeouts;
//! the sender owns loss *detection* (scoreboard, dup-ack counting,
//! timers) and transmission, and feeds the policy one [`AckEvent`] per
//! acknowledgment. Two policies ship here:
//!
//! * [`SackCc`] — the paper's NS2 `Sack1` behaviour: scoreboard-declared
//!   losses, one window halving per loss window (fast recovery until the
//!   cumulative ack passes the recovery point). This is the policy the
//!   golden trace digests certify bit-for-bit against the pre-refactor
//!   `TcpSender`.
//! * [`RenoCc`] — TCP Reno without a SACK scoreboard: third-duplicate-ack
//!   fast retransmit, window inflation by one packet per further dup ack,
//!   and NewReno-style partial-ack retransmission during recovery.
//!
//! [`CcVariant`] names the policies declaratively so the experiment layer
//! can thread the choice through `ScenarioSpec`.

use crate::window::WindowState;

/// What one acknowledgment told the sender, policy-independent.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// The cumulative ack after processing this acknowledgment.
    pub cum_ack: u64,
    /// How far the cumulative ack advanced (0 for a duplicate ack).
    pub newly_acked: u64,
    /// Packets newly declared lost by the sender's loss detector (SACK
    /// scoreboard); senders without one pass 0 and let the policy count
    /// duplicate acks itself.
    pub newly_lost: u64,
    /// The next unsent sequence number (the recovery point on a cut).
    pub high_seq: u64,
}

/// What the policy decided on one acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct AckOutcome {
    /// Window cuts taken (0 or 1; counted into the sender's statistics).
    pub cuts: u64,
    /// A sequence the sender must retransmit now (fast retransmit or a
    /// NewReno partial-ack repair). Scoreboard-driven senders retransmit
    /// from the scoreboard instead and always see `None`.
    pub retransmit: Option<u64>,
}

/// A congestion-control policy over the shared [`WindowState`].
pub trait CongestionControl: std::fmt::Debug + Send + 'static {
    /// React to one acknowledgment: grow the window, enter or leave
    /// recovery, request a fast retransmission.
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent) -> AckOutcome;

    /// React to one congestion signal detected outside the ack path
    /// (e.g. an aged-out head hole): halve the window unless the loss
    /// falls inside the current recovery. Returns whether a cut was taken.
    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64) -> bool;

    /// React to a retransmission timeout: collapse the window and leave
    /// any recovery in progress.
    fn on_timeout(&mut self, win: &mut WindowState);

    /// Packets the policy currently allows in flight (Reno inflates the
    /// window during fast recovery; SACK uses the window as-is).
    fn allowed_window(&self, win: &WindowState) -> u64;

    /// Short policy name for tables and manifests.
    fn name(&self) -> &'static str;
}

/// Which congestion controller a scenario's TCP flows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcVariant {
    /// TCP SACK (the paper's `Sack1` agent): scoreboard loss detection,
    /// one halving per loss window.
    Sack,
    /// TCP Reno: dup-ack counting, NewReno-style recovery, go-back-N on
    /// timeout.
    Reno,
}

impl CcVariant {
    /// The variant's short name, as written into manifests.
    pub fn name(&self) -> &'static str {
        match self {
            CcVariant::Sack => "sack",
            CcVariant::Reno => "reno",
        }
    }

    /// Parse a variant name (`"sack"` / `"reno"`); `None` otherwise.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sack" => Some(CcVariant::Sack),
            "reno" => Some(CcVariant::Reno),
            _ => None,
        }
    }
}

/// The paper's TCP SACK policy: the sender's scoreboard declares losses;
/// each *loss window* (losses until the cumulative ack passes the recovery
/// point) costs exactly one halving.
#[derive(Debug, Clone, Default)]
pub struct SackCc {
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p`; further losses inside the window are the same congestion
    /// signal (one cut per loss window).
    recovery_point: Option<u64>,
}

impl SackCc {
    /// A fresh policy, not in recovery.
    pub fn new() -> Self {
        SackCc {
            recovery_point: None,
        }
    }

    /// Whether the policy is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }
}

impl CongestionControl for SackCc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent) -> AckOutcome {
        if let Some(point) = self.recovery_point {
            if ev.cum_ack >= point {
                self.recovery_point = None;
            }
        }

        let mut out = AckOutcome::default();
        if self.recovery_point.is_none() {
            if ev.newly_lost > 0 {
                // A fresh loss window: one congestion signal, one cut.
                win.cut();
                self.recovery_point = Some(ev.high_seq);
                out.cuts = 1;
            } else {
                for _ in 0..ev.newly_acked {
                    win.open();
                }
            }
        }
        out
    }

    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64) -> bool {
        if self.recovery_point.is_some() {
            return false; // same loss window, already paid for
        }
        win.cut();
        self.recovery_point = Some(high_seq);
        true
    }

    fn on_timeout(&mut self, win: &mut WindowState) {
        win.collapse();
        self.recovery_point = None;
    }

    fn allowed_window(&self, win: &WindowState) -> u64 {
        win.allowed()
    }

    fn name(&self) -> &'static str {
        "sack"
    }
}

/// TCP Reno without selective acknowledgments: losses are inferred from
/// duplicate cumulative acks. The third duplicate triggers fast
/// retransmit and a halving; further duplicates inflate the usable window
/// by one packet each (they prove packets have left the network); a
/// partial ack during recovery retransmits the next hole (NewReno)
/// without another halving; the ack that covers the recovery point
/// deflates the window back to `ssthresh`.
#[derive(Debug, Clone)]
pub struct RenoCc {
    dupack_threshold: u64,
    /// Consecutive duplicate acks seen (doubles as the window inflation
    /// during fast recovery).
    dup_count: u64,
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p`.
    recovery_point: Option<u64>,
}

impl RenoCc {
    /// A Reno policy declaring loss after `dupack_threshold` duplicate
    /// acknowledgments (3 in the RFCs and the paper).
    pub fn new(dupack_threshold: u64) -> Self {
        assert!(dupack_threshold >= 1, "dup threshold must be positive");
        RenoCc {
            dupack_threshold,
            dup_count: 0,
            recovery_point: None,
        }
    }

    /// Whether the policy is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }
}

impl CongestionControl for RenoCc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent) -> AckOutcome {
        let mut out = AckOutcome::default();
        if ev.newly_acked == 0 {
            // Duplicate ack: the receiver holds something above a hole.
            self.dup_count += 1;
            if self.recovery_point.is_none() && self.dup_count == self.dupack_threshold {
                win.cut();
                self.recovery_point = Some(ev.high_seq);
                out.cuts = 1;
                out.retransmit = Some(ev.cum_ack);
            }
            // Above the threshold each further duplicate inflates the
            // usable window via `allowed_window` — no state change needed
            // beyond the count itself.
        } else {
            match self.recovery_point {
                Some(point) if ev.cum_ack < point => {
                    // NewReno partial ack: the front hole was repaired but
                    // another loss from the same window follows it.
                    // Retransmit it immediately; the halving was already
                    // paid for. Deflate the dup-ack inflation — the acks
                    // that drove it belonged to the repaired hole.
                    self.dup_count = 0;
                    out.retransmit = Some(ev.cum_ack);
                }
                Some(_) => {
                    // Full ack: recovery complete; deflate to ssthresh.
                    self.recovery_point = None;
                    self.dup_count = 0;
                    win.set(win.ssthresh());
                }
                None => {
                    self.dup_count = 0;
                    for _ in 0..ev.newly_acked {
                        win.open();
                    }
                }
            }
        }
        out
    }

    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64) -> bool {
        if self.recovery_point.is_some() {
            return false;
        }
        win.cut();
        self.recovery_point = Some(high_seq);
        true
    }

    fn on_timeout(&mut self, win: &mut WindowState) {
        win.collapse();
        self.recovery_point = None;
        self.dup_count = 0;
    }

    fn allowed_window(&self, win: &WindowState) -> u64 {
        let inflation = if self.recovery_point.is_some() {
            self.dup_count
        } else {
            0
        };
        win.allowed() + inflation
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win() -> WindowState {
        WindowState::new(10.0, 64.0, 10_000.0)
    }

    fn ack(cum_ack: u64, newly_acked: u64, newly_lost: u64, high_seq: u64) -> AckEvent {
        AckEvent {
            cum_ack,
            newly_acked,
            newly_lost,
            high_seq,
        }
    }

    #[test]
    fn sack_cuts_once_per_loss_window() {
        let mut w = win();
        let mut cc = SackCc::new();
        // First loss: cut, enter recovery until high_seq = 20.
        let out = cc.on_ack(&mut w, &ack(5, 0, 2, 20));
        assert_eq!(out.cuts, 1);
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
        // More losses inside the same window: no further cut.
        let out = cc.on_ack(&mut w, &ack(8, 3, 1, 22));
        assert_eq!(out.cuts, 0);
        assert_eq!(w.cwnd(), 5.0);
        // The ack crossing the recovery point exits recovery and grows.
        let out = cc.on_ack(&mut w, &ack(21, 13, 0, 25));
        assert_eq!(out.cuts, 0);
        assert!(!cc.in_recovery());
        assert!(w.cwnd() > 5.0);
    }

    #[test]
    fn sack_external_loss_respects_recovery() {
        let mut w = win();
        let mut cc = SackCc::new();
        assert!(cc.on_loss(&mut w, 30));
        assert_eq!(w.cwnd(), 5.0);
        assert!(!cc.on_loss(&mut w, 31), "same loss window");
        assert_eq!(w.cwnd(), 5.0);
    }

    #[test]
    fn sack_timeout_collapses_and_clears_recovery() {
        let mut w = win();
        let mut cc = SackCc::new();
        cc.on_loss(&mut w, 30);
        cc.on_timeout(&mut w);
        assert_eq!(w.cwnd(), 1.0);
        assert!(!cc.in_recovery());
        assert_eq!(cc.allowed_window(&w), 1);
    }

    #[test]
    fn reno_fast_retransmit_on_third_dup() {
        let mut w = win();
        let mut cc = RenoCc::new(3);
        assert_eq!(cc.on_ack(&mut w, &ack(5, 0, 0, 20)).cuts, 0);
        assert_eq!(cc.on_ack(&mut w, &ack(5, 0, 0, 20)).cuts, 0);
        assert_eq!(w.cwnd(), 10.0, "two dups are reordering, not loss");
        let out = cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        assert_eq!(out.cuts, 1);
        assert_eq!(out.retransmit, Some(5), "retransmit the hole");
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
    }

    #[test]
    fn reno_inflates_during_recovery_and_deflates_on_exit() {
        let mut w = win();
        let mut cc = RenoCc::new(3);
        for _ in 0..3 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        }
        assert_eq!(cc.allowed_window(&w), 5 + 3);
        // Two more dups inflate further.
        cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        assert_eq!(cc.allowed_window(&w), 5 + 5);
        // The full ack deflates to ssthresh exactly.
        cc.on_ack(&mut w, &ack(20, 15, 0, 20));
        assert!(!cc.in_recovery());
        assert_eq!(w.cwnd(), 5.0);
        assert_eq!(cc.allowed_window(&w), 5);
    }

    #[test]
    fn reno_partial_ack_retransmits_without_second_cut() {
        let mut w = win();
        let mut cc = RenoCc::new(3);
        for _ in 0..3 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        }
        assert_eq!(w.cwnd(), 5.0);
        // Partial ack: cum advances to 9, still short of the recovery
        // point 20 — NewReno repairs the next hole, no further halving.
        let out = cc.on_ack(&mut w, &ack(9, 4, 0, 20));
        assert_eq!(out.cuts, 0);
        assert_eq!(out.retransmit, Some(9));
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
    }

    #[test]
    fn reno_dups_below_threshold_then_progress_reset_the_count() {
        let mut w = win();
        let mut cc = RenoCc::new(3);
        cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        // Reordering resolved: the count must reset, no cut later.
        cc.on_ack(&mut w, &ack(6, 1, 0, 20));
        let out = cc.on_ack(&mut w, &ack(6, 0, 0, 20));
        assert_eq!(out.cuts, 0);
        assert!(!cc.in_recovery());
    }

    #[test]
    fn reno_timeout_resets_everything() {
        let mut w = win();
        let mut cc = RenoCc::new(3);
        for _ in 0..4 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20));
        }
        cc.on_timeout(&mut w);
        assert_eq!(w.cwnd(), 1.0);
        assert!(!cc.in_recovery());
        assert_eq!(cc.allowed_window(&w), 1, "inflation cleared");
    }

    #[test]
    fn variant_names_round_trip() {
        for v in [CcVariant::Sack, CcVariant::Reno] {
            assert_eq!(CcVariant::parse(v.name()), Some(v));
        }
        assert_eq!(CcVariant::parse("cubic"), None);
        assert_eq!(SackCc::new().name(), "sack");
        assert_eq!(RenoCc::new(3).name(), "reno");
    }
}
