//! The pluggable congestion-control seam (v2: rate-aware).
//!
//! A [`CongestionControl`] policy decides how the shared
//! [`WindowState`] reacts to acknowledgments, loss signals and timeouts;
//! the sender owns loss *detection* (scoreboard, dup-ack counting,
//! timers) and transmission, and feeds the policy one [`AckEvent`] per
//! acknowledgment.
//!
//! The v2 surface extends the original loss-based seam with everything a
//! rate-based controller needs:
//!
//! * [`AckEvent`] carries an RTT sample, the in-flight count, the ack
//!   arrival time and an optional [`RateSample`] (BBR-style delivery-rate
//!   accounting: bytes newly acked, send/ack timestamps, app-limited
//!   flag);
//! * [`CcSignals`] is a sender-owned state view folding those samples
//!   into a windowed minimum RTT and a windowed maximum delivery rate
//!   (the [`crate::minrtt`] filters) plus the cumulative delivered count;
//! * the trait gains [`CongestionControl::pacing_rate`], and
//!   `allowed_window` sees the signals.
//!
//! Four policies implement the trait:
//!
//! * [`SackCc`] — the paper's NS2 `Sack1` behaviour: scoreboard-declared
//!   losses, one window halving per loss window (fast recovery until the
//!   cumulative ack passes the recovery point). This is the policy the
//!   golden trace digests certify bit-for-bit against the pre-refactor
//!   `TcpSender`. It ignores every v2 signal.
//! * [`RenoCc`] — TCP Reno without a SACK scoreboard: third-duplicate-ack
//!   fast retransmit, window inflation by one packet per further dup ack,
//!   and NewReno-style partial-ack retransmission during recovery. Also
//!   signal-blind.
//! * [`crate::CubicCc`] — RFC 8312 cubic window growth (its own module).
//! * [`crate::BbrV1Cc`] — the BBRv1 state machine (its own module), the
//!   first consumer of the rate signals and of pacing.

use netsim::time::{SimDuration, SimTime};

use crate::minrtt::{BandwidthFilter, MinRttFilter};
use crate::window::WindowState;

/// How long the minimum-RTT filter remembers a sample (BBRv1's 10 s).
pub const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// How long the bandwidth filter remembers a delivery-rate sample
/// (roughly ten round trips at the paper's ~200 ms path RTTs).
pub const BANDWIDTH_WINDOW: SimDuration = SimDuration::from_secs(2);

/// One delivery-rate sample, recorded per acknowledged packet
/// (BBR-style: compare the delivery counter now against its value when
/// the packet left, over the send→ack interval).
#[derive(Debug, Clone, Copy)]
pub struct RateSample {
    /// Bytes newly acknowledged by this ack.
    pub newly_acked_bytes: u64,
    /// When the most recently acked packet was (last) transmitted.
    pub sent_at: SimTime,
    /// Value of the sender's cumulative delivered counter (packets) when
    /// that packet was transmitted.
    pub delivered_at_send: u64,
    /// The sender had no data to send when the packet left — the sample
    /// measures the application, not the path, and must not raise the
    /// bandwidth estimate.
    pub app_limited: bool,
}

/// What one acknowledgment told the sender, policy-independent.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// The cumulative ack after processing this acknowledgment.
    pub cum_ack: u64,
    /// How far the cumulative ack advanced (0 for a duplicate ack).
    pub newly_acked: u64,
    /// Packets *first known delivered* by this acknowledgment: the
    /// cumulative advance plus newly SACKed packets, minus any of the
    /// advance a prior SACK block already reported. This is what feeds
    /// the delivery-rate accounting — counting a hole-fill's whole
    /// cumulative jump again would attribute packets delivered over many
    /// round trips to one, spiking the bandwidth estimate. Senders
    /// without selective acks pass `newly_acked`.
    pub newly_delivered: u64,
    /// Packets newly declared lost by the sender's loss detector (SACK
    /// scoreboard); senders without one pass 0 and let the policy count
    /// duplicate acks itself.
    pub newly_lost: u64,
    /// The next unsent sequence number (the recovery point on a cut).
    pub high_seq: u64,
    /// When the acknowledgment arrived (simulation clock).
    pub ack_time: SimTime,
    /// The RTT measured off this ack, when unambiguous (`None` for
    /// duplicate acks and Karn-excluded retransmissions).
    pub rtt_sample: Option<SimDuration>,
    /// Packets in flight *after* processing this acknowledgment.
    pub in_flight: u64,
    /// Delivery-rate accounting for the newly acked data, when the sender
    /// tracks it (`None` for duplicate acks).
    pub rate: Option<RateSample>,
}

impl AckEvent {
    /// A v1-shaped event: the four loss-based fields, every rate-aware
    /// signal absent. Loss-based policies behave identically on it.
    pub fn loss_only(cum_ack: u64, newly_acked: u64, newly_lost: u64, high_seq: u64) -> Self {
        AckEvent {
            cum_ack,
            newly_acked,
            newly_delivered: newly_acked,
            newly_lost,
            high_seq,
            ack_time: SimTime::ZERO,
            rtt_sample: None,
            in_flight: 0,
            rate: None,
        }
    }
}

/// What the policy decided on one acknowledgment.
#[derive(Debug, Clone, Copy, Default)]
pub struct AckOutcome {
    /// Window cuts taken (0 or 1; counted into the sender's statistics).
    pub cuts: u64,
    /// A sequence the sender must retransmit now (fast retransmit or a
    /// NewReno partial-ack repair). Scoreboard-driven senders retransmit
    /// from the scoreboard instead and always see `None`.
    pub retransmit: Option<u64>,
}

/// Path signals the sender accumulates for its policy: windowed min-RTT,
/// windowed max delivery rate, cumulative delivered packets.
///
/// The sender owns one of these per connection and folds every
/// [`AckEvent`] in via [`CcSignals::on_ack`] *before* handing the event
/// to the policy, so the policy always sees estimates that include the
/// current ack. Updating the view is pure bookkeeping — policies that
/// ignore it (SACK, Reno) are bit-identical to their v1 behaviour.
#[derive(Debug, Clone)]
pub struct CcSignals {
    min_rtt: MinRttFilter,
    bw: BandwidthFilter,
    delivered: u64,
}

impl Default for CcSignals {
    fn default() -> Self {
        Self::new()
    }
}

impl CcSignals {
    /// A fresh view with the default filter windows
    /// ([`MIN_RTT_WINDOW`], [`BANDWIDTH_WINDOW`]).
    pub fn new() -> Self {
        CcSignals {
            min_rtt: MinRttFilter::new(MIN_RTT_WINDOW),
            bw: BandwidthFilter::new(BANDWIDTH_WINDOW),
            delivered: 0,
        }
    }

    /// Fold one acknowledgment into the filters.
    pub fn on_ack(&mut self, ev: &AckEvent) {
        self.delivered += ev.newly_delivered;
        if let Some(rtt) = ev.rtt_sample {
            self.min_rtt.update(ev.ack_time, rtt);
        }
        if let Some(rate) = &ev.rate {
            let interval = ev.ack_time.saturating_since(rate.sent_at);
            if !interval.is_zero() {
                let delivered = self.delivered.saturating_sub(rate.delivered_at_send);
                let pps = delivered as f64 / interval.as_secs_f64();
                // An app-limited sample measures the sender, not the path:
                // it may confirm a higher estimate but never set one.
                if !rate.app_limited || Some(pps) > self.bw.current() {
                    self.bw.update(ev.ack_time, pps);
                }
            }
        }
    }

    /// The windowed minimum round-trip time, if any sample exists.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt.current()
    }

    /// When the sample defining the current minimum RTT was taken.
    pub fn min_rtt_stamp(&self) -> Option<SimTime> {
        self.min_rtt.stamp()
    }

    /// The windowed maximum delivery rate (pkt/s), if any sample exists.
    pub fn bandwidth_pps(&self) -> Option<f64> {
        self.bw.current()
    }

    /// Cumulative packets known delivered (cumulative-ack advances plus
    /// first-time SACK reports).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

/// A congestion-control policy over the shared [`WindowState`].
pub trait CongestionControl: std::fmt::Debug + Send + 'static {
    /// React to one acknowledgment: grow the window, enter or leave
    /// recovery, request a fast retransmission. `signals` already
    /// includes this event's samples.
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent, signals: &CcSignals) -> AckOutcome;

    /// React to one congestion signal detected outside the ack path
    /// (e.g. an aged-out head hole): halve the window unless the loss
    /// falls inside the current recovery. Returns whether a cut was taken.
    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64, now: SimTime) -> bool;

    /// React to a retransmission timeout: collapse the window and leave
    /// any recovery in progress.
    fn on_timeout(&mut self, win: &mut WindowState, now: SimTime);

    /// Packets the policy currently allows in flight (Reno inflates the
    /// window during fast recovery; SACK uses the window as-is).
    fn allowed_window(&self, win: &WindowState, signals: &CcSignals) -> u64;

    /// The rate (pkt/s) the sender should pace transmissions at, or
    /// `None` to send ack-clocked bursts up to the window (the classic
    /// loss-based behaviour, and the default).
    fn pacing_rate(&self, signals: &CcSignals) -> Option<f64> {
        let _ = signals;
        None
    }

    /// Short policy name for tables and manifests.
    fn name(&self) -> &'static str;
}

/// The paper's TCP SACK policy: the sender's scoreboard declares losses;
/// each *loss window* (losses until the cumulative ack passes the recovery
/// point) costs exactly one halving.
#[derive(Debug, Clone, Default)]
pub struct SackCc {
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p`; further losses inside the window are the same congestion
    /// signal (one cut per loss window).
    recovery_point: Option<u64>,
}

impl SackCc {
    /// A fresh policy, not in recovery.
    pub fn new() -> Self {
        SackCc {
            recovery_point: None,
        }
    }

    /// Whether the policy is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }
}

impl CongestionControl for SackCc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent, _signals: &CcSignals) -> AckOutcome {
        if let Some(point) = self.recovery_point {
            if ev.cum_ack >= point {
                self.recovery_point = None;
            }
        }

        let mut out = AckOutcome::default();
        if self.recovery_point.is_none() {
            if ev.newly_lost > 0 {
                // A fresh loss window: one congestion signal, one cut.
                win.cut();
                self.recovery_point = Some(ev.high_seq);
                out.cuts = 1;
            } else {
                for _ in 0..ev.newly_acked {
                    win.open();
                }
            }
        }
        out
    }

    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64, _now: SimTime) -> bool {
        if self.recovery_point.is_some() {
            return false; // same loss window, already paid for
        }
        win.cut();
        self.recovery_point = Some(high_seq);
        true
    }

    fn on_timeout(&mut self, win: &mut WindowState, _now: SimTime) {
        win.collapse();
        self.recovery_point = None;
    }

    fn allowed_window(&self, win: &WindowState, _signals: &CcSignals) -> u64 {
        win.allowed()
    }

    fn name(&self) -> &'static str {
        "sack"
    }
}

/// TCP Reno without selective acknowledgments: losses are inferred from
/// duplicate cumulative acks. The third duplicate triggers fast
/// retransmit and a halving; further duplicates inflate the usable window
/// by one packet each (they prove packets have left the network); a
/// partial ack during recovery retransmits the next hole (NewReno)
/// without another halving; the ack that covers the recovery point
/// deflates the window back to `ssthresh`.
#[derive(Debug, Clone)]
pub struct RenoCc {
    dupack_threshold: u64,
    /// Consecutive duplicate acks seen (doubles as the window inflation
    /// during fast recovery).
    dup_count: u64,
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p`.
    recovery_point: Option<u64>,
}

impl RenoCc {
    /// A Reno policy declaring loss after `dupack_threshold` duplicate
    /// acknowledgments (3 in the RFCs and the paper).
    pub fn new(dupack_threshold: u64) -> Self {
        assert!(dupack_threshold >= 1, "dup threshold must be positive");
        RenoCc {
            dupack_threshold,
            dup_count: 0,
            recovery_point: None,
        }
    }

    /// Whether the policy is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }
}

impl CongestionControl for RenoCc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent, _signals: &CcSignals) -> AckOutcome {
        let mut out = AckOutcome::default();
        if ev.newly_acked == 0 {
            // Duplicate ack: the receiver holds something above a hole.
            self.dup_count += 1;
            if self.recovery_point.is_none() && self.dup_count == self.dupack_threshold {
                win.cut();
                self.recovery_point = Some(ev.high_seq);
                out.cuts = 1;
                out.retransmit = Some(ev.cum_ack);
            }
            // Above the threshold each further duplicate inflates the
            // usable window via `allowed_window` — no state change needed
            // beyond the count itself.
        } else {
            match self.recovery_point {
                Some(point) if ev.cum_ack < point => {
                    // NewReno partial ack: the front hole was repaired but
                    // another loss from the same window follows it.
                    // Retransmit it immediately; the halving was already
                    // paid for. Deflate the dup-ack inflation — the acks
                    // that drove it belonged to the repaired hole.
                    self.dup_count = 0;
                    out.retransmit = Some(ev.cum_ack);
                }
                Some(_) => {
                    // Full ack: recovery complete; deflate to ssthresh.
                    self.recovery_point = None;
                    self.dup_count = 0;
                    win.set(win.ssthresh());
                }
                None => {
                    self.dup_count = 0;
                    for _ in 0..ev.newly_acked {
                        win.open();
                    }
                }
            }
        }
        out
    }

    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64, _now: SimTime) -> bool {
        if self.recovery_point.is_some() {
            return false;
        }
        win.cut();
        self.recovery_point = Some(high_seq);
        true
    }

    fn on_timeout(&mut self, win: &mut WindowState, _now: SimTime) {
        win.collapse();
        self.recovery_point = None;
        self.dup_count = 0;
    }

    fn allowed_window(&self, win: &WindowState, _signals: &CcSignals) -> u64 {
        let inflation = if self.recovery_point.is_some() {
            self.dup_count
        } else {
            0
        };
        win.allowed() + inflation
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win() -> WindowState {
        WindowState::new(10.0, 64.0, 10_000.0)
    }

    fn sig() -> CcSignals {
        CcSignals::new()
    }

    fn ack(cum_ack: u64, newly_acked: u64, newly_lost: u64, high_seq: u64) -> AckEvent {
        AckEvent::loss_only(cum_ack, newly_acked, newly_lost, high_seq)
    }

    #[test]
    fn sack_cuts_once_per_loss_window() {
        let mut w = win();
        let s = sig();
        let mut cc = SackCc::new();
        // First loss: cut, enter recovery until high_seq = 20.
        let out = cc.on_ack(&mut w, &ack(5, 0, 2, 20), &s);
        assert_eq!(out.cuts, 1);
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
        // More losses inside the same window: no further cut.
        let out = cc.on_ack(&mut w, &ack(8, 3, 1, 22), &s);
        assert_eq!(out.cuts, 0);
        assert_eq!(w.cwnd(), 5.0);
        // The ack crossing the recovery point exits recovery and grows.
        let out = cc.on_ack(&mut w, &ack(21, 13, 0, 25), &s);
        assert_eq!(out.cuts, 0);
        assert!(!cc.in_recovery());
        assert!(w.cwnd() > 5.0);
    }

    #[test]
    fn sack_external_loss_respects_recovery() {
        let mut w = win();
        let mut cc = SackCc::new();
        assert!(cc.on_loss(&mut w, 30, SimTime::ZERO));
        assert_eq!(w.cwnd(), 5.0);
        assert!(!cc.on_loss(&mut w, 31, SimTime::ZERO), "same loss window");
        assert_eq!(w.cwnd(), 5.0);
    }

    #[test]
    fn sack_timeout_collapses_and_clears_recovery() {
        let mut w = win();
        let s = sig();
        let mut cc = SackCc::new();
        cc.on_loss(&mut w, 30, SimTime::ZERO);
        cc.on_timeout(&mut w, SimTime::ZERO);
        assert_eq!(w.cwnd(), 1.0);
        assert!(!cc.in_recovery());
        assert_eq!(cc.allowed_window(&w, &s), 1);
    }

    #[test]
    fn reno_fast_retransmit_on_third_dup() {
        let mut w = win();
        let s = sig();
        let mut cc = RenoCc::new(3);
        assert_eq!(cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s).cuts, 0);
        assert_eq!(cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s).cuts, 0);
        assert_eq!(w.cwnd(), 10.0, "two dups are reordering, not loss");
        let out = cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        assert_eq!(out.cuts, 1);
        assert_eq!(out.retransmit, Some(5), "retransmit the hole");
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
    }

    #[test]
    fn reno_inflates_during_recovery_and_deflates_on_exit() {
        let mut w = win();
        let s = sig();
        let mut cc = RenoCc::new(3);
        for _ in 0..3 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        }
        assert_eq!(cc.allowed_window(&w, &s), 5 + 3);
        // Two more dups inflate further.
        cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        assert_eq!(cc.allowed_window(&w, &s), 5 + 5);
        // The full ack deflates to ssthresh exactly.
        cc.on_ack(&mut w, &ack(20, 15, 0, 20), &s);
        assert!(!cc.in_recovery());
        assert_eq!(w.cwnd(), 5.0);
        assert_eq!(cc.allowed_window(&w, &s), 5);
    }

    #[test]
    fn reno_partial_ack_retransmits_without_second_cut() {
        let mut w = win();
        let s = sig();
        let mut cc = RenoCc::new(3);
        for _ in 0..3 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        }
        assert_eq!(w.cwnd(), 5.0);
        // Partial ack: cum advances to 9, still short of the recovery
        // point 20 — NewReno repairs the next hole, no further halving.
        let out = cc.on_ack(&mut w, &ack(9, 4, 0, 20), &s);
        assert_eq!(out.cuts, 0);
        assert_eq!(out.retransmit, Some(9));
        assert_eq!(w.cwnd(), 5.0);
        assert!(cc.in_recovery());
    }

    #[test]
    fn reno_dups_below_threshold_then_progress_reset_the_count() {
        let mut w = win();
        let s = sig();
        let mut cc = RenoCc::new(3);
        cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        // Reordering resolved: the count must reset, no cut later.
        cc.on_ack(&mut w, &ack(6, 1, 0, 20), &s);
        let out = cc.on_ack(&mut w, &ack(6, 0, 0, 20), &s);
        assert_eq!(out.cuts, 0);
        assert!(!cc.in_recovery());
    }

    #[test]
    fn reno_timeout_resets_everything() {
        let mut w = win();
        let s = sig();
        let mut cc = RenoCc::new(3);
        for _ in 0..4 {
            cc.on_ack(&mut w, &ack(5, 0, 0, 20), &s);
        }
        cc.on_timeout(&mut w, SimTime::ZERO);
        assert_eq!(w.cwnd(), 1.0);
        assert!(!cc.in_recovery());
        assert_eq!(cc.allowed_window(&w, &s), 1, "inflation cleared");
    }

    #[test]
    fn loss_based_policies_default_to_unpaced() {
        let s = sig();
        assert_eq!(SackCc::new().pacing_rate(&s), None);
        assert_eq!(RenoCc::new(3).pacing_rate(&s), None);
        assert_eq!(SackCc::new().name(), "sack");
        assert_eq!(RenoCc::new(3).name(), "reno");
    }

    fn rated(
        cum_ack: u64,
        ack_ms: u64,
        rtt_ms: u64,
        sent_ms: u64,
        delivered_at_send: u64,
        app_limited: bool,
    ) -> AckEvent {
        AckEvent {
            cum_ack,
            newly_acked: 1,
            newly_delivered: 1,
            newly_lost: 0,
            high_seq: cum_ack + 10,
            ack_time: SimTime::from_millis(ack_ms),
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            in_flight: 10,
            rate: Some(RateSample {
                newly_acked_bytes: 1000,
                sent_at: SimTime::from_millis(sent_ms),
                delivered_at_send,
                app_limited,
            }),
        }
    }

    #[test]
    fn signals_fold_rtt_and_delivery_rate() {
        let mut s = CcSignals::new();
        assert_eq!(s.min_rtt(), None);
        assert_eq!(s.bandwidth_pps(), None);
        // One packet delivered over a 100 ms send→ack interval: 10 pkt/s.
        s.on_ack(&rated(1, 100, 100, 0, 0, false));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.min_rtt(), Some(SimDuration::from_millis(100)));
        assert!((s.bandwidth_pps().unwrap() - 10.0).abs() < 1e-9);
        // A shorter RTT lowers the windowed min.
        s.on_ack(&rated(2, 200, 80, 100, 1, false));
        assert_eq!(s.min_rtt(), Some(SimDuration::from_millis(80)));
    }

    #[test]
    fn hole_fill_does_not_spike_the_bandwidth_estimate() {
        let mut s = CcSignals::new();
        // Ten packets SACKed above a hole over the preceding round trips:
        // each ack advances the delivered counter at SACK time.
        for i in 0..10 {
            let mut ev = AckEvent::loss_only(0, 0, 0, 20);
            ev.newly_delivered = 1;
            ev.ack_time = SimTime::from_millis(100 * (i + 1));
            s.on_ack(&ev);
        }
        assert_eq!(s.delivered(), 10);
        // The retransmit fills the hole: cum_ack leaps 11 packets, but
        // only the retransmitted packet is a first-time delivery. The
        // rate sample must see 1 pkt / 100 ms, not 11 — attributing the
        // whole jump to one RTT is the spike that made BBR flood
        // shallow buffers.
        s.on_ack(&AckEvent {
            cum_ack: 11,
            newly_acked: 11,
            newly_delivered: 1,
            newly_lost: 0,
            high_seq: 20,
            ack_time: SimTime::from_millis(1100),
            rtt_sample: Some(SimDuration::from_millis(100)),
            in_flight: 9,
            rate: Some(RateSample {
                newly_acked_bytes: 11_000,
                sent_at: SimTime::from_millis(1000),
                delivered_at_send: 10,
                app_limited: false,
            }),
        });
        assert_eq!(s.delivered(), 11);
        assert!((s.bandwidth_pps().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn app_limited_samples_cannot_raise_the_estimate() {
        let mut s = CcSignals::new();
        s.on_ack(&rated(1, 100, 100, 0, 0, false));
        let bw = s.bandwidth_pps().unwrap();
        // Same interval, app-limited: the (identical) rate is not *higher*
        // than the estimate, so it must be discarded.
        s.on_ack(&rated(2, 200, 100, 100, 1, true));
        assert_eq!(s.bandwidth_pps(), Some(bw));
        // An app-limited sample *above* the estimate still counts: the
        // path proved it can move at least that fast.
        s.on_ack(&rated(4, 250, 100, 200, 2, true));
        assert!(s.bandwidth_pps().unwrap() > bw);
    }

    #[test]
    fn zero_length_rate_interval_is_ignored() {
        let mut s = CcSignals::new();
        s.on_ack(&rated(1, 100, 100, 100, 0, false));
        assert_eq!(s.bandwidth_pps(), None, "no division by zero sample");
        assert_eq!(s.delivered(), 1, "delivery count still advances");
    }
}
