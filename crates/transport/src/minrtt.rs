//! Windowed extrema filters over simulated time.
//!
//! Rate-based congestion controllers reason about two slowly-decaying
//! estimates: the *minimum* round-trip time seen recently (the propagation
//! delay, once queues drain) and the *maximum* delivery rate seen recently
//! (the bottleneck bandwidth, once the pipe fills). Both are windowed
//! extrema — a plain running min/max would never forget a route change —
//! so this module provides [`MinRttFilter`] and [`BandwidthFilter`]: the
//! classic monotonic-deque sliding-window algorithm keyed by [`SimTime`].
//!
//! Each `update` is amortised O(1): a new sample evicts every older sample
//! it dominates (a smaller RTT makes older, larger RTTs irrelevant for the
//! rest of their lifetime; symmetrically for bandwidth), then samples that
//! have aged out of the window are dropped from the front.

use std::collections::VecDeque;

use netsim::time::{SimDuration, SimTime};

/// Sliding-window minimum of RTT samples.
///
/// `current()` is the smallest RTT observed in the last `window` of
/// simulated time (relative to the newest `update` timestamp).
#[derive(Debug, Clone)]
pub struct MinRttFilter {
    window: SimDuration,
    /// Samples with strictly increasing RTTs; the front is the window min.
    samples: VecDeque<(SimTime, SimDuration)>,
}

impl MinRttFilter {
    /// A filter forgetting samples older than `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero-length filter window");
        MinRttFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Fold in an RTT sample taken at `now`. Timestamps must be
    /// non-decreasing (simulated time never runs backwards).
    pub fn update(&mut self, now: SimTime, rtt: SimDuration) {
        while matches!(self.samples.back(), Some(&(_, v)) if v >= rtt) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, rtt));
        let horizon = now - self.window;
        while matches!(self.samples.front(), Some(&(t, _)) if t < horizon) {
            self.samples.pop_front();
        }
    }

    /// The windowed minimum, or `None` before the first sample.
    pub fn current(&self) -> Option<SimDuration> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// When the sample currently defining the minimum was taken.
    pub fn stamp(&self) -> Option<SimTime> {
        self.samples.front().map(|&(t, _)| t)
    }
}

/// Sliding-window maximum of delivery-rate samples (packets per second).
///
/// `current()` is the largest rate observed in the last `window` of
/// simulated time (relative to the newest `update` timestamp).
#[derive(Debug, Clone)]
pub struct BandwidthFilter {
    window: SimDuration,
    /// Samples with strictly decreasing rates; the front is the window max.
    samples: VecDeque<(SimTime, f64)>,
}

impl BandwidthFilter {
    /// A filter forgetting samples older than `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "zero-length filter window");
        BandwidthFilter {
            window,
            samples: VecDeque::new(),
        }
    }

    /// Fold in a delivery-rate sample (pkt/s) taken at `now`. Non-finite
    /// rates are rejected (a zero-length sampling interval upstream);
    /// timestamps must be non-decreasing.
    pub fn update(&mut self, now: SimTime, rate_pps: f64) {
        if !rate_pps.is_finite() || rate_pps < 0.0 {
            return;
        }
        while matches!(self.samples.back(), Some(&(_, v)) if v <= rate_pps) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, rate_pps));
        let horizon = now - self.window;
        while matches!(self.samples.front(), Some(&(t, _)) if t < horizon) {
            self.samples.pop_front();
        }
    }

    /// The windowed maximum, or `None` before the first sample.
    pub fn current(&self) -> Option<f64> {
        self.samples.front().map(|&(_, v)| v)
    }

    /// When the sample currently defining the maximum was taken.
    pub fn stamp(&self) -> Option<SimTime> {
        self.samples.front().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn min_filter_tracks_window_minimum() {
        let mut f = MinRttFilter::new(SimDuration::from_secs(1));
        assert_eq!(f.current(), None);
        f.update(at(0), ms(100));
        f.update(at(100), ms(80));
        f.update(at(200), ms(120));
        assert_eq!(f.current(), Some(ms(80)));
        assert_eq!(f.stamp(), Some(at(100)));
    }

    #[test]
    fn min_filter_forgets_expired_minimum() {
        let mut f = MinRttFilter::new(SimDuration::from_secs(1));
        f.update(at(0), ms(50));
        f.update(at(500), ms(90));
        // The 50 ms sample ages out; the min rises to the surviving one.
        f.update(at(1200), ms(110));
        assert_eq!(f.current(), Some(ms(90)));
        f.update(at(1600), ms(130));
        assert_eq!(f.current(), Some(ms(110)));
    }

    #[test]
    fn min_filter_new_minimum_displaces_older_larger_samples() {
        let mut f = MinRttFilter::new(SimDuration::from_secs(10));
        f.update(at(0), ms(100));
        f.update(at(100), ms(90));
        f.update(at(200), ms(40));
        assert_eq!(f.current(), Some(ms(40)));
        assert_eq!(f.stamp(), Some(at(200)));
    }

    #[test]
    fn bw_filter_tracks_window_maximum() {
        let mut f = BandwidthFilter::new(SimDuration::from_secs(1));
        assert_eq!(f.current(), None);
        f.update(at(0), 100.0);
        f.update(at(100), 250.0);
        f.update(at(200), 150.0);
        assert_eq!(f.current(), Some(250.0));
        // Expire the 250 pkt/s peak: the max falls back to 150.
        f.update(at(1200), 50.0);
        assert_eq!(f.current(), Some(150.0));
    }

    #[test]
    fn bw_filter_rejects_non_finite_samples() {
        let mut f = BandwidthFilter::new(SimDuration::from_secs(1));
        f.update(at(0), f64::NAN);
        f.update(at(0), f64::INFINITY);
        f.update(at(0), -1.0);
        assert_eq!(f.current(), None);
        f.update(at(10), 42.0);
        assert_eq!(f.current(), Some(42.0));
    }

    #[test]
    fn filters_hold_extremum_exactly_through_the_window() {
        // A sample taken at t survives queries up to t + window inclusive.
        let mut f = MinRttFilter::new(SimDuration::from_secs(1));
        f.update(at(0), ms(10));
        f.update(at(1000), ms(99));
        assert_eq!(f.current(), Some(ms(10)), "still inside the window");
        f.update(at(1001), ms(99));
        assert_eq!(f.current(), Some(ms(99)), "one tick past: expired");
    }
}
