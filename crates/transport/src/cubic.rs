//! CUBIC congestion control (RFC 8312).
//!
//! CUBIC replaces AIMD's linear probe with a cubic function of the time
//! since the last congestion event, anchored at the window where that
//! loss occurred (`W_max`): concave growth back toward `W_max`, a plateau
//! around it, then convex probing beyond. Two standard refinements ride
//! along:
//!
//! * **fast convergence** — when a flow's loss arrives *below* its
//!   previous `W_max`, another flow is claiming bandwidth; the anchor is
//!   pulled down an extra notch so the releasing flow converges faster;
//! * **TCP-friendly region** — the window never grows slower than an
//!   AIMD flow with CUBIC's β would, so short-RTT paths keep at least
//!   Reno-equivalent throughput.
//!
//! Loss detection is the sender's job, exactly as for [`crate::SackCc`]:
//! the scoreboard declares losses, and each loss *window* (until the
//! cumulative ack passes the recovery point) costs one multiplicative
//! decrease — here by β = 0.7 instead of 0.5, via
//! [`WindowState::cut_by`].
//!
//! Between congestion events the per-ack increment is clamped at zero,
//! so the window is monotone non-decreasing from one loss (or timeout)
//! to the next — a property the transport proptests pin down.

use netsim::time::SimTime;

use crate::cc::{AckEvent, AckOutcome, CcSignals, CongestionControl};
use crate::window::WindowState;

/// RFC 8312 multiplicative-decrease factor β.
pub const CUBIC_BETA: f64 = 0.7;

/// RFC 8312 cubic scaling constant `C` (units: packets / s³).
pub const CUBIC_C: f64 = 0.4;

/// RFC 8312 CUBIC over the shared [`WindowState`].
#[derive(Debug, Clone, Default)]
pub struct CubicCc {
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p` (same one-decrease-per-loss-window rule as SACK).
    recovery_point: Option<u64>,
    /// Window at the last congestion event — the cubic anchor.
    w_max: f64,
    /// When the current congestion-avoidance epoch started (first ack
    /// after a loss); `None` forces re-anchoring on the next ack.
    epoch_start: Option<SimTime>,
    /// Time (s) for the cubic to climb back to `w_max` from the cut.
    k: f64,
    /// Congestion-avoidance acks seen this epoch (drives the
    /// TCP-friendly AIMD estimate without needing a separate window).
    epoch_acks: u64,
}

impl CubicCc {
    /// A fresh CUBIC policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the policy is currently in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// One multiplicative decrease: move the anchor (with fast
    /// convergence), cut by β, reset the epoch.
    fn congestion_event(&mut self, win: &mut WindowState, high_seq: u64) {
        let cwnd = win.cwnd();
        // Fast convergence: a loss below the previous anchor means the
        // bandwidth shrank — release more than one cycle's worth.
        self.w_max = if cwnd < self.w_max {
            cwnd * (2.0 - CUBIC_BETA) / 2.0
        } else {
            cwnd
        };
        win.cut_by(CUBIC_BETA);
        self.epoch_start = None;
        self.epoch_acks = 0;
        self.recovery_point = Some(high_seq);
    }

    /// The cubic window at `t` seconds into the epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        CUBIC_C * (t - self.k).powi(3) + self.w_max
    }
}

impl CongestionControl for CubicCc {
    fn on_ack(&mut self, win: &mut WindowState, ev: &AckEvent, signals: &CcSignals) -> AckOutcome {
        if let Some(point) = self.recovery_point {
            if ev.cum_ack >= point {
                self.recovery_point = None;
            }
        }

        let mut out = AckOutcome::default();
        if self.recovery_point.is_some() {
            return out;
        }
        if ev.newly_lost > 0 {
            self.congestion_event(win, ev.high_seq);
            out.cuts = 1;
            return out;
        }
        if win.in_slow_start() {
            for _ in 0..ev.newly_acked {
                win.open();
            }
            return out;
        }

        // Congestion avoidance: pull the window toward the cubic target.
        let cwnd = win.cwnd();
        let epoch_start = *self.epoch_start.get_or_insert_with(|| {
            // Re-anchor: after a timeout or a slow-start overshoot the
            // window may already exceed the old anchor.
            if cwnd >= self.w_max {
                self.w_max = cwnd;
                self.k = 0.0;
            } else {
                self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
            }
            ev.ack_time
        });
        let t = ev.ack_time.saturating_since(epoch_start).as_secs_f64();
        let rtt = signals.min_rtt().map_or(0.0, |r| r.as_secs_f64());
        // Target one RTT ahead, per RFC 8312 §4.1.
        let mut target = self.w_cubic(t + rtt);
        // TCP-friendly region (§4.2): at least what AIMD with β = 0.7
        // would have reached after this epoch's acks.
        self.epoch_acks += ev.newly_acked;
        if cwnd > 0.0 {
            let w_est = self.w_max * CUBIC_BETA
                + (3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)) * (self.epoch_acks as f64 / cwnd);
            target = target.max(w_est);
        }
        // Per-ack increment, never negative: the window is monotone
        // non-decreasing between congestion events.
        let increment = ((target - cwnd) / cwnd).max(0.0);
        win.set(cwnd + increment);
        out
    }

    fn on_loss(&mut self, win: &mut WindowState, high_seq: u64, _now: SimTime) -> bool {
        if self.recovery_point.is_some() {
            return false;
        }
        self.congestion_event(win, high_seq);
        true
    }

    fn on_timeout(&mut self, win: &mut WindowState, _now: SimTime) {
        self.w_max = win.cwnd();
        win.collapse();
        self.epoch_start = None;
        self.epoch_acks = 0;
        self.recovery_point = None;
    }

    fn allowed_window(&self, win: &WindowState, _signals: &CcSignals) -> u64 {
        win.allowed()
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    fn win(cwnd: f64) -> WindowState {
        // ssthresh below cwnd: start in congestion avoidance.
        WindowState::new(cwnd, cwnd / 2.0, 10_000.0)
    }

    fn ack_at(cum_ack: u64, secs_f64: f64) -> AckEvent {
        AckEvent {
            ack_time: SimTime::from_secs_f64(secs_f64),
            rtt_sample: Some(SimDuration::from_millis(100)),
            ..AckEvent::loss_only(cum_ack, 1, 0, cum_ack + 50)
        }
    }

    #[test]
    fn loss_cuts_by_beta_and_enters_recovery() {
        let mut w = win(100.0);
        let mut cc = CubicCc::new();
        let mut ev = ack_at(10, 1.0);
        ev.newly_lost = 2;
        let out = cc.on_ack(&mut w, &ev, &CcSignals::new());
        assert_eq!(out.cuts, 1);
        assert!(
            (w.cwnd() - 70.0).abs() < 1e-9,
            "cut by 0.7, got {}",
            w.cwnd()
        );
        assert!(cc.in_recovery());
        // Another loss inside the same window: no second cut.
        let mut ev2 = ack_at(20, 1.1);
        ev2.newly_lost = 1;
        assert_eq!(cc.on_ack(&mut w, &ev2, &CcSignals::new()).cuts, 0);
        assert!((w.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn window_climbs_back_toward_w_max() {
        let mut w = win(100.0);
        let mut cc = CubicCc::new();
        let s = CcSignals::new();
        cc.on_loss(&mut w, 60, SimTime::from_secs(1));
        let cut = w.cwnd();
        // Recovery exits at cum_ack 60; then the cubic climbs.
        let mut seq = 60;
        for i in 0..2_000 {
            seq += 1;
            cc.on_ack(&mut w, &ack_at(seq, 1.0 + i as f64 * 0.01), &s);
        }
        assert!(w.cwnd() > cut, "cubic must grow after the cut");
        assert!(
            w.cwnd() > 100.0,
            "20 s of growth passes the old anchor, got {}",
            w.cwnd()
        );
    }

    #[test]
    fn growth_is_monotone_between_losses() {
        let mut w = win(50.0);
        let mut cc = CubicCc::new();
        let s = CcSignals::new();
        let mut last = w.cwnd();
        for i in 0..500 {
            cc.on_ack(&mut w, &ack_at(i, i as f64 * 0.05), &s);
            assert!(w.cwnd() >= last, "cwnd shrank without a loss at ack {i}");
            last = w.cwnd();
        }
    }

    #[test]
    fn fast_convergence_lowers_the_anchor() {
        let mut w = win(100.0);
        let mut cc = CubicCc::new();
        cc.on_loss(&mut w, 10, SimTime::from_secs(1));
        assert_eq!(cc.w_max, 100.0, "first loss anchors at cwnd");
        // Second loss arrives below the anchor (cwnd = 70 < 100):
        // fast convergence pulls it under the current window.
        cc.recovery_point = None;
        cc.on_loss(&mut w, 20, SimTime::from_secs(2));
        assert!((cc.w_max - 70.0 * (2.0 - CUBIC_BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_collapses_and_reanchors() {
        let mut w = win(80.0);
        let mut cc = CubicCc::new();
        cc.on_timeout(&mut w, SimTime::from_secs(3));
        assert_eq!(w.cwnd(), 1.0);
        assert_eq!(cc.w_max, 80.0);
        assert!(!cc.in_recovery());
        assert!(w.in_slow_start(), "restart in slow start");
    }

    #[test]
    fn slow_start_opens_like_aimd() {
        let mut w = WindowState::new(2.0, 32.0, 10_000.0);
        let mut cc = CubicCc::new();
        let s = CcSignals::new();
        cc.on_ack(&mut w, &ack_at(1, 0.1), &s);
        assert_eq!(w.cwnd(), 3.0, "slow start still +1 per ack");
    }
}
