//! Property tests over the v2 congestion-control surface.
//!
//! Three families:
//!
//! 1. **v1 equivalence** — SACK and Reno, fed random ack traces carrying
//!    the full v2 signal set, must produce exactly the `allowed_window`
//!    sequences of a signal-blind reference reimplementation of their v1
//!    state machines. This is the API redesign's core promise: the
//!    loss-based policies ignore the new parameters, so the golden trace
//!    digests cannot move.
//! 2. **CUBIC monotonicity** — between losses the cubic window never
//!    shrinks, for any ack/RTT pattern.
//! 3. **BBR pacing bound** — the pacing rate never exceeds the bandwidth
//!    filter's estimate times the active gain (and the gain never
//!    exceeds the startup gain, the state machine's maximum).

use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use transport::{
    AckEvent, BbrV1Cc, CcSignals, CongestionControl, CubicCc, RateSample, WindowState,
};

/// One step of a synthetic connection trace.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `newly_acked` packets cumulatively acked, `newly_lost` declared
    /// lost by the scoreboard, with an RTT sample in milliseconds.
    Ack {
        newly_acked: u64,
        newly_lost: u64,
        rtt_ms: u64,
    },
    /// A duplicate ack (no cumulative advance).
    DupAck,
    /// A loss signal outside the ack path.
    Loss,
    /// A retransmission timeout.
    Timeout,
}

/// The raw tuple the (vendored, combinator-free) proptest strategy can
/// generate; [`decode`] maps it onto a [`Step`]. Weights: 8/13 acks,
/// 3/13 duplicate acks, 1/13 each loss and timeout.
type RawStep = (u64, u64, u64, u64);

fn decode(raw: RawStep) -> Step {
    let (kind, newly_acked, newly_lost, rtt_ms) = raw;
    match kind {
        0..=7 => Step::Ack {
            newly_acked,
            newly_lost,
            rtt_ms,
        },
        8..=10 => Step::DupAck,
        11 => Step::Loss,
        _ => Step::Timeout,
    }
}

fn decode_all(raw: &[RawStep]) -> Vec<Step> {
    raw.iter().copied().map(decode).collect()
}

/// Build a full-signal v2 ack event at `now` and fold it into `signals`.
fn signal_ack(
    signals: &mut CcSignals,
    cum_ack: u64,
    newly_acked: u64,
    newly_lost: u64,
    high_seq: u64,
    now: SimTime,
    rtt: SimDuration,
) -> AckEvent {
    let ev = AckEvent {
        cum_ack,
        newly_acked,
        newly_delivered: newly_acked,
        newly_lost,
        high_seq,
        ack_time: now,
        rtt_sample: Some(rtt),
        in_flight: high_seq - cum_ack,
        rate: Some(RateSample {
            newly_acked_bytes: newly_acked * 1000,
            sent_at: SimTime::from_nanos(now.as_nanos().saturating_sub(rtt.as_nanos())),
            delivered_at_send: signals.delivered().saturating_sub(newly_acked),
            app_limited: false,
        }),
    };
    signals.on_ack(&ev);
    ev
}

/// Drive a policy through the trace with full v2 signals, recording the
/// `allowed_window` after every step.
fn drive_v2(cc: &mut dyn CongestionControl, steps: &[Step]) -> Vec<u64> {
    let mut win = WindowState::new(2.0, 64.0, 1_000.0);
    let mut signals = CcSignals::new();
    let mut cum_ack = 0u64;
    let mut high_seq = 40u64;
    let mut now = SimTime::ZERO;
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        now += SimDuration::from_millis(20);
        match *step {
            Step::Ack {
                newly_acked,
                newly_lost,
                rtt_ms,
            } => {
                cum_ack += newly_acked;
                high_seq = high_seq.max(cum_ack) + 2;
                let ev = signal_ack(
                    &mut signals,
                    cum_ack,
                    newly_acked,
                    newly_lost,
                    high_seq,
                    now,
                    SimDuration::from_millis(rtt_ms),
                );
                cc.on_ack(&mut win, &ev, &signals);
            }
            Step::DupAck => {
                let ev = AckEvent {
                    cum_ack,
                    newly_acked: 0,
                    newly_delivered: 0,
                    newly_lost: 0,
                    high_seq,
                    ack_time: now,
                    rtt_sample: None,
                    in_flight: high_seq - cum_ack,
                    rate: None,
                };
                signals.on_ack(&ev);
                cc.on_ack(&mut win, &ev, &signals);
            }
            Step::Loss => {
                cc.on_loss(&mut win, high_seq, now);
            }
            Step::Timeout => {
                cc.on_timeout(&mut win, now);
            }
        }
        out.push(cc.allowed_window(&win, &signals));
    }
    out
}

// ---------------------------------------------------------------------
// Family 1: the v1 reference machines, reimplemented without signals.
// ---------------------------------------------------------------------

/// The pre-redesign SACK policy: one halving per loss window.
#[derive(Default)]
struct RefSack {
    recovery_point: Option<u64>,
}

/// The pre-redesign Reno policy: dup-ack counting with inflation.
struct RefReno {
    dup_count: u64,
    recovery_point: Option<u64>,
}

fn drive_reference(sack: bool, steps: &[Step]) -> Vec<u64> {
    let mut win = WindowState::new(2.0, 64.0, 1_000.0);
    let mut s = RefSack::default();
    let mut r = RefReno {
        dup_count: 0,
        recovery_point: None,
    };
    let mut cum_ack = 0u64;
    let mut high_seq = 40u64;
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        match *step {
            Step::Ack {
                newly_acked,
                newly_lost,
                ..
            } => {
                cum_ack += newly_acked;
                high_seq = high_seq.max(cum_ack) + 2;
                if sack {
                    if s.recovery_point.is_some_and(|p| cum_ack >= p) {
                        s.recovery_point = None;
                    }
                    if s.recovery_point.is_none() {
                        if newly_lost > 0 {
                            win.cut();
                            s.recovery_point = Some(high_seq);
                        } else {
                            for _ in 0..newly_acked {
                                win.open();
                            }
                        }
                    }
                } else {
                    match r.recovery_point {
                        Some(p) if cum_ack < p => r.dup_count = 0,
                        Some(_) => {
                            r.recovery_point = None;
                            r.dup_count = 0;
                            win.set(win.ssthresh());
                        }
                        None => {
                            r.dup_count = 0;
                            for _ in 0..newly_acked {
                                win.open();
                            }
                        }
                    }
                }
            }
            Step::DupAck => {
                if sack {
                    // v1 SACK treats a duplicate ack as a no-op unless the
                    // scoreboard reports losses (newly_lost, not modelled
                    // for dups here) — recovery exit check still applies.
                    if s.recovery_point.is_some_and(|p| cum_ack >= p) {
                        s.recovery_point = None;
                    }
                } else {
                    r.dup_count += 1;
                    if r.recovery_point.is_none() && r.dup_count == 3 {
                        win.cut();
                        r.recovery_point = Some(high_seq);
                    }
                }
            }
            Step::Loss => {
                let point = if sack {
                    &mut s.recovery_point
                } else {
                    &mut r.recovery_point
                };
                if point.is_none() {
                    win.cut();
                    *point = Some(high_seq);
                }
            }
            Step::Timeout => {
                win.collapse();
                s.recovery_point = None;
                r.recovery_point = None;
                r.dup_count = 0;
            }
        }
        let inflation = if !sack && r.recovery_point.is_some() {
            r.dup_count
        } else {
            0
        };
        out.push(win.allowed() + inflation);
    }
    out
}

proptest! {
    #[test]
    fn sack_v2_matches_the_v1_reference_on_any_trace(
        raw in proptest::collection::vec((0u64..13, 1u64..4, 0u64..3, 150u64..400), 1..120)
    ) {
        let steps = decode_all(&raw);
        let mut cc = transport::SackCc::new();
        prop_assert_eq!(drive_v2(&mut cc, &steps), drive_reference(true, &steps));
    }

    #[test]
    fn reno_v2_matches_the_v1_reference_on_any_trace(
        raw in proptest::collection::vec((0u64..13, 1u64..4, 0u64..3, 150u64..400), 1..120)
    ) {
        let steps = decode_all(&raw);
        let mut cc = transport::RenoCc::new(3);
        prop_assert_eq!(drive_v2(&mut cc, &steps), drive_reference(false, &steps));
    }

    // -----------------------------------------------------------------
    // Family 2: CUBIC never shrinks between losses.
    // -----------------------------------------------------------------

    #[test]
    fn cubic_window_is_monotone_between_losses(
        acks in proptest::collection::vec((1u64..4, 150u64..400), 1..200),
        // Start from a post-loss state at a grown anchor, or fresh.
        prior_loss in any::<bool>(),
    ) {
        let mut cc = CubicCc::new();
        let mut win = WindowState::new(2.0, 64.0, 10_000.0);
        let mut signals = CcSignals::new();
        let mut cum_ack = 0u64;
        let mut now = SimTime::ZERO;
        if prior_loss {
            // Grow a little, then take a loss so the cubic epoch starts
            // with a real w_max anchor.
            for _ in 0..30 {
                now += SimDuration::from_millis(20);
                cum_ack += 1;
                let ev = signal_ack(
                    &mut signals, cum_ack, 1, 0, cum_ack + 10, now,
                    SimDuration::from_millis(200),
                );
                cc.on_ack(&mut win, &ev, &signals);
            }
            cc.on_loss(&mut win, cum_ack + 10, now);
        }
        let mut last = cc.allowed_window(&win, &signals);
        for (newly_acked, rtt_ms) in acks {
            now += SimDuration::from_millis(20);
            cum_ack += newly_acked;
            let ev = signal_ack(
                &mut signals, cum_ack, newly_acked, 0, cum_ack + 10, now,
                SimDuration::from_millis(rtt_ms),
            );
            cc.on_ack(&mut win, &ev, &signals);
            let allowed = cc.allowed_window(&win, &signals);
            prop_assert!(
                allowed >= last,
                "cubic shrank without a loss: {} -> {}", last, allowed
            );
            last = allowed;
        }
    }

    // -----------------------------------------------------------------
    // Family 3: BBR's pacing rate is bounded by gain × bandwidth.
    // -----------------------------------------------------------------

    #[test]
    fn bbr_pacing_rate_never_exceeds_gain_times_bandwidth(
        acks in proptest::collection::vec((1u64..4, 150u64..400), 1..200)
    ) {
        let mut cc = BbrV1Cc::new();
        let mut win = WindowState::new(4.0, 64.0, 10_000.0);
        let mut signals = CcSignals::new();
        let mut cum_ack = 0u64;
        let mut now = SimTime::ZERO;
        for (newly_acked, rtt_ms) in acks {
            now += SimDuration::from_millis(20);
            cum_ack += newly_acked;
            let ev = signal_ack(
                &mut signals, cum_ack, newly_acked, 0, cum_ack + 12, now,
                SimDuration::from_millis(rtt_ms),
            );
            cc.on_ack(&mut win, &ev, &signals);
            // The gain itself never exceeds startup's 2.885.
            prop_assert!(cc.pacing_gain() <= transport::bbr::BBR_STARTUP_GAIN + 1e-12);
            match (cc.pacing_rate(&signals), signals.bandwidth_pps()) {
                (Some(rate), Some(bw)) => {
                    prop_assert!(
                        rate <= cc.pacing_gain() * bw * (1.0 + 1e-9),
                        "pacing {} pkt/s exceeds gain {} x bw {}",
                        rate, cc.pacing_gain(), bw
                    );
                }
                (Some(rate), None) => {
                    prop_assert!(false, "pacing {} with no bandwidth estimate", rate);
                }
                (None, _) => {}
            }
        }
    }
}
