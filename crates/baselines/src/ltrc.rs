//! The loss-tolerant rate controller (LTRC), after Montgomery 1997 as the
//! paper describes it (§1):
//!
//! > "The algorithm identifies congestion and reduces the sender rate if
//! > the reported loss rate (an exponentially-weighted moving average)
//! > from some receiver is larger than a certain threshold. The rate is
//! > not reduced further within a certain period of time after the last
//! > reduction."
//!
//! The paper's criticism — that no universal loss threshold exists, so the
//! controller is systematically unfair to TCP — is what experiment E12
//! demonstrates.

use netsim::time::{SimDuration, SimTime};
use transport::CongestionEpoch;

use crate::rate_sender::{RateController, ReceiverReport};

/// LTRC parameters.
#[derive(Debug, Clone)]
pub struct LtrcConfig {
    /// A receiver whose EWMA loss rate exceeds this is congested.
    pub loss_threshold: f64,
    /// Multiplier applied on congestion (the paper's schemes halve).
    pub decrease_factor: f64,
    /// Minimum spacing between consecutive reductions.
    pub hold_time: SimDuration,
    /// Additive increase per update interval, pkt/s (≈ one packet per RTT
    /// per RTT, scaled by the update period).
    pub increase_pps: f64,
    /// Ignore reports older than this (stale receivers).
    pub report_timeout: SimDuration,
}

impl Default for LtrcConfig {
    fn default() -> Self {
        LtrcConfig {
            loss_threshold: 0.02,
            decrease_factor: 0.5,
            hold_time: SimDuration::from_secs(1),
            increase_pps: 2.0,
            report_timeout: SimDuration::from_secs(5),
        }
    }
}

/// The LTRC policy.
#[derive(Debug)]
pub struct Ltrc {
    cfg: LtrcConfig,
    /// Hold-off bookkeeping around the last rate cut.
    epoch: CongestionEpoch,
    reductions: u64,
}

impl Ltrc {
    /// A controller with the given parameters.
    pub fn new(cfg: LtrcConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.loss_threshold),
            "loss threshold must be a probability"
        );
        assert!(
            cfg.decrease_factor > 0.0 && cfg.decrease_factor < 1.0,
            "decrease factor must shrink the rate"
        );
        Ltrc {
            cfg,
            epoch: CongestionEpoch::new(),
            reductions: 0,
        }
    }
}

impl RateController for Ltrc {
    fn update(&mut self, now: SimTime, rate: f64, reports: &[ReceiverReport]) -> f64 {
        let worst = reports
            .iter()
            .filter(|r| now.saturating_since(r.updated_at) <= self.cfg.report_timeout)
            .map(|r| r.avg_loss_rate)
            .fold(0.0, f64::max);
        let in_hold = self.epoch.in_hold(now, self.cfg.hold_time);
        if worst > self.cfg.loss_threshold && !in_hold {
            self.epoch.mark(now);
            self.reductions += 1;
            rate * self.cfg.decrease_factor
        } else {
            rate + self.cfg.increase_pps
        }
    }

    fn reductions(&self) -> u64 {
        self.reductions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::id::AgentId;

    fn report(loss: f64, at: SimTime) -> ReceiverReport {
        ReceiverReport {
            receiver: AgentId(0),
            avg_loss_rate: loss,
            interval_loss_rate: loss,
            updated_at: at,
        }
    }

    #[test]
    fn increases_without_congestion() {
        let mut c = Ltrc::new(LtrcConfig::default());
        let r = c.update(
            SimTime::from_secs(1),
            10.0,
            &[report(0.001, SimTime::from_secs(1))],
        );
        assert_eq!(r, 12.0);
        assert_eq!(c.reductions(), 0);
    }

    #[test]
    fn halves_on_threshold_crossing() {
        let mut c = Ltrc::new(LtrcConfig::default());
        let r = c.update(
            SimTime::from_secs(1),
            10.0,
            &[report(0.05, SimTime::from_secs(1))],
        );
        assert_eq!(r, 5.0);
        assert_eq!(c.reductions(), 1);
    }

    #[test]
    fn hold_time_prevents_consecutive_cuts() {
        let mut c = Ltrc::new(LtrcConfig::default());
        let r1 = c.update(
            SimTime::from_secs(1),
            10.0,
            &[report(0.05, SimTime::from_secs(1))],
        );
        // 500 ms later: still inside the 1 s hold — must increase instead.
        let r2 = c.update(
            SimTime::from_secs_f64(1.5),
            r1,
            &[report(0.05, SimTime::from_secs_f64(1.5))],
        );
        assert!(r2 > r1);
        // After the hold expires the cut happens.
        let r3 = c.update(
            SimTime::from_secs(3),
            r2,
            &[report(0.05, SimTime::from_secs(3))],
        );
        assert_eq!(r3, r2 * 0.5);
        assert_eq!(c.reductions(), 2);
    }

    #[test]
    fn stale_reports_ignored() {
        let mut c = Ltrc::new(LtrcConfig::default());
        // A very old congested report must not trigger a cut.
        let r = c.update(
            SimTime::from_secs(100),
            10.0,
            &[report(0.5, SimTime::from_secs(1))],
        );
        assert!(r > 10.0);
    }

    #[test]
    fn reacts_to_the_worst_receiver_only() {
        let mut c = Ltrc::new(LtrcConfig::default());
        let now = SimTime::from_secs(1);
        let reports = [report(0.001, now), report(0.05, now), report(0.0, now)];
        let r = c.update(now, 10.0, &reports);
        assert_eq!(r, 5.0, "one bad receiver is enough for LTRC");
    }
}
