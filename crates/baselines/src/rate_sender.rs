//! The rate-based multicast framework shared by the LTRC and MBFC
//! baselines.
//!
//! The paper's introduction describes the common shape of 1997-era
//! rate-based proposals: the sender transmits at a rate, receivers report
//! loss measurements, and every update interval the sender halves the rate
//! if the loss reports indicate congestion, otherwise increases it
//! linearly (~one packet per RTT). The proposals differ only in *how*
//! congestion is inferred from the reports — that policy is the
//! [`RateController`] trait; LTRC and MBFC implement it.

use std::any::Any;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::{AgentId, GroupId};
use netsim::packet::{Dest, Packet};
use netsim::stats::{Ewma, TimeWeighted};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::{RateData, RateFeedback, Segment};

/// Timer token: transmit the next data packet.
const SEND_TOKEN: u64 = 1;
/// Timer token: run the controller update.
const UPDATE_TOKEN: u64 = 2;
/// Timer token (receiver): emit the periodic loss report.
const REPORT_TOKEN: u64 = 3;

/// The most recent loss report from one receiver, as seen by the sender.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverReport {
    /// The reporting receiver.
    pub receiver: AgentId,
    /// EWMA loss rate reported by the receiver.
    pub avg_loss_rate: f64,
    /// Loss rate over the receiver's last report interval alone.
    pub interval_loss_rate: f64,
    /// When the report arrived at the sender.
    pub updated_at: SimTime,
}

/// A congestion-inference policy for a rate-based multicast sender.
pub trait RateController: std::fmt::Debug + Send + 'static {
    /// Decide the new rate (pkt/s) given the current rate and the latest
    /// per-receiver reports. Called once per update interval.
    fn update(&mut self, now: SimTime, rate: f64, reports: &[ReceiverReport]) -> f64;

    /// Number of rate reductions taken so far (for the comparison tables).
    fn reductions(&self) -> u64;
}

/// Configuration shared by rate-based senders.
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// Data packet size, bytes.
    pub packet_size: u32,
    /// Initial transmission rate, pkt/s.
    pub initial_rate: f64,
    /// Rate floor, pkt/s (never shut off completely).
    pub min_rate: f64,
    /// Rate ceiling, pkt/s.
    pub max_rate: f64,
    /// Controller update period.
    pub update_interval: SimDuration,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            packet_size: 1000,
            initial_rate: 10.0,
            min_rate: 1.0,
            max_rate: 100_000.0,
            update_interval: SimDuration::from_millis(500),
        }
    }
}

/// Sender statistics.
#[derive(Debug, Clone)]
pub struct RateSenderStats {
    /// Data packets sent since the last reset.
    pub data_sent: u64,
    /// Time-weighted average rate, pkt/s.
    pub rate_avg: TimeWeighted,
    /// When the statistics window began.
    pub since: SimTime,
}

/// A multicast sender transmitting at a controlled rate.
pub struct RateSender<C: RateController> {
    cfg: RateConfig,
    group: GroupId,
    controller: C,
    rate: f64,
    reports: Vec<ReceiverReport>,
    next_seq: u64,
    /// Collected statistics.
    pub stats: RateSenderStats,
}

impl<C: RateController> RateSender<C> {
    /// A sender for `group` driven by `controller`.
    pub fn new(group: GroupId, cfg: RateConfig, controller: C) -> Self {
        assert!(cfg.initial_rate > 0.0, "initial rate must be positive");
        assert!(
            cfg.min_rate > 0.0 && cfg.min_rate <= cfg.max_rate,
            "rate bounds must satisfy 0 < min <= max"
        );
        let rate = cfg.initial_rate;
        RateSender {
            group,
            controller,
            rate,
            reports: Vec::new(),
            next_seq: 0,
            stats: RateSenderStats {
                data_sent: 0,
                rate_avg: TimeWeighted::new(SimTime::ZERO, rate),
                since: SimTime::ZERO,
            },
            cfg,
        }
    }

    /// Current transmission rate, pkt/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The controller (for inspecting policy-specific counters).
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Average send rate over the statistics window.
    pub fn avg_rate(&self, now: SimTime) -> f64 {
        self.stats.rate_avg.average(now)
    }

    /// Discard statistics and start a fresh window at `now`.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.stats = RateSenderStats {
            data_sent: 0,
            rate_avg: TimeWeighted::new(now, self.rate),
            since: now,
        };
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate)
    }

    fn send_one(&mut self, ctx: &mut Context<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.data_sent += 1;
        ctx.send(
            Dest::Group(self.group),
            self.cfg.packet_size,
            Segment::RateData(RateData {
                seq,
                timestamp: ctx.now(),
            }),
        );
    }
}

impl<C: RateController> Agent for RateSender<C> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.stats.rate_avg = TimeWeighted::new(ctx.now(), self.rate);
        self.stats.since = ctx.now();
        self.send_one(ctx);
        ctx.set_timer(self.interval(), SEND_TOKEN);
        ctx.set_timer(self.cfg.update_interval, UPDATE_TOKEN);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let Segment::RateFeedback(fb) = packet.segment else {
            debug_assert!(false, "rate sender got {}", packet.segment.kind_str());
            return;
        };
        let report = ReceiverReport {
            receiver: fb.receiver,
            avg_loss_rate: fb.avg_loss_rate,
            interval_loss_rate: if fb.lost + fb.received == 0 {
                0.0
            } else {
                fb.lost as f64 / (fb.lost + fb.received) as f64
            },
            updated_at: ctx.now(),
        };
        match self.reports.iter_mut().find(|r| r.receiver == fb.receiver) {
            Some(slot) => *slot = report,
            None => self.reports.push(report),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            SEND_TOKEN => {
                self.send_one(ctx);
                ctx.set_timer(self.interval(), SEND_TOKEN);
            }
            UPDATE_TOKEN => {
                let now = ctx.now();
                let new_rate = self
                    .controller
                    .update(now, self.rate, &self.reports)
                    .clamp(self.cfg.min_rate, self.cfg.max_rate);
                self.rate = new_rate;
                self.stats.rate_avg.set(now, new_rate);
                ctx.set_timer(self.cfg.update_interval, UPDATE_TOKEN);
            }
            other => debug_assert!(false, "unknown timer token {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Receiver statistics.
#[derive(Debug, Default, Clone)]
pub struct RateReceiverStats {
    /// Data packets received.
    pub received: u64,
    /// Losses inferred from sequence gaps.
    pub lost: u64,
}

/// A rate-based multicast receiver: counts sequence gaps as losses and
/// reports periodically.
#[derive(Debug)]
pub struct RateReceiver {
    /// Next expected sequence number.
    expected: u64,
    /// Losses in the current report interval.
    interval_lost: u64,
    /// Receptions in the current report interval.
    interval_received: u64,
    /// EWMA of the per-interval loss rate.
    loss_ewma: Ewma,
    /// Learned from the first data packet.
    sender: Option<AgentId>,
    report_interval: SimDuration,
    feedback_size: u32,
    /// Running statistics.
    pub stats: RateReceiverStats,
}

impl RateReceiver {
    /// A receiver reporting every `report_interval` with the given EWMA
    /// gain on its loss rate.
    pub fn new(report_interval: SimDuration, loss_gain: f64) -> Self {
        RateReceiver {
            expected: 0,
            interval_lost: 0,
            interval_received: 0,
            loss_ewma: Ewma::new(loss_gain),
            sender: None,
            report_interval,
            feedback_size: 40,
            stats: RateReceiverStats::default(),
        }
    }

    /// Zero the statistics (end-of-warmup reset).
    pub fn reset_stats(&mut self) {
        self.stats = RateReceiverStats::default();
    }
}

impl Agent for RateReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let Segment::RateData(data) = packet.segment else {
            debug_assert!(false, "rate receiver got {}", packet.segment.kind_str());
            return;
        };
        if self.sender.is_none() {
            self.sender = Some(packet.src);
            ctx.set_timer(self.report_interval, REPORT_TOKEN);
        }
        if data.seq >= self.expected {
            let gap = data.seq - self.expected;
            self.interval_lost += gap;
            self.stats.lost += gap;
            self.expected = data.seq + 1;
        }
        self.interval_received += 1;
        self.stats.received += 1;
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, REPORT_TOKEN);
        let total = self.interval_lost + self.interval_received;
        let rate = if total == 0 {
            0.0
        } else {
            self.interval_lost as f64 / total as f64
        };
        self.loss_ewma.push(rate);
        if let Some(sender) = self.sender {
            ctx.send(
                Dest::Agent(sender),
                self.feedback_size,
                Segment::RateFeedback(RateFeedback {
                    receiver: ctx.agent,
                    highest_seq: self.expected,
                    lost: self.interval_lost,
                    received: self.interval_received,
                    avg_loss_rate: self.loss_ewma.value_or(0.0),
                }),
            );
        }
        self.interval_lost = 0;
        self.interval_received = 0;
        ctx.set_timer(self.report_interval, REPORT_TOKEN);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A controller that never changes the rate.
    #[derive(Debug)]
    pub struct FixedRate;
    impl RateController for FixedRate {
        fn update(&mut self, _now: SimTime, rate: f64, _reports: &[ReceiverReport]) -> f64 {
            rate
        }
        fn reductions(&self) -> u64 {
            0
        }
    }

    #[test]
    fn sender_paces_at_configured_rate() {
        use netsim::queue::QueueConfig;
        let mut e = netsim::engine::Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            100_000_000,
            SimDuration::from_millis(5),
            &QueueConfig::paper_droptail(),
        );
        let g = e.new_group();
        let rx = e.add_agent(
            b,
            Box::new(RateReceiver::new(SimDuration::from_millis(500), 0.25)),
        );
        e.join_group(g, rx);
        let cfg = RateConfig {
            initial_rate: 50.0,
            ..Default::default()
        };
        let tx = e.add_agent(a, Box::new(RateSender::new(g, cfg, FixedRate)));
        e.compute_routes();
        e.build_group_tree(g, a);
        e.start_agent_at(tx, SimTime::ZERO);
        e.run_until(SimTime::from_secs(10));
        let rxa: &RateReceiver = e.agent_as(rx).unwrap();
        let got = rxa.stats.received;
        assert!(
            (495..=505).contains(&got),
            "expected ~500 packets at 50 pkt/s over 10 s, got {got}"
        );
        assert_eq!(rxa.stats.lost, 0);
    }

    #[test]
    fn receiver_counts_gaps_as_losses() {
        let mut r = RateReceiver::new(SimDuration::from_secs(1), 0.25);
        // Feed sequences 0, 1, 4, 5 directly through the accounting.
        for seq in [0u64, 1, 4, 5] {
            if seq >= r.expected {
                let gap = seq - r.expected;
                r.interval_lost += gap;
                r.stats.lost += gap;
                r.expected = seq + 1;
            }
            r.interval_received += 1;
            r.stats.received += 1;
        }
        assert_eq!(r.stats.lost, 2);
        assert_eq!(r.stats.received, 4);
    }
}
