//! Monitor-based flow control (MBFC), after Sano et al. 1997 as the paper
//! describes it (§1):
//!
//! > "A receiver is considered congested if its average loss rate during a
//! > monitor period is larger than a certain threshold (loss-rate
//! > threshold), and the sender recognizes congestion only if the fraction
//! > of the receiver population considered congested is larger than a
//! > certain threshold (loss-population threshold)."
//!
//! With the population threshold at its minimum the scheme degenerates to
//! tracing the slowest receiver — the paper's point is that no meaningful
//! universal threshold pair exists.

use netsim::time::{SimDuration, SimTime};
use transport::CongestionEpoch;

use crate::rate_sender::{RateController, ReceiverReport};

/// MBFC parameters.
#[derive(Debug, Clone)]
pub struct MbfcConfig {
    /// Per-receiver loss-rate threshold over the monitor period.
    pub loss_threshold: f64,
    /// Fraction of the population that must be congested to cut the rate.
    pub population_threshold: f64,
    /// Multiplier applied on congestion.
    pub decrease_factor: f64,
    /// Minimum spacing between consecutive reductions.
    pub hold_time: SimDuration,
    /// Additive increase per update interval, pkt/s.
    pub increase_pps: f64,
    /// Ignore reports older than this.
    pub report_timeout: SimDuration,
    /// Total receiver population (denominator of the congested fraction).
    pub population: usize,
}

impl Default for MbfcConfig {
    fn default() -> Self {
        MbfcConfig {
            loss_threshold: 0.02,
            population_threshold: 0.25,
            decrease_factor: 0.5,
            hold_time: SimDuration::from_secs(1),
            increase_pps: 2.0,
            report_timeout: SimDuration::from_secs(5),
            population: 1,
        }
    }
}

/// The MBFC policy.
#[derive(Debug)]
pub struct Mbfc {
    cfg: MbfcConfig,
    /// Hold-off bookkeeping around the last rate cut.
    epoch: CongestionEpoch,
    reductions: u64,
}

impl Mbfc {
    /// A controller with the given parameters.
    pub fn new(cfg: MbfcConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.loss_threshold),
            "loss threshold must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.population_threshold),
            "population threshold must be a fraction"
        );
        assert!(cfg.population >= 1, "population must be positive");
        Mbfc {
            cfg,
            epoch: CongestionEpoch::new(),
            reductions: 0,
        }
    }
}

impl RateController for Mbfc {
    fn update(&mut self, now: SimTime, rate: f64, reports: &[ReceiverReport]) -> f64 {
        let congested = reports
            .iter()
            .filter(|r| now.saturating_since(r.updated_at) <= self.cfg.report_timeout)
            .filter(|r| r.interval_loss_rate > self.cfg.loss_threshold)
            .count();
        let fraction = congested as f64 / self.cfg.population.max(1) as f64;
        let in_hold = self.epoch.in_hold(now, self.cfg.hold_time);
        if fraction > self.cfg.population_threshold && !in_hold {
            self.epoch.mark(now);
            self.reductions += 1;
            rate * self.cfg.decrease_factor
        } else {
            rate + self.cfg.increase_pps
        }
    }

    fn reductions(&self) -> u64 {
        self.reductions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::id::AgentId;

    fn report(id: u32, loss: f64, at: SimTime) -> ReceiverReport {
        ReceiverReport {
            receiver: AgentId(id),
            avg_loss_rate: loss,
            interval_loss_rate: loss,
            updated_at: at,
        }
    }

    #[test]
    fn minority_congestion_is_ignored() {
        let mut c = Mbfc::new(MbfcConfig {
            population: 4,
            ..Default::default()
        });
        let now = SimTime::from_secs(1);
        // 1 of 4 congested = 25%, not above the 25% threshold.
        let reports = [
            report(0, 0.10, now),
            report(1, 0.0, now),
            report(2, 0.0, now),
            report(3, 0.0, now),
        ];
        let r = c.update(now, 10.0, &reports);
        assert!(
            r > 10.0,
            "QoS averaging: a single congested receiver ignored"
        );
    }

    #[test]
    fn majority_congestion_cuts() {
        let mut c = Mbfc::new(MbfcConfig {
            population: 4,
            ..Default::default()
        });
        let now = SimTime::from_secs(1);
        let reports = [
            report(0, 0.10, now),
            report(1, 0.08, now),
            report(2, 0.0, now),
            report(3, 0.0, now),
        ];
        let r = c.update(now, 10.0, &reports);
        assert_eq!(r, 5.0);
        assert_eq!(c.reductions(), 1);
    }

    #[test]
    fn zero_population_threshold_traces_the_slowest() {
        // The special case the paper calls out: population threshold at the
        // minimum reduces MBFC to reacting to any single receiver.
        let mut c = Mbfc::new(MbfcConfig {
            population: 10,
            population_threshold: 0.0,
            ..Default::default()
        });
        let now = SimTime::from_secs(1);
        let r = c.update(now, 10.0, &[report(0, 0.5, now)]);
        assert_eq!(r, 5.0);
    }

    #[test]
    fn hold_time_spaces_cuts() {
        let mut c = Mbfc::new(MbfcConfig {
            population: 1,
            population_threshold: 0.0,
            ..Default::default()
        });
        let r1 = c.update(
            SimTime::from_secs(1),
            16.0,
            &[report(0, 0.5, SimTime::from_secs(1))],
        );
        let r2 = c.update(
            SimTime::from_secs_f64(1.2),
            r1,
            &[report(0, 0.5, SimTime::from_secs_f64(1.2))],
        );
        assert!(r2 > r1, "inside hold time the rate must not drop again");
    }
}
