//! Background cross traffic: a Poisson short-flow generator.
//!
//! The paper's §5 evaluation runs against persistent bulk TCP only; the
//! dynamic-scenario work layers web-like cross traffic over the same
//! bottlenecks. [`PoissonFlowSource`] models an aggregate of short flows:
//! flow arrivals are a Poisson process (exponential inter-arrival times
//! drawn from the engine RNG, so runs stay deterministic per seed), each
//! flow is a geometric-ish burst of raw unicast packets toward a randomly
//! chosen sink, sent back-to-back so the burst contends for queue space
//! exactly like a short TCP flow's initial window would.
//!
//! [`BurstSource`] is the one-shot variant used by scheduled
//! `StartBackgroundFlow` events: a fixed-size burst to a fixed sink, fired
//! when the agent is started.

use std::any::Any;

use rand::Rng;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::time::SimDuration;
use netsim::wire::Segment;

/// Timer token: the next flow arrival.
const ARRIVAL_TOKEN: u64 = 1;

/// Shape of the background-traffic aggregate.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Mean flow arrival rate, flows per second (the Poisson intensity).
    pub flows_per_sec: f64,
    /// Mean flow length, packets (exponential, rounded up).
    pub mean_flow_packets: f64,
    /// Cap on a single flow's length, packets (keeps one unlucky draw from
    /// hogging a bottleneck for the rest of the run).
    pub max_flow_packets: u32,
    /// Packet size, bytes.
    pub packet_size: u32,
}

impl BackgroundConfig {
    /// An aggregate of `flows_per_sec` short flows averaging
    /// `mean_flow_packets` packets, with the default packet size and cap.
    pub fn new(flows_per_sec: f64, mean_flow_packets: f64) -> Self {
        assert!(
            flows_per_sec > 0.0 && flows_per_sec.is_finite(),
            "background flow rate must be positive and finite"
        );
        assert!(
            mean_flow_packets >= 1.0 && mean_flow_packets.is_finite(),
            "mean flow length must be at least one packet"
        );
        BackgroundConfig {
            flows_per_sec,
            mean_flow_packets,
            max_flow_packets: 256,
            packet_size: 1000,
        }
    }
}

/// What the generator has injected so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackgroundStats {
    /// Flows started.
    pub flows: u64,
    /// Packets sent across all flows.
    pub packets: u64,
    /// Bytes sent across all flows.
    pub bytes: u64,
}

/// A Poisson short-flow background-traffic agent. Place it at a node whose
/// routes toward `sinks` cross the links under study; every flow picks one
/// sink uniformly at random.
#[derive(Debug)]
pub struct PoissonFlowSource {
    cfg: BackgroundConfig,
    sinks: Vec<AgentId>,
    /// Running totals.
    pub stats: BackgroundStats,
}

impl PoissonFlowSource {
    /// A source that sprays flows at the given sinks.
    pub fn new(cfg: BackgroundConfig, sinks: Vec<AgentId>) -> Self {
        assert!(
            !sinks.is_empty(),
            "background source needs at least one sink"
        );
        PoissonFlowSource {
            cfg,
            sinks,
            stats: BackgroundStats::default(),
        }
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_>) {
        let u: f64 = ctx.rng().gen::<f64>().max(1e-12);
        let gap = SimDuration::from_secs_f64(-u.ln() / self.cfg.flows_per_sec);
        ctx.set_timer(gap, ARRIVAL_TOKEN);
    }

    fn start_flow(&mut self, ctx: &mut Context<'_>) {
        let sink = self.sinks[ctx.rng().gen_range(0..self.sinks.len())];
        let u: f64 = ctx.rng().gen::<f64>().max(1e-12);
        let len = ((-u.ln() * self.cfg.mean_flow_packets).ceil() as u32)
            .clamp(1, self.cfg.max_flow_packets);
        for _ in 0..len {
            ctx.send(Dest::Agent(sink), self.cfg.packet_size, Segment::Raw);
        }
        self.stats.flows += 1;
        self.stats.packets += u64::from(len);
        self.stats.bytes += u64::from(len) * u64::from(self.cfg.packet_size);
    }
}

impl Agent for PoissonFlowSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.schedule_next(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        debug_assert_eq!(token, ARRIVAL_TOKEN);
        self.start_flow(ctx);
        self.schedule_next(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A one-shot burst toward a fixed sink, fired when the agent starts —
/// the executor behind scheduled `StartBackgroundFlow` events.
#[derive(Debug)]
pub struct BurstSource {
    sink: AgentId,
    packets: u32,
    packet_size: u32,
    /// Packets actually injected (0 until started).
    pub sent: u64,
}

impl BurstSource {
    /// A burst of `packets` packets of `packet_size` bytes toward `sink`.
    pub fn new(sink: AgentId, packets: u32, packet_size: u32) -> Self {
        assert!(packets > 0, "a background burst must carry packets");
        BurstSource {
            sink,
            packets,
            packet_size,
            sent: 0,
        }
    }
}

impl Agent for BurstSource {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.packets {
            ctx.send(Dest::Agent(self.sink), self.packet_size, Segment::Raw);
        }
        self.sent += u64::from(self.packets);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::agent::Sink;
    use netsim::engine::Engine;
    use netsim::queue::QueueConfig;
    use netsim::time::SimTime;
    use netsim::topology::{kary_tree, LinkSpec};

    fn two_leaf_world(seed: u64) -> (Engine, Vec<AgentId>) {
        let mut e = Engine::new(seed);
        let spec = LinkSpec::new(
            10_000_000,
            SimDuration::from_millis(5),
            QueueConfig::paper_droptail(),
        );
        let tree = kary_tree(&mut e, 2, std::slice::from_ref(&spec));
        let sinks: Vec<AgentId> = tree
            .leaves()
            .iter()
            .map(|&n| e.add_agent(n, Box::new(Sink::default())))
            .collect();
        (e, sinks)
    }

    #[test]
    fn poisson_source_injects_flows_at_roughly_the_configured_rate() {
        let (mut e, sinks) = two_leaf_world(3);
        let root = netsim::id::NodeId(0);
        let src = e.add_agent(
            root,
            Box::new(PoissonFlowSource::new(
                BackgroundConfig::new(5.0, 10.0),
                sinks,
            )),
        );
        e.compute_routes();
        e.start_agent_at(src, SimTime::ZERO);
        e.run_until(SimTime::from_secs(100));
        let s: &PoissonFlowSource = e.agent_as(src).unwrap();
        // ~500 flows expected; allow generous slack for the seeded draw.
        assert!(
            s.stats.flows > 300 && s.stats.flows < 800,
            "flows = {}",
            s.stats.flows
        );
        assert!(s.stats.packets >= s.stats.flows);
        assert_eq!(s.stats.bytes, s.stats.packets * 1000);
    }

    #[test]
    fn poisson_source_is_deterministic_per_seed() {
        let run = |seed| {
            let (mut e, sinks) = two_leaf_world(seed);
            let src = e.add_agent(
                netsim::id::NodeId(0),
                Box::new(PoissonFlowSource::new(
                    BackgroundConfig::new(2.0, 8.0),
                    sinks,
                )),
            );
            e.compute_routes();
            e.start_agent_at(src, SimTime::ZERO);
            e.run_until(SimTime::from_secs(50));
            let s: &PoissonFlowSource = e.agent_as(src).unwrap();
            (s.stats.flows, s.stats.packets, e.trace_digest().value())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2);
    }

    #[test]
    fn burst_source_delivers_its_burst() {
        let (mut e, sinks) = two_leaf_world(1);
        let target = sinks[0];
        // 15 packets fit under the paper drop-tail limit of 20, so the
        // whole burst must arrive.
        let src = e.add_agent(
            netsim::id::NodeId(0),
            Box::new(BurstSource::new(target, 15, 1000)),
        );
        e.compute_routes();
        e.start_agent_at(src, SimTime::from_secs(1));
        e.run_until(SimTime::from_secs(5));
        let s: &BurstSource = e.agent_as(src).unwrap();
        assert_eq!(s.sent, 15);
        let sink: &Sink = e.agent_as(target).unwrap();
        assert_eq!(sink.received, 15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_flow_rate_rejected() {
        BackgroundConfig::new(0.0, 10.0);
    }
}
