//! # baselines — the rate-based controllers the paper argues against
//!
//! The paper's introduction surveys 1997-era rate-based multicast
//! congestion control and explains why threshold-based schemes cannot be
//! fair to window-based TCP through drop-tail gateways. Two representatives
//! are implemented here for the comparison experiment (E12 in DESIGN.md):
//!
//! * [`Ltrc`] — the loss-tolerant rate controller: halve when *any*
//!   receiver's EWMA loss rate crosses a threshold, hold-off between cuts.
//! * [`Mbfc`] — monitor-based flow control: halve when the *fraction* of
//!   congested receivers crosses a population threshold.
//!
//! Both ride on the shared [`RateSender`]/[`RateReceiver`] machinery:
//! paced transmission, periodic per-receiver loss reports, additive
//! increase between cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod ltrc;
pub mod mbfc;
pub mod rate_sender;

pub use background::{BackgroundConfig, BackgroundStats, BurstSource, PoissonFlowSource};
pub use ltrc::{Ltrc, LtrcConfig};
pub use mbfc::{Mbfc, MbfcConfig};
pub use rate_sender::{RateConfig, RateController, RateReceiver, RateSender, ReceiverReport};
