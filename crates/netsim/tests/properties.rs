//! Property-based tests of the simulator's core data structures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use netsim::agent::{Agent, Sink};
use netsim::arena::{PacketArena, PacketHandle};
use netsim::engine::{Context, Engine};
use netsim::event::{Calendar, EventKind, HeapCalendar};
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::queue::{DropTail, Enqueue, QueueConfig, QueueDiscipline, Red, RedConfig};
use netsim::stats::{Running, TimeWeighted};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::Segment;

fn pkt(arena: &mut PacketArena, uid: u64) -> PacketHandle {
    arena.insert(Packet {
        uid,
        src: AgentId(0),
        dest: Dest::Agent(AgentId(1)),
        size_bytes: 1000,
        segment: Segment::Raw,
        sent_at: SimTime::ZERO,
    })
}

proptest! {
    /// Pops come out sorted by time; equal times preserve insertion order.
    #[test]
    fn calendar_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_nanos(t), EventKind::Timer {
                agent: AgentId(0),
                token: i as u64,
            });
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(e) = cal.pop() {
            let EventKind::Timer { token, .. } = e.kind else { unreachable!() };
            if let Some((lt, ltok)) = last {
                prop_assert!(e.at >= lt, "time went backwards");
                if e.at == lt {
                    prop_assert!(token > ltok, "FIFO violated at equal times");
                }
            }
            last = Some((e.at, token));
        }
    }

    /// Drop-tail conserves packets: everything offered is either inside,
    /// dequeued, or was rejected; never more resident than the limit.
    #[test]
    fn droptail_conservation(
        limit in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(limit);
        let mut rng = StdRng::seed_from_u64(0);
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for (i, &is_enqueue) in ops.iter().enumerate() {
            if is_enqueue {
                offered += 1;
                match q.enqueue(pkt(&mut arena, i as u64), SimTime::ZERO, &mut rng) {
                    Enqueue::Accepted => accepted += 1,
                    Enqueue::Dropped(h, _) => { arena.remove(h); dropped += 1; }
                }
            } else if let Some(h) = q.dequeue(SimTime::ZERO) {
                arena.remove(h);
                dequeued += 1;
            }
            prop_assert!(q.len() <= limit, "resident beyond capacity");
            prop_assert_eq!(arena.len(), q.len(), "arena population must match the queue");
        }
        prop_assert_eq!(offered, accepted + dropped);
        prop_assert_eq!(accepted, dequeued + q.len() as u64);
    }

    /// Drop-tail is FIFO: dequeue order equals accepted-enqueue order.
    #[test]
    fn droptail_fifo(count in 1usize..100, limit in 1usize..100) {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(limit);
        let mut rng = StdRng::seed_from_u64(0);
        let mut accepted = Vec::new();
        for i in 0..count {
            match q.enqueue(pkt(&mut arena, i as u64), SimTime::ZERO, &mut rng) {
                Enqueue::Accepted => accepted.push(i as u64),
                Enqueue::Dropped(h, _) => { arena.remove(h); }
            }
        }
        let mut out = Vec::new();
        while let Some(h) = q.dequeue(SimTime::ZERO) {
            out.push(arena.remove(h).uid);
        }
        prop_assert_eq!(out, accepted);
    }

    /// RED never exceeds its physical buffer and also conserves packets.
    #[test]
    fn red_conservation(
        limit in 2usize..64,
        seed in 0u64..100,
        n in 1u64..500,
    ) {
        let cfg = RedConfig { limit, ..RedConfig::paper() };
        let mut arena = PacketArena::new();
        let mut q = Red::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for i in 0..n {
            match q.enqueue(pkt(&mut arena, i), SimTime::from_nanos(i * 100_000), &mut rng) {
                Enqueue::Accepted => accepted += 1,
                Enqueue::Dropped(h, _) => { arena.remove(h); dropped += 1; }
            }
            prop_assert!(q.len() <= limit);
            if i % 3 == 0 {
                if let Some(h) = q.dequeue(SimTime::from_nanos(i * 100_000)) {
                    arena.remove(h);
                    accepted -= 1;
                }
            }
        }
        prop_assert_eq!(accepted as usize, q.len());
        prop_assert_eq!(n, accepted + dropped + (n - accepted - dropped));
    }

    /// The Running accumulator matches a direct computation.
    #[test]
    fn running_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.min(), min);
        prop_assert_eq!(r.max(), max);
    }

    /// A time-weighted average always lies between the signal's extremes.
    #[test]
    fn time_weighted_average_bounded(
        changes in proptest::collection::vec((1u64..1000, 0.0f64..100.0), 1..50),
    ) {
        let mut w = TimeWeighted::new(SimTime::ZERO, 50.0);
        let mut lo: f64 = 50.0;
        let mut hi: f64 = 50.0;
        let mut t = 0u64;
        for &(dt, v) in &changes {
            t += dt;
            w.set(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = w.average(SimTime::from_nanos(t + 1));
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {} not in [{}, {}]", avg, lo, hi);
    }

    /// Transmission time scales linearly in size and inversely in rate.
    #[test]
    fn tx_time_scaling(size in 1u32..100_000, bps in 1_000u64..10_000_000_000) {
        let t1 = netsim::packet::tx_nanos(size, bps);
        let t2 = netsim::packet::tx_nanos(size, bps * 2);
        // Halving time when doubling rate (within rounding).
        prop_assert!(t2 <= t1 / 2 + 1);
        let d = SimDuration::from_nanos(t1);
        prop_assert!(d.as_secs_f64() > 0.0);
    }

    /// The timer wheel dispatches in exactly the reference heap's
    /// `(time, seq)` order under interleaved schedule/pop traffic —
    /// including same-timestamp runs that straddle the wheel/overflow
    /// boundary (`tie_time` near the ~17 s horizon, scheduled both before
    /// and after the cursor has advanced past other events).
    #[test]
    fn wheel_matches_heap_under_interleaving(
        times in proptest::collection::vec(0u64..(1u64 << 36), 1..200),
        tie_time in (1u64 << 33)..(1u64 << 35),
        pop_every in 1usize..8,
    ) {
        let mut wheel = Calendar::new();
        let mut heap = HeapCalendar::new();
        let schedule_both = |w: &mut Calendar, h: &mut HeapCalendar, t: u64, tok: u64| {
            let kind = EventKind::Timer { agent: AgentId(0), token: tok };
            w.schedule(SimTime::from_nanos(t), kind);
            h.schedule(SimTime::from_nanos(t), kind);
        };
        let mut tok = 0u64;
        for (i, &t) in times.iter().enumerate() {
            schedule_both(&mut wheel, &mut heap, t, tok);
            tok += 1;
            // A burst at one shared timestamp: FIFO among them must hold
            // even when some are scheduled after intervening pops.
            schedule_both(&mut wheel, &mut heap, tie_time, tok);
            tok += 1;
            if i % pop_every == 0 {
                let (a, b) = (wheel.pop(), heap.pop());
                match (a, b) {
                    (Some(a), Some(b)) => prop_assert_eq!((a.at, a.key), (b.at, b.key)),
                    (None, None) => {}
                    _ => prop_assert!(false, "wheel and heap disagree on emptiness"),
                }
            }
        }
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => prop_assert_eq!((a.at, a.key), (b.at, b.key)),
                _ => prop_assert!(false, "wheel and heap disagree on event count"),
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Chopping a run into arbitrary `run_until` deadlines — including
    /// deadlines right at the wheel's top-level rollover (~17.18 s) — must
    /// not change the trace digest: `pop_before`'s bounded refill cannot
    /// leak scheduling-order differences.
    #[test]
    fn digest_invariant_under_deadline_chunking(
        offsets in proptest::collection::vec(0u64..500_000_000, 1..20),
        raw_deadlines in proptest::collection::vec(0u64..40_000_000_000u64, 0..6),
    ) {
        let mut deadlines = raw_deadlines;
        // Send times cluster around the level-3 rollover boundaries so the
        // overflow migration path is exercised, not just the wheel.
        const ROLLOVER: u64 = 1 << 34; // span of the whole wheel, in ns
        let fire_at: Vec<u64> = offsets
            .iter()
            .enumerate()
            .map(|(i, &off)| match i % 3 {
                0 => off,                       // near zero
                1 => ROLLOVER - 250_000_000 + off, // straddling 1st rollover
                _ => 2 * ROLLOVER - 250_000_000 + off, // straddling 2nd
            })
            .collect();
        let end = 45_000_000_000u64;
        deadlines.push(ROLLOVER); // always test the exact boundary
        deadlines.sort_unstable();
        let reference = run_timer_scenario(&fire_at, &[], end);
        let chunked = run_timer_scenario(&fire_at, &deadlines, end);
        prop_assert_eq!(reference, chunked, "deadline chunking changed the digest");
        prop_assert!(reference.1 > 0, "scenario produced no packet events");
    }
}

/// An agent that sends one packet to `dest` at each requested instant.
struct TimerSender {
    dest: Dest,
    fire_at: Vec<u64>,
}

impl Agent for TimerSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for &t in &self.fire_at {
            ctx.set_timer_at(SimTime::from_nanos(t), t);
        }
    }
    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        ctx.send(self.dest, 1000, Segment::Raw);
    }
    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Run a two-node scenario whose sender fires at `fire_at` (ns), stepping
/// the engine through `deadlines` before finishing at `end`. Returns the
/// `(digest, event count)` pair.
fn run_timer_scenario(fire_at: &[u64], deadlines: &[u64], end: u64) -> (u64, u64) {
    let mut e = Engine::new(1);
    let a = e.add_node("a");
    let b = e.add_node("b");
    e.add_link(
        a,
        b,
        8_000_000,
        SimDuration::from_millis(10),
        &QueueConfig::DropTail { limit: 4 },
    );
    let sink = e.add_agent(b, Box::new(Sink::default()));
    let sender = e.add_agent(
        a,
        Box::new(TimerSender {
            dest: Dest::Agent(sink),
            fire_at: fire_at.to_vec(),
        }),
    );
    e.compute_routes();
    e.start_agent_at(sender, SimTime::ZERO);
    for &d in deadlines {
        e.run_until(SimTime::from_nanos(d.min(end)));
    }
    e.run_until(SimTime::from_nanos(end));
    (e.trace_digest().value(), e.trace_digest().events())
}
