//! Property-based tests of the simulator's core data structures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use netsim::event::{Calendar, EventKind};
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::queue::{DropTail, Enqueue, QueueDiscipline, Red, RedConfig};
use netsim::stats::{Running, TimeWeighted};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::Segment;

fn pkt(uid: u64) -> Packet {
    Packet {
        uid,
        src: AgentId(0),
        dest: Dest::Agent(AgentId(1)),
        size_bytes: 1000,
        segment: Segment::Raw,
        sent_at: SimTime::ZERO,
    }
}

proptest! {
    /// Pops come out sorted by time; equal times preserve insertion order.
    #[test]
    fn calendar_total_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_nanos(t), EventKind::Timer {
                agent: AgentId(0),
                token: i as u64,
            });
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(e) = cal.pop() {
            let EventKind::Timer { token, .. } = e.kind else { unreachable!() };
            if let Some((lt, ltok)) = last {
                prop_assert!(e.at >= lt, "time went backwards");
                if e.at == lt {
                    prop_assert!(token > ltok, "FIFO violated at equal times");
                }
            }
            last = Some((e.at, token));
        }
    }

    /// Drop-tail conserves packets: everything offered is either inside,
    /// dequeued, or was rejected; never more resident than the limit.
    #[test]
    fn droptail_conservation(
        limit in 1usize..64,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let mut q = DropTail::new(limit);
        let mut rng = StdRng::seed_from_u64(0);
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for (i, &is_enqueue) in ops.iter().enumerate() {
            if is_enqueue {
                offered += 1;
                match q.enqueue(pkt(i as u64), SimTime::ZERO, &mut rng) {
                    Enqueue::Accepted => accepted += 1,
                    Enqueue::Dropped(..) => dropped += 1,
                }
            } else if q.dequeue(SimTime::ZERO).is_some() {
                dequeued += 1;
            }
            prop_assert!(q.len() <= limit, "resident beyond capacity");
        }
        prop_assert_eq!(offered, accepted + dropped);
        prop_assert_eq!(accepted, dequeued + q.len() as u64);
    }

    /// Drop-tail is FIFO: dequeue order equals accepted-enqueue order.
    #[test]
    fn droptail_fifo(count in 1usize..100, limit in 1usize..100) {
        let mut q = DropTail::new(limit);
        let mut rng = StdRng::seed_from_u64(0);
        let mut accepted = Vec::new();
        for i in 0..count {
            if let Enqueue::Accepted = q.enqueue(pkt(i as u64), SimTime::ZERO, &mut rng) {
                accepted.push(i as u64);
            }
        }
        let mut out = Vec::new();
        while let Some(p) = q.dequeue(SimTime::ZERO) {
            out.push(p.uid);
        }
        prop_assert_eq!(out, accepted);
    }

    /// RED never exceeds its physical buffer and also conserves packets.
    #[test]
    fn red_conservation(
        limit in 2usize..64,
        seed in 0u64..100,
        n in 1u64..500,
    ) {
        let cfg = RedConfig { limit, ..RedConfig::paper() };
        let mut q = Red::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for i in 0..n {
            match q.enqueue(pkt(i), SimTime::from_nanos(i * 100_000), &mut rng) {
                Enqueue::Accepted => accepted += 1,
                Enqueue::Dropped(..) => dropped += 1,
            }
            prop_assert!(q.len() <= limit);
            if i % 3 == 0 && q.dequeue(SimTime::from_nanos(i * 100_000)).is_some() {
                accepted -= 1;
            }
        }
        prop_assert_eq!(accepted as usize, q.len());
        prop_assert_eq!(n, accepted + dropped + (n - accepted - dropped));
    }

    /// The Running accumulator matches a direct computation.
    #[test]
    fn running_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((r.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.min(), min);
        prop_assert_eq!(r.max(), max);
    }

    /// A time-weighted average always lies between the signal's extremes.
    #[test]
    fn time_weighted_average_bounded(
        changes in proptest::collection::vec((1u64..1000, 0.0f64..100.0), 1..50),
    ) {
        let mut w = TimeWeighted::new(SimTime::ZERO, 50.0);
        let mut lo: f64 = 50.0;
        let mut hi: f64 = 50.0;
        let mut t = 0u64;
        for &(dt, v) in &changes {
            t += dt;
            w.set(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let avg = w.average(SimTime::from_nanos(t + 1));
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {} not in [{}, {}]", avg, lo, hi);
    }

    /// Transmission time scales linearly in size and inversely in rate.
    #[test]
    fn tx_time_scaling(size in 1u32..100_000, bps in 1_000u64..10_000_000_000) {
        let t1 = netsim::packet::tx_nanos(size, bps);
        let t2 = netsim::packet::tx_nanos(size, bps * 2);
        // Halving time when doubling rate (within rounding).
        prop_assert!(t2 <= t1 / 2 + 1);
        let d = SimDuration::from_nanos(t1);
        prop_assert!(d.as_secs_f64() > 0.0);
    }
}
