//! # netsim — a deterministic packet-level network simulator
//!
//! The substrate for reproducing *Achieving Bounded Fairness for Multicast
//! and TCP Traffic in the Internet* (Wang & Schwartz, SIGCOMM 1998). The
//! paper evaluated the Random Listening Algorithm in NS2; this crate plays
//! NS2's role: a discrete-event engine moving fixed-size packets through
//! finite-buffer gateways.
//!
//! ## What's here
//!
//! * [`engine::Engine`] — the event loop, topology construction, agent
//!   arena, unicast routing and source-based multicast trees.
//! * [`queue`] — **drop-tail** and **RED** gateway buffers, the two router
//!   types the paper's fairness theorems distinguish.
//! * [`agent::Agent`] — the transport-endpoint trait implemented by the
//!   `tcp-sack`, `rla` and `baselines` crates.
//! * [`wire`] — segment formats (TCP SACK acknowledgments, multicast data
//!   and SACKs, rate-controller feedback), following the smoltcp convention
//!   of wire formats in the base crate and behaviour above it.
//! * [`fault`] — Bernoulli packet loss for robustness tests and for the
//!   paper's analytic loss models (figure 2).
//! * [`trace`] — packet-level tracing hooks (queue occupancy time series,
//!   drop records) used by the buffer-period and phase-effect experiments.
//!
//! ## Determinism
//!
//! Integer nanosecond time, FIFO tie-breaking in the calendar, and a single
//! seeded RNG make every run bit-reproducible: the same seed yields the
//! same tables. Experiments average over seeds explicitly.
//!
//! ## Quick example
//!
//! ```
//! use netsim::prelude::*;
//!
//! let mut engine = Engine::new(7);
//! let a = engine.add_node("a");
//! let b = engine.add_node("b");
//! engine.add_link(a, b, 8_000_000, SimDuration::from_millis(10),
//!                 &QueueConfig::paper_droptail());
//! let sink = engine.add_agent(b, Box::new(netsim::agent::Sink::default()));
//! engine.compute_routes();
//! // ... attach senders, start agents, then:
//! engine.run_until(SimTime::from_secs(1));
//! assert_eq!(engine.now(), SimTime::from_secs(1));
//! # let _ = sink;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod arena;
pub mod engine;
pub mod event;
pub mod fault;
pub mod id;
pub mod link;
pub mod node;
pub mod packet;
pub mod queue;
pub mod shard;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wire;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::agent::Agent;
    pub use crate::arena::{PacketArena, PacketHandle};
    pub use crate::engine::{Context, Engine, World};
    pub use crate::fault::FaultInjector;
    pub use crate::id::{AgentId, ChannelId, GroupId, NodeId};
    pub use crate::packet::{Dest, Packet};
    pub use crate::queue::{QueueConfig, RedConfig};
    pub use crate::shard::{BoundaryMsg, DomainMap};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::TraceDigest;
    pub use crate::wire::{SackBlock, SackList, Segment};
}
