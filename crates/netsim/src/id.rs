//! Typed identifiers for simulator entities.
//!
//! All entities live in index-based arenas owned by the engine; these
//! newtypes prevent mixing one arena's indices with another's.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The arena index this id refers to.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A node: a host or a gateway.
    NodeId,
    "n"
);
define_id!(
    /// A directed channel (one direction of a full-duplex link).
    ChannelId,
    "ch"
);
define_id!(
    /// A transport endpoint attached to a node.
    AgentId,
    "a"
);
define_id!(
    /// A multicast group.
    GroupId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let n = NodeId::from(7usize);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{:?}", ChannelId(3)), "ch3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(AgentId(1) < AgentId(2));
        assert_eq!(GroupId(5), GroupId(5));
    }
}
