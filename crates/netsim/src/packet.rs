//! Packets: the unit of everything the simulator moves around.

use crate::id::{AgentId, GroupId};
use crate::time::SimTime;
use crate::wire::Segment;

/// Destination of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Unicast to a specific transport endpoint. The engine routes toward
    /// the node the agent is attached to.
    Agent(AgentId),
    /// Multicast to every member of a group, replicated along the group's
    /// source-based tree.
    Group(GroupId),
}

/// A packet in flight.
///
/// Packets are plain values; the engine moves them through queues and
/// events by value. `uid` is globally unique within a run and is what drop
/// traces and loss detection key on. Since [`Segment`] is `Copy`, a packet
/// is a flat `Copy` value too: arena replication and trace snapshots are
/// pure `memcpy`, and freeing a slot runs no drop glue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Globally unique packet id (assigned by the engine at send time).
    pub uid: u64,
    /// The sending transport endpoint.
    pub src: AgentId,
    /// Where the packet is headed.
    pub dest: Dest,
    /// Total size on the wire, in bytes (headers included).
    pub size_bytes: u32,
    /// Transport payload.
    pub segment: Segment,
    /// When the packet entered the network at its source.
    pub sent_at: SimTime,
}

impl Packet {
    /// Transmission time of this packet over a link of `bandwidth_bps`
    /// bits per second, in nanoseconds.
    pub fn tx_nanos(&self, bandwidth_bps: u64) -> u64 {
        tx_nanos(self.size_bytes, bandwidth_bps)
    }
}

/// Transmission time of `size_bytes` over `bandwidth_bps`, in nanoseconds.
///
/// Uses 128-bit intermediates so that byte counts and multi-gigabit rates
/// never overflow.
pub fn tx_nanos(size_bytes: u32, bandwidth_bps: u64) -> u64 {
    assert!(bandwidth_bps > 0, "zero-bandwidth channel");
    let bits = size_bytes as u128 * 8;
    (bits * 1_000_000_000u128).div_ceil(bandwidth_bps as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_exact() {
        // 1000 B = 8000 bits at 1 Mbps -> 8 ms.
        assert_eq!(tx_nanos(1000, 1_000_000), 8_000_000);
        // 40 B at 100 Mbps -> 3.2 us.
        assert_eq!(tx_nanos(40, 100_000_000), 3_200);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 bit at 3 bps -> ceil(1e9/3) ns.
        assert_eq!(tx_nanos(1, 3), 8_000_000_000u64.div_ceil(3));
    }

    #[test]
    fn tx_time_no_overflow_at_terabit() {
        let n = tx_nanos(u32::MAX, 1_000_000_000_000);
        assert!(n > 0);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_panics() {
        tx_nanos(100, 0);
    }
}
