//! The event calendar: a hierarchical timer wheel with a FIFO-preserving
//! overflow heap.
//!
//! The calendar dispatches events in strict `(time, key)` order. For
//! locally scheduled events the key is `(epoch, 0, seq)` — `seq` is a
//! monotone schedule counter, so same-instant local events fire in
//! insertion (FIFO) order, exactly the classic behaviour. Cross-region
//! boundary arrivals are scheduled with an explicit key
//! `(send epoch, 1, source region, send order)` instead: that places them,
//! at their instant, after every event scheduled up to the send epoch's
//! closing barrier and before everything scheduled later — precisely the
//! position a barrier-batched *(arrival time, source region, send order)*
//! flush would have given them, but without buffering or sorting anything
//! at the barrier. Because the key is a total order independent of
//! insertion sequence, dispatch order is identical at every shard and
//! worker count (see `DESIGN.md` §9).
//!
//! The previous implementation was a binary heap, paying `O(log n)`
//! compares per operation with poor locality; the wheel does `O(1)` bucket
//! pushes and amortizes ordering work into per-slot sorts of a few events
//! each.
//!
//! # Layout
//!
//! Four levels of 64 slots each, with slot widths of 2^10, 2^16, 2^22 and
//! 2^28 ns (~1 µs, ~65 µs, ~4.2 ms, ~268 ms); level *l* spans 64 slots =
//! 2^(10+6·l+6) ns, so the whole wheel covers 2^34 ns ≈ 17 s ahead of the
//! cursor. Events beyond that horizon (long timers, `SimTime::MAX`
//! sentinels) wait in a binary-heap overflow ordered by the same
//! `(time, seq)` key and migrate into the wheel when the cursor
//! approaches.
//!
//! Levels are *absolutely* indexed: level *l* covers the window
//! `[align(cur, span_l), align(cur, span_l) + span_l)` and an event at `t`
//! lives in slot `(t >> shift_l) & 63` of the first level whose window
//! contains `t`. Because the cursor `cur` is always a multiple of the
//! level-0 slot width, each slot holds events of exactly one absolute
//! window — there is no wrap-around ambiguity to resolve at drain time.
//!
//! # Dispatch
//!
//! `cur` splits time: every pending event at `t < cur` sits pre-sorted in
//! the `ready` queue; everything else is in the wheel or the overflow.
//! Refilling `ready` repeatedly takes the earliest occupied slot across
//! levels (occupancy is one bitmap word per level): a level-0 slot is
//! sorted by `(time, key)` and drained into `ready`; a higher-level slot is
//! cascaded down a level; the overflow migrates when its head precedes
//! every occupied slot. Events scheduled below `cur` (an agent scheduling
//! at `now` while its slot is being dispatched, or a boundary arrival
//! landing inside an already-drained slot) are merge-inserted into `ready`
//! at their `(time, key)` position, which keeps the global dispatch order
//! identical to the binary heap's — the digest-equality tests pin exactly
//! that.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::arena::PacketHandle;
use crate::id::{AgentId, ChannelId, NodeId};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
pub enum EventKind {
    /// A channel finished serializing the packet it was transmitting.
    TxComplete {
        /// The transmitting channel.
        channel: ChannelId,
        /// The packet that just left the transmitter.
        packet: PacketHandle,
    },
    /// A packet arrives at a node (after propagation, or injected locally
    /// by an agent on that node).
    Arrive {
        /// The node the packet arrives at.
        node: NodeId,
        /// The arriving packet.
        packet: PacketHandle,
    },
    /// An agent timer expires.
    Timer {
        /// The agent whose timer fires.
        agent: AgentId,
        /// Opaque token the agent registered; stale timers are the agent's
        /// responsibility to ignore.
        token: u64,
    },
    /// An agent's `on_start` hook.
    Start {
        /// The agent to start.
        agent: AgentId,
    },
}

/// Bit layout of the packed `u64` tie-break key. The epoch occupies the
/// high 28 bits, the phase bit sits at 35, and the low 35 bits are
/// phase-specific — a per-epoch schedule counter for locals, a
/// *(region, send order)* pair for boundary arrivals. Cross-phase
/// comparisons resolve on the shared `(epoch, phase)` prefix, so the low
/// layouts never meet. Keeping the key in one word keeps [`Event`] at its
/// pre-partitioning 32 bytes — the wheel's slot sorts and copies are on
/// the engine's hottest path.
const KEY_EPOCH_SHIFT: u32 = 36;
/// Phase bit: 0 = locally scheduled, 1 = boundary arrival of that epoch.
const KEY_PHASE_BIT: u64 = 1 << 35;
/// Bits for the boundary key's per-epoch, per-region send order.
const KEY_SEQ_SHIFT: u32 = 21;

/// Same-instant tie-break key for a locally scheduled event: epoch, phase
/// bit 0, then the calendar's schedule counter *within that epoch*.
/// Within one epoch this is pure insertion (FIFO) order; the counter may
/// reset across epochs because the epoch bits already separate them.
pub fn local_key(epoch: u64, seq: u64) -> u64 {
    debug_assert!(
        epoch < 1 << (64 - KEY_EPOCH_SHIFT),
        "epoch overflows the key"
    );
    assert!(
        seq < KEY_PHASE_BIT,
        "calendar key overflow: 2^35 events scheduled within one θ-grid epoch \
         (or one unpartitioned run)"
    );
    (epoch << KEY_EPOCH_SHIFT) | seq
}

/// Same-instant tie-break key for a cross-region boundary arrival: the
/// *send* epoch, phase bit 1 (after every local event of that epoch,
/// before everything later), then the canonical *(source region, send
/// order within the epoch)* pair. A pure function of the message —
/// independent of which shard inserts it, or when — so dispatch order is
/// identical at every shard and worker count.
pub fn boundary_key(epoch: u64, region: u32, seq: u64) -> u64 {
    debug_assert!(
        epoch < 1 << (64 - KEY_EPOCH_SHIFT),
        "epoch overflows the key"
    );
    assert!(
        (region as u64) < KEY_PHASE_BIT >> KEY_SEQ_SHIFT,
        "calendar key overflow: region id {region} needs more than 14 bits"
    );
    assert!(
        seq < 1 << KEY_SEQ_SHIFT,
        "calendar key overflow: 2^21 boundary sends from one region within one θ-grid epoch"
    );
    (epoch << KEY_EPOCH_SHIFT) | KEY_PHASE_BIT | ((region as u64) << KEY_SEQ_SHIFT) | seq
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Total-order tie-break within the same instant: [`local_key`] for
    /// ordinary schedules, [`boundary_key`] for cross-region arrivals.
    pub key: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, key) pops
        // first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// Number of wheel levels.
const LEVELS: usize = 4;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2(slot width in ns) per level.
const SHIFT: [u32; LEVELS] = [10, 16, 22, 28];

/// Width in nanoseconds of the whole level-`l` window (64 slots).
const fn span(l: usize) -> u64 {
    1 << (SHIFT[l] + SLOT_BITS)
}

/// The future event list: hierarchical timer wheel + overflow heap.
#[derive(Debug)]
pub struct Calendar {
    /// `LEVELS * SLOTS` buckets, indexed `(level << SLOT_BITS) | slot`.
    slots: Vec<Vec<Event>>,
    /// One occupancy bit per slot, per level.
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon, min-ordered by `(time, key)`.
    overflow: BinaryHeap<Event>,
    /// Events already extracted and sorted, all at times `< cur`.
    ready: VecDeque<Event>,
    /// The drain cursor, in ns; always a multiple of the level-0 slot
    /// width. Every pending event below it is in `ready`.
    cur: u64,
    /// Schedule counter within the current epoch (low bits of local
    /// keys); resets when the epoch advances — the epoch bits already
    /// separate the instants' tie groups across epochs.
    next_seq: u64,
    /// The θ-grid epoch currently being executed (high bits of every
    /// locally scheduled event's key). Zero for an unpartitioned run; the
    /// epoch executor advances it at each grid barrier.
    epoch: u64,
    len: usize,
}

impl Default for Calendar {
    fn default() -> Self {
        Calendar {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            cur: 0,
            next_seq: 0,
            epoch: 0,
            len: 0,
        }
    }
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the θ-grid epoch stamped onto subsequently scheduled events'
    /// keys, resetting the per-epoch schedule counter when it actually
    /// advances (a `run_until` stopping mid-epoch re-enters the same
    /// epoch; its counter must continue, not restart). An unpartitioned
    /// run never calls this and gets the classic pure `(time, seq)`
    /// order.
    pub fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(epoch >= self.epoch, "epoch ran backwards");
        assert!(
            epoch < 1 << 28,
            "calendar key overflow: more than 2^28 θ-grid epochs \
             (simulated duration / lookahead is too large)"
        );
        if epoch != self.epoch {
            self.epoch = epoch;
            self.next_seq = 0;
        }
    }

    /// The θ-grid epoch currently stamped onto scheduled events' keys.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Schedule `kind` to fire at `at`, tie-broken by insertion order
    /// within the current epoch.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(Event {
            at,
            key: local_key(self.epoch, seq),
            kind,
        });
    }

    /// Schedule a cross-region boundary arrival, tie-broken by the
    /// canonical *(send epoch, source region, send order)* key — `region`
    /// and `seq` identify the sender's stream; the send epoch is the
    /// calendar's current epoch (the sender transmits and the exchange
    /// delivers within the same grid step). The key is independent of the
    /// insertion path, so direct insertion here lands the arrival exactly
    /// where a barrier-batched sort would have.
    pub fn schedule_boundary(&mut self, at: SimTime, region: u32, seq: u64, kind: EventKind) {
        self.insert(Event {
            at,
            key: boundary_key(self.epoch, region, seq),
            kind,
        });
    }

    fn insert(&mut self, e: Event) {
        self.len += 1;
        if e.at.as_nanos() < self.cur {
            // The slot covering `at` has already been drained: merge into
            // `ready` at the event's `(time, key)` position — exactly
            // where the heap would have popped it. (A boundary arrival's
            // key can precede same-instant events already drained, so the
            // full key participates, not just the time.)
            let pos = self
                .ready
                .partition_point(|x| (x.at, x.key) <= (e.at, e.key));
            self.ready.insert(pos, e);
        } else {
            self.place(e);
        }
    }

    /// File an event at `t >= cur` into the first level whose current
    /// window contains it, or the overflow past the horizon.
    fn place(&mut self, e: Event) {
        let t = e.at.as_nanos();
        debug_assert!(t >= self.cur, "place() below the cursor");
        for (l, &shift) in SHIFT.iter().enumerate() {
            let base = self.cur & !(span(l) - 1);
            if t - base < span(l) {
                let slot = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
                self.slots[(l << SLOT_BITS) | slot].push(e);
                self.occupied[l] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(e);
    }

    /// The earliest occupied slot at or after the cursor: `(level, window
    /// start in ns)`. Ties between levels go to the *higher* level so
    /// cascades happen before drains of the same instant.
    fn earliest_slot(&self) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (l, &shift) in SHIFT.iter().enumerate() {
            let occ = self.occupied[l];
            if occ == 0 {
                continue;
            }
            let i_cur = (self.cur >> shift) & (SLOTS as u64 - 1);
            let masked = occ & !((1u64 << i_cur) - 1);
            debug_assert!(masked != 0, "occupied slot behind the cursor");
            let slot = masked.trailing_zeros() as u64;
            let base = self.cur & !(span(l) - 1);
            let start = base | (slot << shift);
            if best.is_none_or(|(_, s)| start <= s) {
                best = Some((l, start));
            }
        }
        best
    }

    /// Move events into `ready` until it can serve the next event, without
    /// committing the cursor past `deadline`'s slot. Returns `false` when
    /// nothing is pending at or before `deadline`.
    fn refill(&mut self, deadline: SimTime) -> bool {
        loop {
            if let Some(front) = self.ready.front() {
                return front.at <= deadline;
            }
            let best = self.earliest_slot();
            // Migrate the overflow when its head precedes (or ties) every
            // occupied slot: the head's events may belong in that slot.
            if let Some(head) = self.overflow.peek() {
                let t = head.at.as_nanos();
                if best.is_none_or(|(_, start)| t <= start) {
                    if head.at > deadline {
                        return false;
                    }
                    // Jump the cursor to the head's level-0 slot (no wheel
                    // event lies below it), then pull everything now within
                    // the top-level window into the wheel.
                    self.cur = self.cur.max(t & !((1 << SHIFT[0]) - 1));
                    let top_base = self.cur & !(span(LEVELS - 1) - 1);
                    while let Some(head) = self.overflow.peek() {
                        if head.at.as_nanos() - top_base < span(LEVELS - 1) {
                            let e = self.overflow.pop().expect("peeked event vanished");
                            self.place(e);
                        } else {
                            break;
                        }
                    }
                    continue;
                }
            }
            let Some((l, start)) = best else {
                return false; // calendar empty
            };
            if SimTime::from_nanos(start) > deadline {
                return false; // next event past the deadline; don't commit
            }
            let slot = ((start >> SHIFT[l]) & (SLOTS as u64 - 1)) as usize;
            let idx = (l << SLOT_BITS) | slot;
            let mut bucket = std::mem::take(&mut self.slots[idx]);
            self.occupied[l] &= !(1 << slot);
            if l == 0 {
                // Drain: this slot's window is fully behind the new cursor
                // (saturating only at the `SimTime::MAX` sentinel slot).
                self.cur = start.saturating_add(1 << SHIFT[0]);
                // Sweep overflow events that fall strictly *inside* this
                // slot's window into the same drain. The migration check
                // above only catches heads at or before the slot *start*
                // (`t <= start`); a head inside the window would otherwise
                // sit out the drain and end up stranded below the cursor.
                while let Some(head) = self.overflow.peek() {
                    if head.at.as_nanos() < self.cur {
                        let e = self.overflow.pop().expect("peeked event vanished");
                        bucket.push(e);
                    } else {
                        break;
                    }
                }
                bucket.sort_unstable_by_key(|e| (e.at, e.key));
                self.ready.extend(bucket.drain(..));
            } else {
                // Cascade one slot down a level. Each event lands at level
                // < l because the slot's window is exactly one level-(l-1)
                // window.
                self.cur = self.cur.max(start);
                for e in bucket.drain(..) {
                    self.place(e);
                }
            }
            // Hand the (now empty) buffer back so its capacity is reused.
            self.slots[idx] = bucket;
        }
    }

    /// Remove and return the next event if it fires at or before
    /// `deadline`, in (time, insertion) order.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        if !self.refill(deadline) {
            return None;
        }
        self.len -= 1;
        self.ready.pop_front()
    }

    /// Remove and return the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<Event> {
        self.pop_before(SimTime::MAX)
    }

    /// The firing time of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.refill(SimTime::MAX) {
            return None;
        }
        self.ready.front().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The previous binary-heap calendar, kept as the *reference
/// implementation*: property tests check that the wheel dispatches in
/// exactly this order, and the engine bench compares both.
#[derive(Debug, Default)]
pub struct HeapCalendar {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl HeapCalendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            key: local_key(0, seq),
            kind,
        });
    }

    /// Remove and return the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Remove and return the next event if it fires at or before
    /// `deadline` (API parity with [`Calendar`]).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<Event> {
        if self.heap.peek().is_some_and(|e| e.at <= deadline) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// The firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(agent: u32, token: u64) -> EventKind {
        EventKind::Timer {
            agent: AgentId(agent),
            token,
        }
    }

    fn token_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), timer(0, 3));
        cal.schedule(SimTime::from_secs(1), timer(0, 1));
        cal.schedule(SimTime::from_secs(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for token in 0..100 {
            cal.schedule(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::from_secs(5), timer(0, 0));
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(cal.len(), 1);
        let e = cal.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(5));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn matches_heap_reference_on_mixed_schedule() {
        // Times spanning every wheel level and the overflow, with repeats.
        let times: Vec<u64> = (0..500)
            .map(|i: u64| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (1 << 38))
            .chain((0..50).map(|i| i % 7)) // clustered near zero
            .chain(std::iter::repeat_n(123_456_789, 20)) // heavy tie
            .collect();
        let mut wheel = Calendar::new();
        let mut heap = HeapCalendar::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(t), timer(0, i as u64));
            heap.schedule(SimTime::from_nanos(t), timer(0, i as u64));
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.at, a.key), (b.at, b.key));
                }
                _ => panic!("wheel and heap disagree on event count"),
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_preserves_order() {
        // Schedule while draining, including events at the exact time of
        // the event just popped (the "agent schedules at now" pattern).
        let mut cal = Calendar::new();
        for i in 0..10u64 {
            cal.schedule(SimTime::from_nanos(i * 100), timer(0, i));
        }
        let mut seen = Vec::new();
        let mut extra = 100u64;
        while let Some(e) = cal.pop() {
            seen.push((e.at, e.key));
            if extra < 105 {
                // At `now` — lands below the cursor, merged into ready.
                cal.schedule(e.at, timer(0, extra));
                // Slightly later.
                cal.schedule(
                    e.at + crate::time::SimDuration::from_nanos(37),
                    timer(0, extra + 50),
                );
                extra += 1;
            }
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "dispatch order must be (time, key)");
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn boundary_keys_order_by_epoch_phase_region_and_send_order() {
        // Locals of epoch k < boundary arrivals sent in epoch k (ordered
        // by (region, send order) regardless of insertion sequence) <
        // locals of epoch k+1 — all at the same instant.
        let t = SimTime::from_nanos(5_000);
        let mut cal = Calendar::new();
        cal.set_epoch(1);
        cal.schedule(t, timer(0, 10)); // epoch-1 local
        cal.schedule(t, timer(0, 11)); // epoch-1 local
                                       // Exchange at epoch 1's barrier: arrivals inserted out of
                                       // canonical order (higher region first).
        cal.schedule_boundary(t, 7, 0, timer(0, 22));
        cal.schedule_boundary(t, 3, 1, timer(0, 21));
        cal.schedule_boundary(t, 3, 0, timer(0, 20));
        cal.set_epoch(2);
        cal.schedule(t, timer(0, 30)); // epoch-2 local
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, vec![10, 11, 20, 21, 22, 30]);
    }

    #[test]
    fn boundary_arrival_below_the_cursor_merges_at_its_key_position() {
        // Draining a slot can advance the cursor past an arrival's
        // instant; the merge into `ready` must honour the full key, not
        // just the time — a second arrival from a lower region lands
        // *before* the first even though it is inserted later.
        let mut cal = Calendar::new();
        cal.set_epoch(1);
        cal.schedule(SimTime::from_nanos(10_000), timer(0, 1));
        cal.schedule(SimTime::from_nanos(10_050), timer(0, 2));
        // Both share a level-0 slot: popping the first drains the second
        // into `ready` and commits the cursor past 10_050.
        assert_eq!(token_of(&cal.pop().unwrap()), 1);
        cal.schedule_boundary(SimTime::from_nanos(10_050), 5, 0, timer(0, 4));
        cal.schedule_boundary(SimTime::from_nanos(10_050), 2, 0, timer(0, 3));
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, vec![2, 3, 4]);
    }

    #[test]
    fn far_future_sentinel_stays_in_overflow() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::MAX, timer(0, 99));
        cal.schedule(SimTime::from_nanos(5), timer(0, 1));
        // A bounded pop must not chase the sentinel.
        let e = cal.pop_before(SimTime::from_secs(1)).unwrap();
        assert_eq!(token_of(&e), 1);
        assert!(cal.pop_before(SimTime::from_secs(1)).is_none());
        // Scheduling after the bounded pop still dispatches in order.
        cal.schedule(SimTime::from_nanos(7), timer(0, 2));
        assert_eq!(token_of(&cal.pop_before(SimTime::from_secs(1)).unwrap()), 2);
        assert_eq!(cal.len(), 1);
        // The sentinel is still reachable with an unbounded pop.
        assert_eq!(token_of(&cal.pop().unwrap()), 99);
        assert!(cal.is_empty());
    }

    #[test]
    fn overflow_head_inside_a_draining_slot_is_swept_into_it() {
        // Regression: an overflow event strictly *inside* the earliest
        // level-0 slot's window (`slot_start < t < slot_start + 1024`)
        // used to sit out that slot's drain — the migration check only
        // compares against the slot *start* — leaving it stranded below
        // the cursor and tripping `place()` on the next migration.
        let top = span(LEVELS - 1); // the wheel horizon
        let mut cal = Calendar::new();
        // Beyond the horizon from t=0: lives in the overflow heap.
        cal.schedule(SimTime::from_nanos(2 * top + 500), timer(0, 4));
        // Stepping stones that walk the cursor up to exactly `2 * top`
        // without a migration window ever covering the overflow event.
        cal.schedule(SimTime::from_nanos(top + 2048), timer(0, 1));
        assert_eq!(token_of(&cal.pop().unwrap()), 1);
        cal.schedule(SimTime::from_nanos(2 * top - 1000), timer(0, 2));
        assert_eq!(token_of(&cal.pop().unwrap()), 2); // cur lands on 2*top
                                                      // Same level-0 slot as the overflow event, 100ns earlier: its
                                                      // drain commits the cursor past the overflow head.
        cal.schedule(SimTime::from_nanos(2 * top + 400), timer(0, 3));
        assert_eq!(token_of(&cal.pop().unwrap()), 3);
        assert_eq!(token_of(&cal.pop().unwrap()), 4); // swept, in order
        assert!(cal.is_empty());
    }

    #[test]
    fn pop_before_respects_deadline_exactly() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_nanos(1000), timer(0, 1));
        assert!(cal.pop_before(SimTime::from_nanos(999)).is_none());
        assert!(cal.pop_before(SimTime::from_nanos(1000)).is_some());
    }
}
