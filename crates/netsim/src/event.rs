//! The event calendar: a deterministic priority queue of future events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::id::{AgentId, ChannelId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A channel finished serializing the packet it was transmitting.
    TxComplete {
        /// The transmitting channel.
        channel: ChannelId,
        /// The packet that just left the transmitter.
        packet: Packet,
    },
    /// A packet arrives at a node (after propagation, or injected locally
    /// by an agent on that node).
    Arrive {
        /// The node the packet arrives at.
        node: NodeId,
        /// The arriving packet.
        packet: Packet,
    },
    /// An agent timer expires.
    Timer {
        /// The agent whose timer fires.
        agent: AgentId,
        /// Opaque token the agent registered; stale timers are the agent's
        /// responsibility to ignore.
        token: u64,
    },
    /// An agent's `on_start` hook.
    Start {
        /// The agent to start.
        agent: AgentId,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number breaking ties deterministically: events
    /// scheduled first fire first within the same instant.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The future event list.
#[derive(Debug, Default)]
pub struct Calendar {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the next event in (time, insertion) order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The firing time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(agent: u32, token: u64) -> EventKind {
        EventKind::Timer {
            agent: AgentId(agent),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(3), timer(0, 3));
        cal.schedule(SimTime::from_secs(1), timer(0, 1));
        cal.schedule(SimTime::from_secs(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for token in 0..100 {
            cal.schedule(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(SimTime::from_secs(5), timer(0, 0));
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(cal.len(), 1);
        let e = cal.pop().unwrap();
        assert_eq!(e.at, SimTime::from_secs(5));
        assert!(cal.pop().is_none());
    }
}
