//! The transport-endpoint abstraction.
//!
//! An [`Agent`] is a protocol state machine attached to a node: a TCP
//! sender, a multicast receiver, a rate controller. The engine drives it
//! through three callbacks, and the agent acts on the world only through
//! the [`Context`] it is handed — no interior
//! mutability, no back-references, so the borrow checker and determinism
//! are both satisfied.

use std::any::Any;

use crate::engine::Context;
use crate::packet::Packet;

/// A transport endpoint.
///
/// `Send` is part of the contract: the domain-partitioned executor moves
/// each domain's agents to a worker thread for the duration of an epoch.
/// Agents own their state outright (no `Rc`, no references into the
/// world), so this costs implementations nothing.
pub trait Agent: Any + Send {
    /// Called once when the agent's start event fires. Open the window,
    /// arm timers, send the first packets.
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// A packet addressed to this agent (or to a group it joined) arrived.
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>);

    /// A timer set through [`Context::set_timer`](crate::engine::Context::set_timer)
    /// fired. `token` is whatever the agent registered; agents that re-arm
    /// timers must ignore stale tokens themselves.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Context<'_>) {}

    /// Downcasting hook so experiments can read protocol-specific
    /// statistics after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting hook.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A do-nothing endpoint: a packet sink. Useful as a placeholder and for
/// engine tests.
#[derive(Debug, Default)]
pub struct Sink {
    /// Packets delivered to this sink.
    pub received: u64,
    /// Bytes delivered to this sink.
    pub bytes: u64,
}

impl Agent for Sink {
    fn on_packet(&mut self, packet: Packet, _ctx: &mut Context<'_>) {
        self.received += 1;
        self.bytes += packet.size_bytes as u64;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
