//! Directed channels: one direction of a full-duplex link.
//!
//! A full-duplex link between two nodes is modelled as two independent
//! [`Channel`]s, each with its own transmitter and buffer, so that reverse
//! ACK traffic is simulated through real queues rather than assumed free.

use crate::fault::FaultInjector;
use crate::id::{ChannelId, NodeId};
use crate::queue::{QueueConfig, QueueDiscipline};
use crate::stats::ChannelStats;
use crate::time::SimDuration;

/// A unidirectional transmission channel with a finite buffer.
#[derive(Debug)]
pub struct Channel {
    /// This channel's id.
    pub id: ChannelId,
    /// Upstream endpoint (packets enter here).
    pub from: NodeId,
    /// Downstream endpoint (packets arrive here after transmission and
    /// propagation).
    pub to: NodeId,
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// The output buffer discipline (drop-tail or RED).
    pub queue: Box<dyn QueueDiscipline>,
    /// `true` while the transmitter is serializing a packet.
    pub busy: bool,
    /// Optional random packet discard.
    pub fault: Option<FaultInjector>,
    /// Collected statistics.
    pub stats: ChannelStats,
}

impl Channel {
    /// Build a channel from `from` to `to`.
    pub fn new(
        id: ChannelId,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> Self {
        assert!(bandwidth_bps > 0, "channel bandwidth must be positive");
        Channel {
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            queue: queue_cfg.build(),
            busy: false,
            fault: None,
            stats: ChannelStats::default(),
        }
    }

    /// Service time of one `size_bytes` packet on this channel.
    pub fn service_time(&self, size_bytes: u32) -> SimDuration {
        SimDuration::from_nanos(crate::packet::tx_nanos(size_bytes, self.bandwidth_bps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_matches_bandwidth() {
        let ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000, // 100 kB/s
            SimDuration::from_millis(5),
            &QueueConfig::paper_droptail(),
        );
        // 1000 B = 8000 bits at 800 kbps -> 10 ms.
        assert_eq!(ch.service_time(1000), SimDuration::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            0,
            SimDuration::ZERO,
            &QueueConfig::paper_droptail(),
        );
    }
}
