//! Directed channels: one direction of a full-duplex link.
//!
//! A full-duplex link between two nodes is modelled as two independent
//! [`Channel`]s, each with its own transmitter and buffer, so that reverse
//! ACK traffic is simulated through real queues rather than assumed free.

use crate::fault::FaultInjector;
use crate::id::{ChannelId, NodeId};
use crate::queue::{QueueConfig, QueueDiscipline};
use crate::stats::ChannelStats;
use crate::time::SimDuration;

/// A unidirectional transmission channel with a finite buffer.
#[derive(Debug)]
pub struct Channel {
    /// This channel's id.
    pub id: ChannelId,
    /// Upstream endpoint (packets enter here).
    pub from: NodeId,
    /// Downstream endpoint (packets arrive here after transmission and
    /// propagation).
    pub to: NodeId,
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// The output buffer discipline (drop-tail or RED).
    pub queue: Box<dyn QueueDiscipline>,
    /// `true` while the transmitter is serializing a packet.
    pub busy: bool,
    /// Optional random packet discard.
    pub fault: Option<FaultInjector>,
    /// Collected statistics.
    pub stats: ChannelStats,
    /// The bandwidth the channel was constructed with; [`Channel::restore`]
    /// returns to this value whatever overrides a degrade applied.
    pub base_bandwidth_bps: u64,
    /// `true` while a [`Channel::degrade`] override is in effect.
    pub degraded: bool,
}

impl Channel {
    /// Build a channel from `from` to `to`.
    pub fn new(
        id: ChannelId,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> Self {
        assert!(bandwidth_bps > 0, "channel bandwidth must be positive");
        Channel {
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            queue: queue_cfg.build(),
            busy: false,
            fault: None,
            stats: ChannelStats::default(),
            base_bandwidth_bps: bandwidth_bps,
            degraded: false,
        }
    }

    /// Service time of one `size_bytes` packet on this channel.
    pub fn service_time(&self, size_bytes: u32) -> SimDuration {
        SimDuration::from_nanos(crate::packet::tx_nanos(size_bytes, self.bandwidth_bps))
    }

    /// Degrade the channel in place: inject `loss` (a probability in
    /// `0.0..=1.0`; `0.0` installs no fault injector, so a pure bandwidth
    /// override perturbs no RNG draws) and optionally cap the bandwidth at
    /// `bandwidth_bps`. Degrading an already-degraded channel replaces the
    /// previous override — the eventual [`Channel::restore`] still returns
    /// to the construction-time bandwidth. Drops caused by the injected
    /// loss accumulate in [`ChannelStats::fault_drops`] across repeated
    /// degrade/restore cycles.
    pub fn degrade(&mut self, loss: f64, bandwidth_bps: Option<u64>) {
        assert!(
            (0.0..=1.0).contains(&loss),
            "injected loss rate {loss} outside 0.0..=1.0"
        );
        self.fault = (loss > 0.0).then(|| FaultInjector::new(loss));
        if let Some(bw) = bandwidth_bps {
            assert!(bw > 0, "degraded bandwidth must be positive");
            self.bandwidth_bps = bw;
        }
        self.degraded = true;
    }

    /// Undo a [`Channel::degrade`]: remove the fault injector and return
    /// the bandwidth to its construction-time value. Panics when the
    /// channel is not degraded — a restore with no matching degrade is a
    /// schedule bug, not a no-op.
    pub fn restore(&mut self) {
        assert!(
            self.degraded,
            "restore on a channel that is not degraded — degrade it first"
        );
        self.fault = None;
        self.bandwidth_bps = self.base_bandwidth_bps;
        self.degraded = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_matches_bandwidth() {
        let ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000, // 100 kB/s
            SimDuration::from_millis(5),
            &QueueConfig::paper_droptail(),
        );
        // 1000 B = 8000 bits at 800 kbps -> 10 ms.
        assert_eq!(ch.service_time(1000), SimDuration::from_millis(10));
    }

    #[test]
    fn degrade_and_restore_round_trip_bandwidth_and_fault() {
        let mut ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000,
            SimDuration::from_millis(5),
            &QueueConfig::paper_droptail(),
        );
        ch.degrade(0.05, Some(400_000));
        assert!(ch.degraded);
        assert!(ch.fault.is_some());
        assert_eq!(ch.bandwidth_bps, 400_000);
        // Re-degrading replaces the override; restore still returns to the
        // construction-time bandwidth.
        ch.degrade(0.5, Some(200_000));
        assert_eq!(ch.bandwidth_bps, 200_000);
        ch.restore();
        assert!(!ch.degraded);
        assert!(ch.fault.is_none());
        assert_eq!(ch.bandwidth_bps, 800_000);
    }

    #[test]
    fn zero_loss_degrade_installs_no_fault_injector() {
        let mut ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000,
            SimDuration::ZERO,
            &QueueConfig::paper_droptail(),
        );
        ch.degrade(0.0, Some(100_000));
        assert!(ch.fault.is_none(), "0% loss must not perturb the RNG");
        assert_eq!(ch.bandwidth_bps, 100_000);
        ch.restore();
        assert_eq!(ch.bandwidth_bps, 800_000);
    }

    #[test]
    fn full_loss_degrade_is_accepted() {
        let mut ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000,
            SimDuration::ZERO,
            &QueueConfig::paper_droptail(),
        );
        ch.degrade(1.0, None);
        assert!(ch.fault.is_some());
        assert_eq!(ch.bandwidth_bps, 800_000);
    }

    #[test]
    #[should_panic(expected = "not degraded")]
    fn restore_without_degrade_panics() {
        let mut ch = Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            800_000,
            SimDuration::ZERO,
            &QueueConfig::paper_droptail(),
        );
        ch.restore();
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        Channel::new(
            ChannelId(0),
            NodeId(0),
            NodeId(1),
            0,
            SimDuration::ZERO,
            &QueueConfig::paper_droptail(),
        );
    }
}
