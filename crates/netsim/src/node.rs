//! Nodes: hosts and gateways, with unicast routing tables.

use crate::id::{ChannelId, NodeId};

/// A network node. Gateways forward; hosts additionally terminate agents
/// (the distinction is informational — any node may do both).
#[derive(Debug)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Human-readable label (e.g. `"G21"`, `"R14"` in the paper's tree).
    pub name: String,
    /// Outgoing channels attached to this node.
    pub out_channels: Vec<ChannelId>,
    /// Unicast next-hop table, indexed by destination node: the outgoing
    /// channel to use. `None` for unreachable destinations (and self).
    pub routes: Vec<Option<ChannelId>>,
}

impl Node {
    /// A new node with empty routing state.
    pub fn new(id: NodeId, name: impl Into<String>) -> Self {
        Node {
            id,
            name: name.into(),
            out_channels: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// The next-hop channel toward `dst`, if any.
    pub fn route_to(&self, dst: NodeId) -> Option<ChannelId> {
        self.routes.get(dst.index()).copied().flatten()
    }
}

/// Multicast group state: the source-based distribution tree and receiver
/// membership, both indexed by node.
#[derive(Debug, Default)]
pub struct Group {
    /// The tree root (the sender's node), once built.
    pub root: Option<NodeId>,
    /// Per node: channels the group's packets are replicated onto.
    pub forward: Vec<Vec<ChannelId>>,
    /// Per node: locally attached member agents to deliver to.
    pub members_at: Vec<Vec<crate::id::AgentId>>,
    /// All member agents of the group.
    pub members: Vec<crate::id::AgentId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_lookup_handles_missing_entries() {
        let mut n = Node::new(NodeId(0), "S");
        n.routes = vec![None, Some(ChannelId(3))];
        assert_eq!(n.route_to(NodeId(1)), Some(ChannelId(3)));
        assert_eq!(n.route_to(NodeId(0)), None);
        assert_eq!(n.route_to(NodeId(9)), None, "out of range is unreachable");
    }
}
