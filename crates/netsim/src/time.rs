//! Simulated time.
//!
//! The simulator uses an integer clock with nanosecond resolution. Integer
//! time keeps the event order fully deterministic: two runs with the same
//! seed produce bit-identical schedules, which the reproduction relies on
//! (the paper's tables are long averages, and we want them re-runnable).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" timer.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative simulation time");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative duration");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply the span by a non-negative float (used for window-scaled
    /// thresholds such as the forced-cut interval `2 * awnd * srtt`).
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "negative duration factor");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_millis(250);
        assert_eq!(d.as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_nanos(), 2_500_000_000);
        assert_eq!((t - d).as_nanos(), 1_500_000_000);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
        assert_eq!(t.checked_since(t + d), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(2.5).as_nanos(), 2_500_000_000);
        assert_eq!((d * 3).as_nanos(), 3_000_000_000);
        assert_eq!((d / 4).as_nanos(), 250_000_000);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
