//! Event tracing hooks.
//!
//! A [`Tracer`] observes packet-level events as the engine processes them —
//! the simulator's analogue of smoltcp's pcap dumps (and the hook the
//! `telemetry` crate's actual pcap exporter hangs off). Experiments use it
//! to record queue-occupancy time series via `telemetry`'s
//! `QueueSeriesTracer` (the paper's "buffer period" analysis), drop
//! patterns (the phase-effect demonstration), and packet captures.

use crate::id::{AgentId, ChannelId, NodeId};
use crate::packet::Packet;
use crate::queue::DropReason;
use crate::time::SimTime;

/// A packet-level event visible to tracers.
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A packet was accepted into a channel buffer; `qlen` is the length
    /// after insertion.
    Enqueue {
        /// The channel whose buffer accepted the packet.
        channel: ChannelId,
        /// The accepted packet.
        packet: &'a Packet,
        /// Buffer occupancy after insertion.
        qlen: usize,
    },
    /// A packet was discarded at a channel.
    Drop {
        /// The dropping channel.
        channel: ChannelId,
        /// The discarded packet.
        packet: &'a Packet,
        /// Why it was discarded.
        reason: DropReason,
        /// Buffer occupancy at the time of the drop.
        qlen: usize,
    },
    /// A channel began serializing a packet; `qlen` is the length after the
    /// packet left the buffer.
    TxStart {
        /// The transmitting channel.
        channel: ChannelId,
        /// The packet being transmitted.
        packet: &'a Packet,
        /// Buffer occupancy after removal.
        qlen: usize,
    },
    /// A packet arrived at a node (after propagation).
    Arrive {
        /// The node reached.
        node: NodeId,
        /// The arriving packet.
        packet: &'a Packet,
    },
    /// A packet was handed to a transport endpoint.
    Deliver {
        /// The receiving agent.
        agent: AgentId,
        /// The delivered packet.
        packet: &'a Packet,
    },
}

/// Observer of engine events.
pub trait Tracer {
    /// Called for every traced event, in simulation order.
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>);
}

/// Order-sensitive 64-bit digest of the packet-event stream, plus
/// per-kind counters.
///
/// Every event the engine processes — enqueue, drop, transmission start,
/// node arrival, agent delivery — is folded into a running 64-bit hash
/// together with its timestamp, the id it happened at, the packet uid,
/// and (where meaningful) the queue length. Two runs with equal digests
/// processed the same events in the same order at the same simulated
/// times: the digest is a whole-run fingerprint cheap enough (a couple of
/// multiplies per event, no allocation) to leave on unconditionally.
///
/// The engine maintains one of these for every run (see
/// [`crate::engine::Engine::trace_digest`]); it can also be installed as
/// a standalone [`Tracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    hash: u64,
    /// Packets accepted into buffers.
    pub enqueues: u64,
    /// Packets discarded (any [`DropReason`]).
    pub drops: u64,
    /// Transmissions started.
    pub tx_starts: u64,
    /// Node arrivals.
    pub arrivals: u64,
    /// Agent deliveries.
    pub deliveries: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            // FNV-1a 64-bit offset basis: a fixed, documented start state.
            hash: 0xcbf2_9ce4_8422_2325,
            enqueues: 0,
            drops: 0,
            tx_starts: 0,
            arrivals: 0,
            deliveries: 0,
        }
    }
}

impl TraceDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.hash
    }

    /// The digest as the canonical 16-hex-digit string used in run
    /// manifests.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// Total events folded in, across all kinds.
    pub fn events(&self) -> u64 {
        self.enqueues + self.drops + self.tx_starts + self.arrivals + self.deliveries
    }

    /// Fold one word into the running hash (order-sensitive).
    fn mix(&mut self, word: u64) {
        let mut h = self.hash ^ word;
        h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.hash = h;
    }

    fn fold(&mut self, kind: u64, now: SimTime, id: u64, uid: u64, aux: u64) {
        self.mix(kind);
        self.mix(now.as_nanos());
        self.mix(id);
        self.mix(uid);
        self.mix(aux);
    }

    /// Fold a packet accepted into `channel`'s buffer.
    pub fn record_enqueue(&mut self, now: SimTime, channel: ChannelId, uid: u64, qlen: usize) {
        self.enqueues += 1;
        self.fold(1, now, channel.index() as u64, uid, qlen as u64);
    }

    /// Fold a packet discarded at `channel`.
    pub fn record_drop(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        uid: u64,
        reason: DropReason,
        qlen: usize,
    ) {
        self.drops += 1;
        let tag = match reason {
            DropReason::BufferOverflow => 0,
            DropReason::EarlyDrop => 1,
            DropReason::ForcedDrop => 2,
            DropReason::Fault => 3,
        };
        self.fold(
            2 | (tag << 8),
            now,
            channel.index() as u64,
            uid,
            qlen as u64,
        );
    }

    /// Fold the start of a transmission on `channel`.
    pub fn record_tx_start(&mut self, now: SimTime, channel: ChannelId, uid: u64, qlen: usize) {
        self.tx_starts += 1;
        self.fold(3, now, channel.index() as u64, uid, qlen as u64);
    }

    /// Fold a packet arrival at `node`.
    pub fn record_arrive(&mut self, now: SimTime, node: NodeId, uid: u64) {
        self.arrivals += 1;
        self.fold(4, now, node.index() as u64, uid, 0);
    }

    /// Fold a packet delivery to `agent`.
    pub fn record_deliver(&mut self, now: SimTime, agent: AgentId, uid: u64) {
        self.deliveries += 1;
        self.fold(5, now, agent.index() as u64, uid, 0);
    }

    /// Fold another digest into this one: counters add, and the other's
    /// hash is mixed into the running hash. Order-sensitive — the
    /// domain-partitioned engine absorbs per-domain digests in domain
    /// order, making the merged value a pure function of the ordered
    /// per-domain streams (and so identical at every worker count).
    pub fn absorb(&mut self, other: &TraceDigest) {
        self.mix(other.hash);
        self.enqueues += other.enqueues;
        self.drops += other.drops;
        self.tx_starts += other.tx_starts;
        self.arrivals += other.arrivals;
        self.deliveries += other.deliveries;
    }
}

impl Tracer for TraceDigest {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue {
                channel,
                packet,
                qlen,
            } => self.record_enqueue(now, *channel, packet.uid, *qlen),
            TraceEvent::Drop {
                channel,
                packet,
                reason,
                qlen,
            } => self.record_drop(now, *channel, packet.uid, *reason, *qlen),
            TraceEvent::TxStart {
                channel,
                packet,
                qlen,
            } => self.record_tx_start(now, *channel, packet.uid, *qlen),
            TraceEvent::Arrive { node, packet } => self.record_arrive(now, *node, packet.uid),
            TraceEvent::Deliver { agent, packet } => self.record_deliver(now, *agent, packet.uid),
        }
    }
}

/// A tracer that counts events by kind — useful in tests and as a cheap
/// activity summary.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Packets accepted into buffers.
    pub enqueues: u64,
    /// Packets discarded.
    pub drops: u64,
    /// Transmissions started.
    pub tx_starts: u64,
    /// Node arrivals.
    pub arrivals: u64,
    /// Agent deliveries.
    pub deliveries: u64,
}

impl Tracer for CountingTracer {
    fn trace(&mut self, _now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue { .. } => self.enqueues += 1,
            TraceEvent::Drop { .. } => self.drops += 1,
            TraceEvent::TxStart { .. } => self.tx_starts += 1,
            TraceEvent::Arrive { .. } => self.arrivals += 1,
            TraceEvent::Deliver { .. } => self.deliveries += 1,
        }
    }
}

/// A tracer that renders every event as one human-readable line — the
/// simulator's analogue of a `tcpdump`/pcap text dump. Useful for
/// debugging protocol behaviour on small scenarios; on paper-scale runs
/// it produces millions of lines, so keep it to short intervals.
#[derive(Debug, Default)]
pub struct LogTracer {
    /// The rendered lines, in simulation order.
    pub lines: Vec<String>,
    /// Maximum number of lines to retain (0 = unbounded). Oldest lines
    /// are dropped first.
    pub max_lines: usize,
}

impl LogTracer {
    /// A tracer retaining at most `max_lines` lines (0 = unbounded).
    pub fn new(max_lines: usize) -> Self {
        LogTracer {
            lines: Vec::new(),
            max_lines,
        }
    }

    /// The whole log as one string.
    pub fn dump(&self) -> String {
        self.lines.join("\n")
    }

    fn push(&mut self, line: String) {
        if self.max_lines > 0 && self.lines.len() >= self.max_lines {
            self.lines.remove(0);
        }
        self.lines.push(line);
    }
}

impl Tracer for LogTracer {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        let line = match event {
            TraceEvent::Enqueue {
                channel,
                packet,
                qlen,
            } => format!(
                "{now} {channel} enqueue uid={} {} from {} (q={qlen})",
                packet.uid,
                packet.segment.kind_str(),
                packet.src
            ),
            TraceEvent::Drop {
                channel,
                packet,
                reason,
                qlen,
            } => format!(
                "{now} {channel} DROP    uid={} {} from {} ({reason:?}, q={qlen})",
                packet.uid,
                packet.segment.kind_str(),
                packet.src
            ),
            TraceEvent::TxStart {
                channel,
                packet,
                qlen,
            } => format!(
                "{now} {channel} tx      uid={} {} (q={qlen})",
                packet.uid,
                packet.segment.kind_str()
            ),
            TraceEvent::Arrive { node, packet } => format!(
                "{now} {node} arrive  uid={} {}",
                packet.uid,
                packet.segment.kind_str()
            ),
            TraceEvent::Deliver { agent, packet } => format!(
                "{now} {agent} deliver uid={} {}",
                packet.uid,
                packet.segment.kind_str()
            ),
        };
        self.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;
    use crate::packet::Dest;
    use crate::wire::Segment;

    fn pkt() -> Packet {
        Packet {
            uid: 1,
            src: AgentId(0),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 1000,
            segment: Segment::Raw,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        let p = pkt();
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Enqueue {
                channel: ChannelId(0),
                packet: &p,
                qlen: 1,
            },
        );
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Drop {
                channel: ChannelId(0),
                packet: &p,
                reason: DropReason::BufferOverflow,
                qlen: 1,
            },
        );
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Deliver {
                agent: AgentId(1),
                packet: &p,
            },
        );
        assert_eq!((t.enqueues, t.drops, t.deliveries), (1, 1, 1));
    }

    #[test]
    fn log_tracer_renders_and_caps() {
        let mut t = LogTracer::new(2);
        let p = pkt();
        for i in 0..3 {
            t.trace(
                SimTime::from_secs(i),
                &TraceEvent::Arrive {
                    node: NodeId(0),
                    packet: &p,
                },
            );
        }
        assert_eq!(t.lines.len(), 2, "cap enforced");
        assert!(t.dump().contains("arrive"));
        assert!(t.dump().contains("raw"));
        // Oldest line (t=0s) dropped.
        assert!(!t.lines[0].starts_with("0.000000s"));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let p = pkt();
        let enq = TraceEvent::Enqueue {
            channel: ChannelId(0),
            packet: &p,
            qlen: 1,
        };
        let arr = TraceEvent::Arrive {
            node: NodeId(3),
            packet: &p,
        };
        let mut ab = TraceDigest::new();
        ab.trace(SimTime::from_secs(1), &enq);
        ab.trace(SimTime::from_secs(1), &arr);
        let mut ba = TraceDigest::new();
        ba.trace(SimTime::from_secs(1), &arr);
        ba.trace(SimTime::from_secs(1), &enq);
        assert_ne!(ab.value(), ba.value(), "order must matter");
        assert_eq!(ab.events(), 2);
        assert_eq!((ab.enqueues, ab.arrivals), (1, 1));
    }

    #[test]
    fn digest_separates_time_id_and_kind() {
        let p = pkt();
        let at = |t: u64| {
            let mut d = TraceDigest::new();
            d.trace(
                SimTime::from_secs(t),
                &TraceEvent::Deliver {
                    agent: AgentId(1),
                    packet: &p,
                },
            );
            d.value()
        };
        assert_ne!(at(1), at(2), "time must be folded in");

        let drop_with = |reason: DropReason| {
            let mut d = TraceDigest::new();
            d.trace(
                SimTime::ZERO,
                &TraceEvent::Drop {
                    channel: ChannelId(0),
                    packet: &p,
                    reason,
                    qlen: 0,
                },
            );
            d.value()
        };
        assert_ne!(
            drop_with(DropReason::EarlyDrop),
            drop_with(DropReason::ForcedDrop),
            "drop reason must be folded in"
        );
    }

    #[test]
    fn digest_identical_streams_match() {
        let p = pkt();
        let run = || {
            let mut d = TraceDigest::new();
            for t in 0..50 {
                d.trace(
                    SimTime::from_secs(t),
                    &TraceEvent::Enqueue {
                        channel: ChannelId((t % 3) as u32),
                        packet: &p,
                        qlen: t as usize,
                    },
                );
            }
            (d.value(), d.hex())
        };
        assert_eq!(run(), run());
        assert_eq!(run().1.len(), 16, "canonical hex form is 16 digits");
    }
}
