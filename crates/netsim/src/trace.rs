//! Event tracing hooks.
//!
//! A [`Tracer`] observes packet-level events as the engine processes them —
//! the simulator's analogue of smoltcp's pcap dumps. Experiments use it to
//! record queue-occupancy time series (the paper's "buffer period"
//! analysis) and drop patterns (the phase-effect demonstration).

use crate::id::{AgentId, ChannelId, NodeId};
use crate::packet::Packet;
use crate::queue::DropReason;
use crate::time::SimTime;

/// A packet-level event visible to tracers.
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A packet was accepted into a channel buffer; `qlen` is the length
    /// after insertion.
    Enqueue {
        /// The channel whose buffer accepted the packet.
        channel: ChannelId,
        /// The accepted packet.
        packet: &'a Packet,
        /// Buffer occupancy after insertion.
        qlen: usize,
    },
    /// A packet was discarded at a channel.
    Drop {
        /// The dropping channel.
        channel: ChannelId,
        /// The discarded packet.
        packet: &'a Packet,
        /// Why it was discarded.
        reason: DropReason,
        /// Buffer occupancy at the time of the drop.
        qlen: usize,
    },
    /// A channel began serializing a packet; `qlen` is the length after the
    /// packet left the buffer.
    TxStart {
        /// The transmitting channel.
        channel: ChannelId,
        /// The packet being transmitted.
        packet: &'a Packet,
        /// Buffer occupancy after removal.
        qlen: usize,
    },
    /// A packet arrived at a node (after propagation).
    Arrive {
        /// The node reached.
        node: NodeId,
        /// The arriving packet.
        packet: &'a Packet,
    },
    /// A packet was handed to a transport endpoint.
    Deliver {
        /// The receiving agent.
        agent: AgentId,
        /// The delivered packet.
        packet: &'a Packet,
    },
}

/// Observer of engine events.
pub trait Tracer {
    /// Called for every traced event, in simulation order.
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>);
}

/// A tracer that counts events by kind — useful in tests and as a cheap
/// activity summary.
#[derive(Debug, Default, Clone)]
pub struct CountingTracer {
    /// Packets accepted into buffers.
    pub enqueues: u64,
    /// Packets discarded.
    pub drops: u64,
    /// Transmissions started.
    pub tx_starts: u64,
    /// Node arrivals.
    pub arrivals: u64,
    /// Agent deliveries.
    pub deliveries: u64,
}

impl Tracer for CountingTracer {
    fn trace(&mut self, _now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue { .. } => self.enqueues += 1,
            TraceEvent::Drop { .. } => self.drops += 1,
            TraceEvent::TxStart { .. } => self.tx_starts += 1,
            TraceEvent::Arrive { .. } => self.arrivals += 1,
            TraceEvent::Deliver { .. } => self.deliveries += 1,
        }
    }
}

/// A tracer that renders every event as one human-readable line — the
/// simulator's analogue of a `tcpdump`/pcap text dump. Useful for
/// debugging protocol behaviour on small scenarios; on paper-scale runs
/// it produces millions of lines, so keep it to short intervals.
#[derive(Debug, Default)]
pub struct LogTracer {
    /// The rendered lines, in simulation order.
    pub lines: Vec<String>,
    /// Maximum number of lines to retain (0 = unbounded). Oldest lines
    /// are dropped first.
    pub max_lines: usize,
}

impl LogTracer {
    /// A tracer retaining at most `max_lines` lines (0 = unbounded).
    pub fn new(max_lines: usize) -> Self {
        LogTracer {
            lines: Vec::new(),
            max_lines,
        }
    }

    /// The whole log as one string.
    pub fn dump(&self) -> String {
        self.lines.join("\n")
    }

    fn push(&mut self, line: String) {
        if self.max_lines > 0 && self.lines.len() >= self.max_lines {
            self.lines.remove(0);
        }
        self.lines.push(line);
    }
}

impl Tracer for LogTracer {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        let line = match event {
            TraceEvent::Enqueue {
                channel,
                packet,
                qlen,
            } => format!(
                "{now} {channel} enqueue uid={} {} from {} (q={qlen})",
                packet.uid,
                packet.segment.kind_str(),
                packet.src
            ),
            TraceEvent::Drop {
                channel,
                packet,
                reason,
                qlen,
            } => format!(
                "{now} {channel} DROP    uid={} {} from {} ({reason:?}, q={qlen})",
                packet.uid,
                packet.segment.kind_str(),
                packet.src
            ),
            TraceEvent::TxStart {
                channel,
                packet,
                qlen,
            } => format!(
                "{now} {channel} tx      uid={} {} (q={qlen})",
                packet.uid,
                packet.segment.kind_str()
            ),
            TraceEvent::Arrive { node, packet } => format!(
                "{now} {node} arrive  uid={} {}",
                packet.uid,
                packet.segment.kind_str()
            ),
            TraceEvent::Deliver { agent, packet } => format!(
                "{now} {agent} deliver uid={} {}",
                packet.uid,
                packet.segment.kind_str()
            ),
        };
        self.push(line);
    }
}

/// Records the queue-length time series of a single channel: one `(time,
/// length)` sample per change. Drives the buffer-period experiment (§3.1).
#[derive(Debug)]
pub struct QueueLengthTracer {
    /// The channel being watched.
    pub channel: ChannelId,
    /// `(time, qlen)` samples, one per change.
    pub samples: Vec<(SimTime, usize)>,
    /// `(time, uid)` of every drop at the channel.
    pub drops: Vec<(SimTime, u64)>,
}

impl QueueLengthTracer {
    /// Watch `channel`.
    pub fn new(channel: ChannelId) -> Self {
        QueueLengthTracer {
            channel,
            samples: Vec::new(),
            drops: Vec::new(),
        }
    }
}

impl Tracer for QueueLengthTracer {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue { channel, qlen, .. } | TraceEvent::TxStart { channel, qlen, .. }
                if *channel == self.channel =>
            {
                self.samples.push((now, *qlen));
            }
            TraceEvent::Drop {
                channel, packet, ..
            } if *channel == self.channel => {
                self.drops.push((now, packet.uid));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;
    use crate::packet::Dest;
    use crate::wire::Segment;

    fn pkt() -> Packet {
        Packet {
            uid: 1,
            src: AgentId(0),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 1000,
            segment: Segment::Raw,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        let p = pkt();
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Enqueue {
                channel: ChannelId(0),
                packet: &p,
                qlen: 1,
            },
        );
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Drop {
                channel: ChannelId(0),
                packet: &p,
                reason: DropReason::BufferOverflow,
                qlen: 1,
            },
        );
        t.trace(
            SimTime::ZERO,
            &TraceEvent::Deliver {
                agent: AgentId(1),
                packet: &p,
            },
        );
        assert_eq!((t.enqueues, t.drops, t.deliveries), (1, 1, 1));
    }

    #[test]
    fn log_tracer_renders_and_caps() {
        let mut t = LogTracer::new(2);
        let p = pkt();
        for i in 0..3 {
            t.trace(
                SimTime::from_secs(i),
                &TraceEvent::Arrive {
                    node: NodeId(0),
                    packet: &p,
                },
            );
        }
        assert_eq!(t.lines.len(), 2, "cap enforced");
        assert!(t.dump().contains("arrive"));
        assert!(t.dump().contains("raw"));
        // Oldest line (t=0s) dropped.
        assert!(!t.lines[0].starts_with("0.000000s"));
    }

    #[test]
    fn queue_tracer_filters_by_channel() {
        let mut t = QueueLengthTracer::new(ChannelId(5));
        let p = pkt();
        t.trace(
            SimTime::from_secs(1),
            &TraceEvent::Enqueue {
                channel: ChannelId(5),
                packet: &p,
                qlen: 3,
            },
        );
        t.trace(
            SimTime::from_secs(2),
            &TraceEvent::Enqueue {
                channel: ChannelId(6),
                packet: &p,
                qlen: 9,
            },
        );
        assert_eq!(t.samples, vec![(SimTime::from_secs(1), 3)]);
    }
}
