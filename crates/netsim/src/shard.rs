//! Domain partitioning for the parallel engine.
//!
//! The tree topologies of the paper have a useful property for parallel
//! discrete-event simulation: every link carries a propagation delay, so a
//! packet crossing a link cannot affect the far side for at least that
//! long. Partitioning the topology along links whose delay is at least a
//! bound θ yields *domains* that can each run θ of simulated time without
//! looking at any other domain — the classic conservative-lookahead
//! argument, here realised as an epoch barrier instead of null messages.
//!
//! [`DomainMap`] computes that partition: nodes connected by links with
//! propagation delay *below* θ are merged into one domain (they interact
//! too quickly to separate), and the *lookahead* `L` is the minimum delay
//! over the links that remain cut. The epoch executor in
//! [`engine`](crate::engine) advances every domain to the next multiple of
//! `L` ([`grid_next`]) and then exchanges [`BoundaryMsg`]s — packets whose
//! transmission finished in one domain but whose arrival node lives in
//! another.
//!
//! # Determinism contract
//!
//! The partition is a pure function of the topology and θ, never of the
//! worker count: running the same partitioned world on 1, 2 or 4 workers
//! executes the identical per-domain event streams and produces
//! bit-identical trace digests. Boundary messages are exchanged only at
//! absolute grid barriers `i·L` (never at caller-chosen deadlines), in the
//! canonical order *(arrival time, source domain, send order)*, so the
//! per-domain calendar sequence numbers — and therefore same-instant FIFO
//! dispatch — are independent of both the worker count and how the caller
//! steps `run_until`.

use crate::id::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// A packet crossing from one domain to another: queued in the sending
/// domain's outbox at transmission completion, scheduled into the arrival
/// node's domain at the next epoch barrier.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryMsg {
    /// Arrival instant at the destination node (transmission completion
    /// plus the cut link's propagation delay — by construction at least
    /// one lookahead in the future).
    pub at: SimTime,
    /// The node the packet arrives at (in the destination domain).
    pub node: NodeId,
    /// The packet itself, by value: it left the sending domain's arena and
    /// enters the destination domain's arena on delivery.
    pub packet: Packet,
}

/// A partition of the topology's nodes into conservative-lookahead
/// domains. See the [module docs](self) for the partition rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    /// Per node: its domain index. Empty in the trivial single-domain map,
    /// where every node is domain 0 regardless of index.
    domain_of: Vec<u32>,
    /// Number of domains (at least 1).
    domains: u32,
    /// Minimum propagation delay over cut (inter-domain) links; zero in
    /// the single-domain map, where it is never consulted.
    lookahead: SimDuration,
}

impl DomainMap {
    /// The trivial map: every node (present or future) in domain 0. This
    /// is the map an unpartitioned engine carries.
    pub fn single() -> Self {
        DomainMap {
            domain_of: Vec::new(),
            domains: 1,
            lookahead: SimDuration::ZERO,
        }
    }

    /// Partition `node_count` nodes along the directed links
    /// `(from, to, prop_delay)`.
    ///
    /// Endpoints of any link with `prop_delay < theta` are merged into one
    /// domain; the remaining (cut) links all carry at least `theta` of
    /// delay, and the lookahead is their minimum. `theta` defaults to the
    /// smallest positive link delay in the topology — the finest partition
    /// the delays admit. Domains are numbered by first appearance in node
    /// order, so the result is a pure function of the topology and θ.
    ///
    /// # Panics
    /// If an explicit `theta` is zero (a zero lookahead admits no
    /// conservative window).
    pub fn partition(
        node_count: usize,
        links: &[(NodeId, NodeId, SimDuration)],
        theta: Option<SimDuration>,
    ) -> Self {
        if let Some(t) = theta {
            assert!(
                !t.is_zero(),
                "partition threshold must be positive: a zero lookahead admits no epoch window"
            );
        }
        let theta = theta.or_else(|| {
            links
                .iter()
                .map(|&(_, _, d)| d)
                .filter(|d| !d.is_zero())
                .min()
        });
        let Some(theta) = theta else {
            // No links with positive delay anywhere: nothing to cut.
            return DomainMap::single();
        };

        // Union-find over nodes; links too fast to cut merge their
        // endpoints.
        let mut parent: Vec<u32> = (0..node_count as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let up = parent[parent[x as usize] as usize];
                parent[x as usize] = up;
                x = up;
            }
            x
        }
        for &(from, to, delay) in links {
            if delay < theta {
                let a = find(&mut parent, from.index() as u32);
                let b = find(&mut parent, to.index() as u32);
                if a != b {
                    // Smaller root wins, keeping numbering order-stable.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi as usize] = lo;
                }
            }
        }

        // Compress roots to dense domain ids in node order.
        let mut domain_of = vec![u32::MAX; node_count];
        let mut domains = 0u32;
        for n in 0..node_count as u32 {
            let root = find(&mut parent, n);
            if domain_of[root as usize] == u32::MAX {
                domain_of[root as usize] = domains;
                domains += 1;
            }
            domain_of[n as usize] = domain_of[root as usize];
        }
        if domains <= 1 {
            return DomainMap::single();
        }

        // Lookahead: the tightest cut link bounds the epoch width.
        let lookahead = links
            .iter()
            .filter(|&&(from, to, _)| domain_of[from.index()] != domain_of[to.index()])
            .map(|&(_, _, d)| d)
            .min()
            .expect("multiple domains imply at least one cut link");
        debug_assert!(lookahead >= theta, "cut link faster than the threshold");

        DomainMap {
            domain_of,
            domains,
            lookahead,
        }
    }

    /// The domain a node belongs to.
    #[inline]
    pub fn domain_of(&self, node: NodeId) -> u32 {
        if self.domains == 1 {
            0
        } else {
            self.domain_of[node.index()]
        }
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains as usize
    }

    /// `true` when the map actually splits the topology.
    pub fn is_partitioned(&self) -> bool {
        self.domains > 1
    }

    /// The conservative lookahead: the minimum propagation delay over
    /// inter-domain links. Zero for the single-domain map.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Register one more node in a partitioned map, as its own fresh
    /// domain (it has no links yet; links added later are checked against
    /// the lookahead). Returns the new domain index. Internal to the
    /// engine's topology-growth path.
    pub(crate) fn push_isolated_node(&mut self) -> u32 {
        debug_assert!(self.is_partitioned());
        let d = self.domains;
        self.domain_of.push(d);
        self.domains += 1;
        d
    }
}

/// The next epoch barrier after `now`: the smallest multiple of
/// `lookahead` strictly greater than `now`. Barriers are absolute
/// (independent of where a `run_until` call happens to pause), which is
/// what makes the exchange schedule — and therefore the digests —
/// invariant under caller stepping.
#[inline]
pub fn grid_next(now: SimTime, lookahead: SimDuration) -> SimTime {
    let l = lookahead.as_nanos();
    debug_assert!(l > 0, "epoch grid needs a positive lookahead");
    SimTime::from_nanos((now.as_nanos() / l + 1).saturating_mul(l))
}

/// Deterministic per-domain RNG seed: a splitmix64-style mix of the base
/// seed and the domain index. Domain streams must be decorrelated (the
/// phase-effect machinery draws per-packet jitter from them) yet a pure
/// function of `(seed, domain)` so every worker count sees identical
/// draws.
pub(crate) fn domain_seed(seed: u64, domain: u32) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(domain as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn default_theta_cuts_every_positive_link() {
        // a -5ms- b -100ms- c: theta defaults to 5ms, no link is below it,
        // so all three nodes are their own domain and L = 5ms.
        let links = vec![
            (NodeId(0), NodeId(1), ms(5)),
            (NodeId(1), NodeId(0), ms(5)),
            (NodeId(1), NodeId(2), ms(100)),
            (NodeId(2), NodeId(1), ms(100)),
        ];
        let m = DomainMap::partition(3, &links, None);
        assert_eq!(m.domains(), 3);
        assert_eq!(m.lookahead(), ms(5));
        assert!(m.is_partitioned());
        // Numbered in node order.
        assert_eq!(m.domain_of(NodeId(0)), 0);
        assert_eq!(m.domain_of(NodeId(1)), 1);
        assert_eq!(m.domain_of(NodeId(2)), 2);
    }

    #[test]
    fn explicit_theta_merges_fast_links() {
        // With theta above the 5ms link, a and b fuse; the 100ms link is
        // the only cut, so L = 100ms.
        let links = vec![
            (NodeId(0), NodeId(1), ms(5)),
            (NodeId(1), NodeId(0), ms(5)),
            (NodeId(1), NodeId(2), ms(100)),
            (NodeId(2), NodeId(1), ms(100)),
        ];
        let m = DomainMap::partition(3, &links, Some(ms(10)));
        assert_eq!(m.domains(), 2);
        assert_eq!(m.lookahead(), ms(100));
        assert_eq!(m.domain_of(NodeId(0)), m.domain_of(NodeId(1)));
        assert_ne!(m.domain_of(NodeId(0)), m.domain_of(NodeId(2)));
    }

    #[test]
    fn fully_merged_topology_is_single_domain() {
        let links = vec![(NodeId(0), NodeId(1), ms(1)), (NodeId(1), NodeId(2), ms(1))];
        let m = DomainMap::partition(3, &links, Some(ms(50)));
        assert_eq!(m.domains(), 1);
        assert!(!m.is_partitioned());
        assert_eq!(m.domain_of(NodeId(2)), 0);
    }

    #[test]
    fn single_map_covers_any_node() {
        let m = DomainMap::single();
        assert_eq!(m.domains(), 1);
        assert_eq!(m.domain_of(NodeId(999)), 0);
        assert_eq!(m.lookahead(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_theta_is_rejected() {
        DomainMap::partition(2, &[(NodeId(0), NodeId(1), ms(1))], Some(SimDuration::ZERO));
    }

    #[test]
    fn grid_steps_are_absolute_and_strictly_advancing() {
        let l = ms(5);
        assert_eq!(grid_next(SimTime::ZERO, l), SimTime::from_millis(5));
        assert_eq!(
            grid_next(SimTime::from_millis(5), l),
            SimTime::from_millis(10)
        );
        assert_eq!(
            grid_next(SimTime::from_millis(7), l),
            SimTime::from_millis(10),
            "mid-epoch resumption lands on the same absolute barrier"
        );
        assert_eq!(
            grid_next(SimTime::from_nanos(4_999_999), l),
            SimTime::from_millis(5)
        );
    }

    #[test]
    fn domain_seeds_differ_per_domain_and_are_stable() {
        let a = domain_seed(1, 0);
        let b = domain_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(a, domain_seed(1, 0), "pure function of (seed, domain)");
        assert_ne!(domain_seed(2, 0), a);
    }
}
