//! Domain partitioning for the parallel engine.
//!
//! The tree topologies of the paper have a useful property for parallel
//! discrete-event simulation: every link carries a propagation delay, so a
//! packet crossing a link cannot affect the far side for at least that
//! long. Partitioning the topology along links whose delay is at least a
//! bound θ yields *domains* that can each run θ of simulated time without
//! looking at any other domain — the classic conservative-lookahead
//! argument, here realised as an epoch barrier instead of null messages.
//!
//! [`DomainMap`] computes that partition: nodes connected by links with
//! propagation delay *below* θ are merged into one domain (they interact
//! too quickly to separate), and the *lookahead* `L` is the minimum delay
//! over the links that remain cut. The epoch executor in
//! [`engine`](crate::engine) advances every domain to the next multiple of
//! `L` ([`grid_next`]) and then exchanges [`BoundaryMsg`]s — packets whose
//! transmission finished in one domain but whose arrival node lives in
//! another.
//!
//! # Determinism contract
//!
//! The partition is a pure function of the topology and θ, never of the
//! worker count: running the same partitioned world on 1, 2 or 4 workers
//! executes the identical per-domain event streams and produces
//! bit-identical trace digests. Boundary messages are exchanged only at
//! absolute grid barriers `i·L` (never at caller-chosen deadlines), in the
//! canonical order *(arrival time, source domain, send order)*, so the
//! per-domain calendar sequence numbers — and therefore same-instant FIFO
//! dispatch — are independent of both the worker count and how the caller
//! steps `run_until`.

use crate::id::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// A packet crossing from one domain to another: queued in the sending
/// domain's outbox at transmission completion, scheduled into the arrival
/// node's domain at the next epoch barrier.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryMsg {
    /// Arrival instant at the destination node (transmission completion
    /// plus the cut link's propagation delay — by construction at least
    /// one lookahead in the future).
    pub at: SimTime,
    /// The node the packet arrives at (in the destination domain).
    pub node: NodeId,
    /// The packet itself, by value: it left the sending domain's arena and
    /// enters the destination domain's arena on delivery.
    pub packet: Packet,
    /// The (global) region the packet was sent from. Together with `seq`
    /// this carries the canonical *(arrival time, source region, send
    /// order)* exchange key, so a whole epoch's crossings can be handed
    /// over as one batch and sorted once.
    pub region: u32,
    /// Send order within the source region's cross-region traffic.
    pub seq: u64,
}

impl BoundaryMsg {
    /// The canonical exchange-order key: *(arrival time, source region,
    /// send order)*. A total order, so an unstable sort suffices.
    #[inline]
    pub fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.region, self.seq)
    }
}

/// A partition of the topology's nodes into conservative-lookahead
/// domains. See the [module docs](self) for the partition rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    /// Per node: its domain index. Empty in the trivial single-domain map,
    /// where every node is domain 0 regardless of index.
    domain_of: Vec<u32>,
    /// Number of domains (at least 1).
    domains: u32,
    /// Minimum propagation delay over cut (inter-domain) links; zero in
    /// the single-domain map, where it is never consulted.
    lookahead: SimDuration,
}

impl DomainMap {
    /// The trivial map: every node (present or future) in domain 0. This
    /// is the map an unpartitioned engine carries.
    pub fn single() -> Self {
        DomainMap {
            domain_of: Vec::new(),
            domains: 1,
            lookahead: SimDuration::ZERO,
        }
    }

    /// Partition `node_count` nodes along the directed links
    /// `(from, to, prop_delay)`.
    ///
    /// Endpoints of any link with `prop_delay < theta` are merged into one
    /// domain; the remaining (cut) links all carry at least `theta` of
    /// delay, and the lookahead is their minimum. `theta` defaults to the
    /// smallest positive link delay in the topology — the finest partition
    /// the delays admit. Domains are numbered by first appearance in node
    /// order, so the result is a pure function of the topology and θ.
    ///
    /// # Panics
    /// If an explicit `theta` is zero (a zero lookahead admits no
    /// conservative window).
    pub fn partition(
        node_count: usize,
        links: &[(NodeId, NodeId, SimDuration)],
        theta: Option<SimDuration>,
    ) -> Self {
        if let Some(t) = theta {
            assert!(
                !t.is_zero(),
                "partition threshold must be positive: a zero lookahead admits no epoch window"
            );
        }
        let theta = theta.or_else(|| {
            links
                .iter()
                .map(|&(_, _, d)| d)
                .filter(|d| !d.is_zero())
                .min()
        });
        let Some(theta) = theta else {
            // No links with positive delay anywhere: nothing to cut.
            return DomainMap::single();
        };

        // Union-find over nodes; links too fast to cut merge their
        // endpoints.
        let mut parent: Vec<u32> = (0..node_count as u32).collect();
        for &(from, to, delay) in links {
            if delay < theta {
                let a = find(&mut parent, from.index() as u32);
                let b = find(&mut parent, to.index() as u32);
                if a != b {
                    // Smaller root wins, keeping numbering order-stable.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi as usize] = lo;
                }
            }
        }

        // Compress roots to dense domain ids in node order.
        let mut domain_of = vec![u32::MAX; node_count];
        let mut domains = 0u32;
        for n in 0..node_count as u32 {
            let root = find(&mut parent, n);
            if domain_of[root as usize] == u32::MAX {
                domain_of[root as usize] = domains;
                domains += 1;
            }
            domain_of[n as usize] = domain_of[root as usize];
        }
        if domains <= 1 {
            return DomainMap::single();
        }

        // Lookahead: the tightest cut link bounds the epoch width.
        let lookahead = links
            .iter()
            .filter(|&&(from, to, _)| domain_of[from.index()] != domain_of[to.index()])
            .map(|&(_, _, d)| d)
            .min()
            .expect("multiple domains imply at least one cut link");
        debug_assert!(lookahead >= theta, "cut link faster than the threshold");

        DomainMap {
            domain_of,
            domains,
            lookahead,
        }
    }

    /// Coalesce this partition's domains into at most `target` groups,
    /// merging along the fastest inter-domain links first so the surviving
    /// cut links — and with them the merged lookahead — are as slow as the
    /// topology allows. `costs` (one weight per domain, typically an
    /// event-load estimate) keeps the groups balanced: a merge is skipped
    /// while the combined weight would exceed 125% of the ideal
    /// `total/target` share; if the cap alone cannot reach the target the
    /// remaining merges are chosen balance-greedily — each round unions
    /// the connected pair with the lightest combined weight (ties to the
    /// faster link), so the forced merges spread load instead of piling
    /// onto the heaviest group. Returns the merged map (nodes → groups);
    /// with one group the result is [`DomainMap::single`].
    ///
    /// The merge is deterministic: candidate links are taken in ascending
    /// `(delay, domain pair)` order, forced merges break ties on
    /// `(weight, delay, domain pair)`, and groups are numbered by first
    /// appearance in node order, so the result is a pure function of the
    /// partition, the links, `target` and `costs` — never of worker
    /// counts or timing.
    pub fn merged(
        &self,
        links: &[(NodeId, NodeId, SimDuration)],
        target: usize,
        costs: Option<&[u64]>,
    ) -> DomainMap {
        assert!(target >= 1, "at least one group is required");
        let r_count = self.domains();
        if !self.is_partitioned() || target >= r_count {
            return self.clone();
        }
        if let Some(c) = costs {
            assert_eq!(c.len(), r_count, "need exactly one cost per domain");
        }

        // Candidate cut links between distinct domains, fastest first;
        // deduplicated so a full-duplex link is one candidate.
        let mut candidates: Vec<(SimDuration, u32, u32)> = links
            .iter()
            .filter_map(|&(from, to, d)| {
                let a = self.domain_of(from);
                let b = self.domain_of(to);
                (a != b).then_some((d, a.min(b), a.max(b)))
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();

        let mut parent: Vec<u32> = (0..r_count as u32).collect();
        let mut weight: Vec<u64> = match costs {
            Some(c) => c.to_vec(),
            None => vec![1; r_count],
        };
        let total: u64 = weight.iter().sum();
        let ideal = total.div_ceil(target as u64).max(1);
        let cap = ideal + ideal / 4;
        let mut groups = r_count;
        let union = |parent: &mut Vec<u32>, weight: &mut Vec<u64>, ra: u32, rb: u32| {
            // Smaller root wins, keeping the numbering order-stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[hi as usize] = lo;
            weight[lo as usize] = weight[lo as usize].saturating_add(weight[hi as usize]);
        };

        // Pass 1: balanced merges along the fastest cuts.
        for &(_, a, b) in &candidates {
            if groups == target {
                break;
            }
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra == rb {
                continue;
            }
            if weight[ra as usize].saturating_add(weight[rb as usize]) > cap {
                continue;
            }
            union(&mut parent, &mut weight, ra, rb);
            groups -= 1;
        }
        // Pass 2: the balance cap may strand groups above the target.
        // Pack the stranded groups into `target` bins, heaviest first,
        // each into the currently lightest bin (LPT scheduling). An
        // execution group does not need to be link-connected — the epoch
        // grid is the *fine* lookahead θ at every shard count, so the
        // surviving cut set never widens an epoch — and following links
        // here would be actively harmful: in a star topology every
        // stranded leaf connects only through the hub, so link-following
        // forced merges pile all remaining load onto the one heavy
        // component. This also folds link-disconnected components, which
        // have no candidates at all.
        if groups > target {
            let mut units: Vec<(u64, u32)> = (0..r_count as u32)
                .filter(|&r| find(&mut parent, r) == r)
                .map(|r| (weight[r as usize], r))
                .collect();
            // Heaviest first; ties by the lower root for determinism.
            units.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut bins: Vec<(u64, Option<u32>)> = vec![(0, None); target];
            for (w, r) in units {
                let i = (0..target)
                    .min_by_key(|&i| (bins[i].0, i))
                    .expect("target >= 1");
                match bins[i].1 {
                    None => bins[i] = (w, Some(r)),
                    Some(root) => {
                        union(&mut parent, &mut weight, root, r);
                        bins[i].0 += w;
                        bins[i].1 = Some(root.min(r));
                        groups -= 1;
                    }
                }
            }
            debug_assert!(groups <= target, "LPT packing missed the target");
        }

        // Dense group ids in node order, exactly like `partition`.
        let node_count = self.domain_of.len();
        let mut group_of_root = vec![u32::MAX; r_count];
        let mut domain_of = vec![u32::MAX; node_count];
        let mut domains = 0u32;
        for (node, slot) in domain_of.iter_mut().enumerate() {
            let root = find(&mut parent, self.domain_of[node]);
            if group_of_root[root as usize] == u32::MAX {
                group_of_root[root as usize] = domains;
                domains += 1;
            }
            *slot = group_of_root[root as usize];
        }
        if domains <= 1 {
            return DomainMap::single();
        }

        let lookahead = links
            .iter()
            .filter(|&&(from, to, _)| domain_of[from.index()] != domain_of[to.index()])
            .map(|&(_, _, d)| d)
            .min()
            .expect("multiple groups imply at least one cut link");
        DomainMap {
            domain_of,
            domains,
            lookahead,
        }
    }

    /// The domain a node belongs to.
    #[inline]
    pub fn domain_of(&self, node: NodeId) -> u32 {
        if self.domains == 1 {
            0
        } else {
            self.domain_of[node.index()]
        }
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains as usize
    }

    /// `true` when the map actually splits the topology.
    pub fn is_partitioned(&self) -> bool {
        self.domains > 1
    }

    /// The conservative lookahead: the minimum propagation delay over
    /// inter-domain links. Zero for the single-domain map.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Register one more node in a partitioned map, as its own fresh
    /// domain (it has no links yet; links added later are checked against
    /// the lookahead). Returns the new domain index. Internal to the
    /// engine's topology-growth path.
    pub(crate) fn push_isolated_node(&mut self) -> u32 {
        debug_assert!(self.is_partitioned());
        let d = self.domains;
        self.domain_of.push(d);
        self.domains += 1;
        d
    }
}

/// Path-halving find for the union-find passes above.
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let up = parent[parent[x as usize] as usize];
        parent[x as usize] = up;
        x = up;
    }
    x
}

/// The next epoch barrier after `now`: the smallest multiple of
/// `lookahead` strictly greater than `now`. Barriers are absolute
/// (independent of where a `run_until` call happens to pause), which is
/// what makes the exchange schedule — and therefore the digests —
/// invariant under caller stepping.
#[inline]
pub fn grid_next(now: SimTime, lookahead: SimDuration) -> SimTime {
    let l = lookahead.as_nanos();
    debug_assert!(l > 0, "epoch grid needs a positive lookahead");
    SimTime::from_nanos((now.as_nanos() / l + 1).saturating_mul(l))
}

/// Deterministic per-domain RNG seed: a splitmix64-style mix of the base
/// seed and the domain index. Domain streams must be decorrelated (the
/// phase-effect machinery draws per-packet jitter from them) yet a pure
/// function of `(seed, domain)` so every worker count sees identical
/// draws.
pub(crate) fn domain_seed(seed: u64, domain: u32) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(domain as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn default_theta_cuts_every_positive_link() {
        // a -5ms- b -100ms- c: theta defaults to 5ms, no link is below it,
        // so all three nodes are their own domain and L = 5ms.
        let links = vec![
            (NodeId(0), NodeId(1), ms(5)),
            (NodeId(1), NodeId(0), ms(5)),
            (NodeId(1), NodeId(2), ms(100)),
            (NodeId(2), NodeId(1), ms(100)),
        ];
        let m = DomainMap::partition(3, &links, None);
        assert_eq!(m.domains(), 3);
        assert_eq!(m.lookahead(), ms(5));
        assert!(m.is_partitioned());
        // Numbered in node order.
        assert_eq!(m.domain_of(NodeId(0)), 0);
        assert_eq!(m.domain_of(NodeId(1)), 1);
        assert_eq!(m.domain_of(NodeId(2)), 2);
    }

    #[test]
    fn explicit_theta_merges_fast_links() {
        // With theta above the 5ms link, a and b fuse; the 100ms link is
        // the only cut, so L = 100ms.
        let links = vec![
            (NodeId(0), NodeId(1), ms(5)),
            (NodeId(1), NodeId(0), ms(5)),
            (NodeId(1), NodeId(2), ms(100)),
            (NodeId(2), NodeId(1), ms(100)),
        ];
        let m = DomainMap::partition(3, &links, Some(ms(10)));
        assert_eq!(m.domains(), 2);
        assert_eq!(m.lookahead(), ms(100));
        assert_eq!(m.domain_of(NodeId(0)), m.domain_of(NodeId(1)));
        assert_ne!(m.domain_of(NodeId(0)), m.domain_of(NodeId(2)));
    }

    #[test]
    fn fully_merged_topology_is_single_domain() {
        let links = vec![(NodeId(0), NodeId(1), ms(1)), (NodeId(1), NodeId(2), ms(1))];
        let m = DomainMap::partition(3, &links, Some(ms(50)));
        assert_eq!(m.domains(), 1);
        assert!(!m.is_partitioned());
        assert_eq!(m.domain_of(NodeId(2)), 0);
    }

    #[test]
    fn single_map_covers_any_node() {
        let m = DomainMap::single();
        assert_eq!(m.domains(), 1);
        assert_eq!(m.domain_of(NodeId(999)), 0);
        assert_eq!(m.lookahead(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_theta_is_rejected() {
        DomainMap::partition(2, &[(NodeId(0), NodeId(1), ms(1))], Some(SimDuration::ZERO));
    }

    #[test]
    fn grid_steps_are_absolute_and_strictly_advancing() {
        let l = ms(5);
        assert_eq!(grid_next(SimTime::ZERO, l), SimTime::from_millis(5));
        assert_eq!(
            grid_next(SimTime::from_millis(5), l),
            SimTime::from_millis(10)
        );
        assert_eq!(
            grid_next(SimTime::from_millis(7), l),
            SimTime::from_millis(10),
            "mid-epoch resumption lands on the same absolute barrier"
        );
        assert_eq!(
            grid_next(SimTime::from_nanos(4_999_999), l),
            SimTime::from_millis(5)
        );
    }

    /// A chain 0 -5ms- 1 -5ms- 2 -100ms- 3 -5ms- 4 (full duplex), finely
    /// partitioned into five single-node domains.
    fn chain_links() -> Vec<(NodeId, NodeId, SimDuration)> {
        let delays = [ms(5), ms(5), ms(100), ms(5)];
        let mut links = Vec::new();
        for (i, &d) in delays.iter().enumerate() {
            let i = i as u32;
            links.push((NodeId(i), NodeId(i + 1), d));
            links.push((NodeId(i + 1), NodeId(i), d));
        }
        links
    }

    #[test]
    fn merged_collapses_to_one_group_at_target_one() {
        let links = chain_links();
        let fine = DomainMap::partition(5, &links, None);
        assert_eq!(fine.domains(), 5);
        let m = fine.merged(&links, 1, None);
        assert_eq!(m.domains(), 1);
        assert!(!m.is_partitioned());
    }

    #[test]
    fn merged_cuts_the_slowest_links() {
        // Merging 5 domains to 2 must spend its merges on the 5 ms links
        // and keep the 100 ms link as the cut, maximizing the merged
        // lookahead: {0,1,2} | {3,4}.
        let links = chain_links();
        let fine = DomainMap::partition(5, &links, None);
        let m = fine.merged(&links, 2, None);
        assert_eq!(m.domains(), 2);
        assert_eq!(m.lookahead(), ms(100));
        assert_eq!(m.domain_of(NodeId(0)), m.domain_of(NodeId(2)));
        assert_eq!(m.domain_of(NodeId(3)), m.domain_of(NodeId(4)));
        assert_ne!(m.domain_of(NodeId(2)), m.domain_of(NodeId(3)));
        // Groups are numbered by first appearance in node order.
        assert_eq!(m.domain_of(NodeId(0)), 0);
        assert_eq!(m.domain_of(NodeId(4)), 1);
    }

    #[test]
    fn merged_respects_the_balance_cap() {
        // Domain 0 carries almost all the load; with the cap active the
        // cheap domains must coalesce among themselves instead of piling
        // onto domain 0. Chain of four 5 ms links: merging to 2 with
        // costs [97,1,1,1,1] must not attach everything to domain 0.
        let delays = [ms(5), ms(5), ms(5), ms(5)];
        let mut links = Vec::new();
        for (i, &d) in delays.iter().enumerate() {
            let i = i as u32;
            links.push((NodeId(i), NodeId(i + 1), d));
            links.push((NodeId(i + 1), NodeId(i), d));
        }
        let fine = DomainMap::partition(5, &links, None);
        let m = fine.merged(&links, 2, Some(&[97, 1, 1, 1, 1]));
        assert_eq!(m.domains(), 2);
        // Ideal share is 51, cap 63: domain 0 (97) can absorb nothing, so
        // it stays alone and 1..4 fuse.
        assert_eq!(m.domain_of(NodeId(0)), 0);
        for n in 1..5 {
            assert_eq!(m.domain_of(NodeId(n)), 1);
        }
    }

    #[test]
    fn merged_is_identity_at_or_above_the_domain_count() {
        let links = chain_links();
        let fine = DomainMap::partition(5, &links, None);
        assert_eq!(fine.merged(&links, 5, None), fine);
        assert_eq!(fine.merged(&links, 8, None), fine);
    }

    #[test]
    fn merged_folds_disconnected_components() {
        // Two disjoint pairs (no inter-component link): merging to 1 must
        // still succeed via the root-folding fallback.
        let links = vec![
            (NodeId(0), NodeId(1), ms(10)),
            (NodeId(2), NodeId(3), ms(10)),
        ];
        let fine = DomainMap::partition(4, &links, None);
        assert_eq!(fine.domains(), 4);
        let m = fine.merged(&links, 1, None);
        assert_eq!(m.domains(), 1);
    }

    #[test]
    fn final_barrier_landing_exactly_on_the_deadline_runs_once() {
        // The epoch loop's arithmetic when the run end is an exact grid
        // multiple: every barrier — including the one *at* the deadline —
        // is visited exactly once, and the loop terminates with the clock
        // on the deadline (events at the deadline instant are dispatched
        // in that final epoch, never dropped or replayed).
        let l = ms(5);
        let deadline = SimTime::from_millis(15);
        let mut t = SimTime::ZERO;
        let mut barriers = Vec::new();
        while t < deadline {
            let b = grid_next(t, l);
            let target = b.min(deadline);
            assert!(target > t, "epoch made no progress");
            if target == b {
                barriers.push(b);
            }
            t = target;
        }
        assert_eq!(
            barriers,
            vec![
                SimTime::from_millis(5),
                SimTime::from_millis(10),
                SimTime::from_millis(15)
            ],
            "the final barrier must coincide with the deadline and fire once"
        );
        assert_eq!(t, deadline);
    }

    #[test]
    fn grid_next_from_an_exact_barrier_strictly_advances() {
        // Resuming a run whose deadline landed exactly on a barrier must
        // compute the *next* barrier, not re-run the one just completed.
        let l = ms(5);
        assert_eq!(
            grid_next(SimTime::from_millis(15), l),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn boundary_msg_key_is_the_canonical_total_order() {
        use crate::packet::{Dest, Packet};
        use crate::wire::Segment;
        let msg = |at: SimTime, region: u32, seq: u64| BoundaryMsg {
            at,
            node: NodeId(0),
            packet: Packet {
                uid: 0,
                src: crate::id::AgentId(0),
                dest: Dest::Agent(crate::id::AgentId(0)),
                size_bytes: 0,
                segment: Segment::Raw,
                sent_at: SimTime::ZERO,
            },
            region,
            seq,
        };
        let mut v = [
            msg(SimTime::from_millis(2), 0, 0),
            msg(SimTime::from_millis(1), 1, 0),
            msg(SimTime::from_millis(1), 0, 1),
            msg(SimTime::from_millis(1), 0, 0),
        ];
        v.sort_unstable_by_key(|m| m.key());
        let keys: Vec<_> = v.iter().map(|m| (m.at, m.region, m.seq)).collect();
        assert_eq!(
            keys,
            vec![
                (SimTime::from_millis(1), 0, 0),
                (SimTime::from_millis(1), 0, 1),
                (SimTime::from_millis(1), 1, 0),
                (SimTime::from_millis(2), 0, 0),
            ]
        );
    }

    #[test]
    fn domain_seeds_differ_per_domain_and_are_stable() {
        let a = domain_seed(1, 0);
        let b = domain_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(a, domain_seed(1, 0), "pure function of (seed, domain)");
        assert_ne!(domain_seed(2, 0), a);
    }
}
