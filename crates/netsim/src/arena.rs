//! Slab-allocated packet storage with generation-checked handles.
//!
//! The hot path used to move [`Packet`]s *by value* through calendar
//! events and queue buffers — every enqueue, transmission and multicast
//! replication copied ~80 bytes (plus any SACK heap block) around. The
//! arena replaces that with one home per in-flight packet: the engine
//! allocates a slot at injection, threads a copyable 8-byte
//! [`PacketHandle`] through events and queues, and frees the slot when the
//! packet is dropped or delivered.
//!
//! Slots are recycled through a free list, so a steady-state run performs
//! no allocation at all once the arena has grown to the peak in-flight
//! population. Each slot carries a *generation* counter bumped on free;
//! a handle is only valid for the generation it was issued with, so any
//! use-after-free (a stale event referring to a recycled slot) panics
//! immediately instead of silently reading another packet.

use crate::packet::Packet;

/// A copyable reference to a packet living in a [`PacketArena`].
///
/// Handles are cheap to copy (8 bytes) and generation-checked: accessing a
/// handle whose slot has since been freed (and possibly reused) panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    index: u32,
    gen: u32,
}

impl PacketHandle {
    /// A handle that matches no slot; used to pre-fill ring buffers.
    pub(crate) const DANGLING: PacketHandle = PacketHandle {
        index: u32::MAX,
        gen: u32::MAX,
    };

    /// The slot index (diagnostics only — not stable across remove/insert).
    pub fn index(self) -> u32 {
        self.index
    }
}

#[derive(Debug)]
struct Slot {
    /// Incremented every time the slot is freed; a handle must match.
    gen: u32,
    packet: Option<Packet>,
}

/// The packet slab: every in-flight packet's single home.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `packet`, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketHandle {
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.packet.is_none(), "free list pointed at a live slot");
            slot.packet = Some(packet);
            PacketHandle {
                index,
                gen: slot.gen,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("more than u32::MAX live packets");
            self.slots.push(Slot {
                gen: 0,
                packet: Some(packet),
            });
            PacketHandle { index, gen: 0 }
        }
    }

    /// Clone the packet behind `handle` into a fresh slot (multicast
    /// replication at branch points).
    pub fn duplicate(&mut self, handle: PacketHandle) -> PacketHandle {
        let copy = *self.get(handle);
        self.insert(copy)
    }

    /// Read the packet behind `handle`.
    ///
    /// # Panics
    /// If the handle is stale (its slot was freed since it was issued).
    pub fn get(&self, handle: PacketHandle) -> &Packet {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(slot.gen, handle.gen, "stale packet handle (use after free)");
        slot.packet.as_ref().expect("handle to an empty slot")
    }

    /// Mutable access to the packet behind `handle`.
    ///
    /// # Panics
    /// If the handle is stale.
    pub fn get_mut(&mut self, handle: PacketHandle) -> &mut Packet {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(slot.gen, handle.gen, "stale packet handle (use after free)");
        slot.packet.as_mut().expect("handle to an empty slot")
    }

    /// Remove and return the packet, freeing its slot for reuse. Any other
    /// copy of `handle` becomes stale.
    ///
    /// # Panics
    /// If the handle is stale.
    pub fn remove(&mut self, handle: PacketHandle) -> Packet {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(slot.gen, handle.gen, "stale packet handle (use after free)");
        let packet = slot.packet.take().expect("handle to an empty slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(handle.index);
        packet
    }

    /// Number of live packets.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when no packet is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the peak in-flight population).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::AgentId;
    use crate::packet::Dest;
    use crate::time::SimTime;
    use crate::wire::Segment;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            src: AgentId(0),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 1000,
            segment: Segment::Raw,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = PacketArena::new();
        let h1 = a.insert(pkt(1));
        let h2 = a.insert(pkt(2));
        assert_eq!(a.get(h1).uid, 1);
        assert_eq!(a.get(h2).uid, 2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(h1).uid, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove(h2).uid, 2);
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut a = PacketArena::new();
        for round in 0..10 {
            let hs: Vec<_> = (0..5).map(|i| a.insert(pkt(round * 5 + i))).collect();
            for h in hs {
                a.remove(h);
            }
        }
        assert_eq!(a.capacity(), 5, "free list must recycle slots");
    }

    #[test]
    fn duplicate_shares_uid_in_a_new_slot() {
        let mut a = PacketArena::new();
        let h = a.insert(pkt(7));
        let d = a.duplicate(h);
        assert_ne!(h, d);
        assert_eq!(a.get(d).uid, 7);
        a.remove(h);
        assert_eq!(a.get(d).uid, 7, "duplicate must survive the original");
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn stale_handle_panics() {
        let mut a = PacketArena::new();
        let h = a.insert(pkt(1));
        a.remove(h);
        let _reuse = a.insert(pkt(2)); // same slot, new generation
        let _ = a.get(h);
    }

    #[test]
    #[should_panic(expected = "stale packet handle")]
    fn double_remove_panics() {
        let mut a = PacketArena::new();
        let h = a.insert(pkt(1));
        a.remove(h);
        let _ = a.remove(h);
    }
}
