//! The simulation engine: world state, event dispatch, agent context.
//!
//! Ownership layout: the [`Engine`] owns a [`World`] (nodes, channels,
//! calendar, RNG) and, in a *separate field*, the boxed [`Agent`]s. Agent
//! callbacks receive a [`Context`] borrowing only the world, so an agent
//! can schedule sends and timers while the engine still holds `&mut` to the
//! agent itself — no `RefCell`, no unsafe.
//!
//! Determinism: a single seeded RNG, integer time, and FIFO tie-breaking in
//! the calendar make runs bit-reproducible for a given seed.
//!
//! Hot path: packets live in a [`PacketArena`] and move through the
//! calendar, queues and multicast fan-out as copyable [`PacketHandle`]s;
//! the packet struct itself is only touched at injection, at trace points,
//! and at delivery (where it leaves the arena by value). The calendar is a
//! hierarchical timer wheel ([`Calendar`]) driven through
//! `pop_before(deadline)`.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::agent::Agent;
use crate::arena::{PacketArena, PacketHandle};
use crate::event::{Calendar, EventKind};
use crate::fault::FaultInjector;
use crate::id::{AgentId, ChannelId, GroupId, NodeId};
use crate::link::Channel;
use crate::node::{Group, Node};
use crate::packet::{Dest, Packet};
use crate::queue::{Enqueue, QueueConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDigest, TraceEvent, Tracer};
use crate::wire::Segment;

/// Per-agent engine-side metadata.
#[derive(Debug)]
struct AgentMeta {
    /// The node the agent is attached to.
    node: NodeId,
    /// Maximum of the uniform random per-packet processing delay added at
    /// send time (the paper's phase-effect eliminator, §3.1). Zero disables
    /// it.
    send_overhead: SimDuration,
    /// Injection time of this agent's most recent packet. Random overhead
    /// must not reorder an agent's own packets (host processing is a
    /// queue, not a scatter), so later sends enter the network no earlier
    /// than this.
    last_injection: SimTime,
}

/// Everything in the simulated world except the agents' protocol state.
pub struct World {
    now: SimTime,
    calendar: Calendar,
    rng: StdRng,
    nodes: Vec<Node>,
    channels: Vec<Channel>,
    groups: Vec<Group>,
    agent_meta: Vec<AgentMeta>,
    next_uid: u64,
    tracer: Option<Rc<RefCell<dyn Tracer>>>,
    /// Always-on fingerprint of the packet-event stream (see
    /// [`TraceDigest`]); the substrate of the digest-regression layer.
    digest: TraceDigest,
    /// Every in-flight packet's single home; events and queues hold
    /// [`PacketHandle`]s into it.
    arena: PacketArena,
    /// Reusable buffers for multicast fan-out (avoids a pair of Vec
    /// allocations per group arrival).
    fwd_scratch: Vec<ChannelId>,
    member_scratch: Vec<AgentId>,
}

impl World {
    fn new(seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            calendar: Calendar::new(),
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            channels: Vec::new(),
            groups: Vec::new(),
            agent_meta: Vec::new(),
            next_uid: 0,
            tracer: None,
            digest: TraceDigest::new(),
            arena: PacketArena::new(),
            fwd_scratch: Vec::new(),
            member_scratch: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable channel access.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// Mutable channel access (configure faults, inspect queues).
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut Channel {
        &mut self.channels[id.index()]
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The node an agent is attached to.
    pub fn agent_node(&self, agent: AgentId) -> NodeId {
        self.agent_meta[agent.index()].node
    }

    /// The members of a group.
    pub fn group_members(&self, group: GroupId) -> &[AgentId] {
        &self.groups[group.index()].members
    }

    /// The simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The always-on digest of every packet event processed so far.
    pub fn trace_digest(&self) -> &TraceDigest {
        &self.digest
    }

    /// The packet arena (diagnostics: live packet population, peak
    /// capacity).
    pub fn arena(&self) -> &PacketArena {
        &self.arena
    }

    fn alloc_uid(&mut self) -> u64 {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    fn trace(&self, event: &TraceEvent<'_>) {
        if let Some(tracer) = &self.tracer {
            tracer.borrow_mut().trace(self.now, event);
        }
    }

    /// Inject the packet behind `handle` at `channel`: fault-check, then
    /// transmit immediately if the transmitter is idle, otherwise enqueue.
    /// On any drop the arena slot is freed here.
    fn offer(&mut self, channel: ChannelId, handle: PacketHandle) {
        let now = self.now;
        let (uid, is_data) = {
            let p = self.arena.get(handle);
            (p.uid, p.segment.is_data())
        };
        let ch = &mut self.channels[channel.index()];
        ch.stats.offered += 1;

        if let Some(fault) = ch.fault.as_mut() {
            if fault.should_drop(is_data, &mut self.rng) {
                ch.stats.record_drop(crate::queue::DropReason::Fault);
                let qlen = ch.queue.len();
                self.digest
                    .record_drop(now, channel, uid, crate::queue::DropReason::Fault, qlen);
                if self.tracer.is_some() {
                    self.trace(&TraceEvent::Drop {
                        channel,
                        packet: self.arena.get(handle),
                        reason: crate::queue::DropReason::Fault,
                        qlen,
                    });
                }
                self.arena.remove(handle);
                return;
            }
        }

        let ch = &mut self.channels[channel.index()];
        if !ch.busy {
            debug_assert!(ch.queue.is_empty(), "idle transmitter with queued packets");
            ch.stats.accepted += 1;
            self.start_tx(channel, handle);
        } else {
            match ch.queue.enqueue(handle, now, &mut self.rng) {
                Enqueue::Accepted => {
                    ch.stats.accepted += 1;
                    let qlen = ch.queue.len();
                    ch.stats.record_qlen(now, qlen);
                    self.digest.record_enqueue(now, channel, uid, qlen);
                    if self.tracer.is_some() {
                        self.trace(&TraceEvent::Enqueue {
                            channel,
                            packet: self.arena.get(handle),
                            qlen,
                        });
                    }
                }
                Enqueue::Dropped(handle, reason) => {
                    ch.stats.record_drop(reason);
                    let qlen = ch.queue.len();
                    self.digest.record_drop(now, channel, uid, reason, qlen);
                    if self.tracer.is_some() {
                        self.trace(&TraceEvent::Drop {
                            channel,
                            packet: self.arena.get(handle),
                            reason,
                            qlen,
                        });
                    }
                    self.arena.remove(handle);
                }
            }
        }
    }

    /// Begin transmitting the packet behind `handle` on `channel`.
    fn start_tx(&mut self, channel: ChannelId, handle: PacketHandle) {
        let now = self.now;
        let (uid, size_bytes) = {
            let p = self.arena.get(handle);
            (p.uid, p.size_bytes)
        };
        let ch = &mut self.channels[channel.index()];
        debug_assert!(!ch.busy, "transmitter already busy");
        ch.busy = true;
        let service = ch.service_time(size_bytes);
        ch.stats.record_tx_begin(now);
        let qlen = ch.queue.len();
        self.digest.record_tx_start(now, channel, uid, qlen);
        if self.tracer.is_some() {
            self.trace(&TraceEvent::TxStart {
                channel,
                packet: self.arena.get(handle),
                qlen,
            });
        }
        self.calendar.schedule(
            now + service,
            EventKind::TxComplete {
                channel,
                packet: handle,
            },
        );
    }

    /// The transmitter on `channel` finished serializing the packet.
    fn complete_tx(&mut self, channel: ChannelId, handle: PacketHandle) {
        let now = self.now;
        let size_bytes = self.arena.get(handle).size_bytes;
        let ch = &mut self.channels[channel.index()];
        ch.stats.record_tx_end(now);
        ch.stats.transmitted += 1;
        ch.stats.bytes_transmitted += size_bytes as u64;
        let to = ch.to;
        let delay = ch.prop_delay;
        self.calendar.schedule(
            now + delay,
            EventKind::Arrive {
                node: to,
                packet: handle,
            },
        );

        // Pull the next packet out of the buffer, if any.
        let ch = &mut self.channels[channel.index()];
        ch.busy = false;
        if let Some(next) = ch.queue.dequeue(now) {
            let qlen = ch.queue.len();
            ch.stats.record_qlen(now, qlen);
            self.start_tx(channel, next);
        }
    }
}

/// The handle an agent uses to act on the world from inside a callback.
pub struct Context<'w> {
    world: &'w mut World,
    /// The agent being called.
    pub agent: AgentId,
}

impl<'w> Context<'w> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The simulation RNG (the *only* randomness source agents may use).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.world.rng
    }

    /// Send a packet. It enters the network at this agent's node, after the
    /// agent's configured random processing overhead (if any). Returns the
    /// packet uid.
    pub fn send(&mut self, dest: Dest, size_bytes: u32, segment: Segment) -> u64 {
        let uid = self.world.alloc_uid();
        let meta = &self.world.agent_meta[self.agent.index()];
        let node = meta.node;
        let overhead = meta.send_overhead;
        let delay = if overhead.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.world.rng.gen_range(0..=overhead.as_nanos()))
        };
        // Order-preserving jitter: never inject before a previously sent
        // packet of the same agent.
        let at = (self.world.now + delay).max(meta.last_injection);
        self.world.agent_meta[self.agent.index()].last_injection = at;
        let packet = Packet {
            uid,
            src: self.agent,
            dest,
            size_bytes,
            segment,
            sent_at: self.world.now,
        };
        let handle = self.world.arena.insert(packet);
        self.world.calendar.schedule(
            at,
            EventKind::Arrive {
                node,
                packet: handle,
            },
        );
        uid
    }

    /// Arm a timer to fire after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.world.now + delay;
        self.world.calendar.schedule(
            at,
            EventKind::Timer {
                agent: self.agent,
                token,
            },
        );
    }

    /// Arm a timer at an absolute instant.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.world.now, "timer set in the past");
        self.world.calendar.schedule(
            at.max(self.world.now),
            EventKind::Timer {
                agent: self.agent,
                token,
            },
        );
    }

    /// Number of members in a multicast group (the RLA sender sizes its
    /// receiver set with this at startup).
    pub fn group_size(&self, group: GroupId) -> usize {
        self.world.groups[group.index()].members.len()
    }

    /// The members of a multicast group.
    pub fn group_members(&self, group: GroupId) -> &[AgentId] {
        self.world.group_members(group)
    }
}

/// The simulator: a world plus the transport agents living in it.
pub struct Engine {
    world: World,
    agents: Vec<Box<dyn Agent>>,
}

impl Engine {
    /// A fresh, empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            world: World::new(seed),
            agents: Vec::new(),
        }
    }

    /// Read-only world access.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (topology construction, fault configuration).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// Install a tracer. The caller keeps its own `Rc` handle to read the
    /// trace back after the run.
    pub fn set_tracer(&mut self, tracer: Rc<RefCell<dyn Tracer>>) {
        self.world.tracer = Some(tracer);
    }

    /// The always-on digest of every packet event this engine processed.
    pub fn trace_digest(&self) -> &TraceDigest {
        self.world.trace_digest()
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from(self.world.nodes.len());
        self.world.nodes.push(Node::new(id, name));
        id
    }

    /// Add a full-duplex link between `a` and `b`: two independent
    /// channels, each with its own buffer built from `queue_cfg`. Returns
    /// `(a→b, b→a)`.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> (ChannelId, ChannelId) {
        let ab = self.add_channel(a, b, bandwidth_bps, prop_delay, queue_cfg);
        let ba = self.add_channel(b, a, bandwidth_bps, prop_delay, queue_cfg);
        (ab, ba)
    }

    /// Add a single directed channel (for asymmetric links).
    pub fn add_channel(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> ChannelId {
        assert!(from != to, "self-loop channels are not allowed");
        let id = ChannelId::from(self.world.channels.len());
        self.world.channels.push(Channel::new(
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            queue_cfg,
        ));
        self.world.nodes[from.index()].out_channels.push(id);
        id
    }

    /// Attach a fault injector to a channel.
    pub fn set_fault(&mut self, channel: ChannelId, fault: FaultInjector) {
        self.world.channels[channel.index()].fault = Some(fault);
    }

    /// Attach an agent to `node`. The agent does nothing until
    /// [`Engine::start_agent_at`] schedules its start event.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        assert!(node.index() < self.world.nodes.len(), "unknown node");
        let id = AgentId::from(self.agents.len());
        self.agents.push(agent);
        self.world.agent_meta.push(AgentMeta {
            node,
            send_overhead: SimDuration::ZERO,
            last_injection: SimTime::ZERO,
        });
        id
    }

    /// Configure the agent's uniform random per-packet send overhead
    /// (phase-effect elimination; see §3.1 of the paper). `max` should be
    /// the bottleneck service time of the agent's data packets.
    pub fn set_send_overhead(&mut self, agent: AgentId, max: SimDuration) {
        self.world.agent_meta[agent.index()].send_overhead = max;
    }

    /// Create a multicast group.
    pub fn new_group(&mut self) -> GroupId {
        let id = GroupId::from(self.world.groups.len());
        self.world.groups.push(Group::default());
        id
    }

    /// Add `agent` to `group`'s receiver set.
    pub fn join_group(&mut self, group: GroupId, agent: AgentId) {
        let g = &mut self.world.groups[group.index()];
        if !g.members.contains(&agent) {
            g.members.push(agent);
        }
    }

    /// Remove `agent` from `group`'s receiver set; returns `false` when it
    /// was not a member. The distribution tree is untouched — call
    /// [`Engine::build_group_tree`] afterwards so in-flight multicast stops
    /// fanning out to pruned branches.
    pub fn leave_group(&mut self, group: GroupId, agent: AgentId) -> bool {
        let g = &mut self.world.groups[group.index()];
        match g.members.iter().position(|&m| m == agent) {
            Some(i) => {
                g.members.remove(i);
                true
            }
            None => false,
        }
    }

    /// Compute all-pairs unicast next-hop routes with BFS (all links are
    /// one hop). Call after the topology is final and before running.
    pub fn compute_routes(&mut self) {
        let n = self.world.nodes.len();
        // Adjacency: (neighbor, channel) per node.
        let adj: Vec<Vec<(NodeId, ChannelId)>> = self
            .world
            .nodes
            .iter()
            .map(|node| {
                node.out_channels
                    .iter()
                    .map(|&ch| (self.world.channels[ch.index()].to, ch))
                    .collect()
            })
            .collect();

        for src in 0..n {
            let mut first_hop: Vec<Option<ChannelId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            visited[src] = true;
            // Seed the BFS with src's direct neighbours, remembering which
            // channel reached them; descendants inherit that first hop.
            for &(nb, ch) in &adj[src] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    first_hop[nb.index()] = Some(ch);
                    queue.push_back(nb);
                }
            }
            while let Some(u) = queue.pop_front() {
                let via = first_hop[u.index()];
                for &(nb, _) in &adj[u.index()] {
                    if !visited[nb.index()] {
                        visited[nb.index()] = true;
                        first_hop[nb.index()] = via;
                        queue.push_back(nb);
                    }
                }
            }
            self.world.nodes[src].routes = first_hop;
        }
    }

    /// Build the source-based distribution tree for `group`, rooted at the
    /// node of `root_agent`. Requires routes (call [`Engine::compute_routes`]
    /// first) and the full member list.
    pub fn build_group_tree(&mut self, group: GroupId, root: NodeId) {
        let n = self.world.nodes.len();
        let members = self.world.groups[group.index()].members.clone();
        let mut forward: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut members_at: Vec<Vec<AgentId>> = vec![Vec::new(); n];

        for &member in &members {
            let target = self.world.agent_meta[member.index()].node;
            members_at[target.index()].push(member);
            let mut cur = root;
            let mut hops = 0;
            while cur != target {
                let ch = self.world.nodes[cur.index()]
                    .route_to(target)
                    .unwrap_or_else(|| {
                        panic!("group member at {target} unreachable from tree root {root}")
                    });
                if !forward[cur.index()].contains(&ch) {
                    forward[cur.index()].push(ch);
                }
                cur = self.world.channels[ch.index()].to;
                hops += 1;
                assert!(hops <= n, "routing loop while building multicast tree");
            }
        }

        let g = &mut self.world.groups[group.index()];
        g.root = Some(root);
        g.forward = forward;
        g.members_at = members_at;
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Schedule `agent`'s `on_start` at time `at`.
    pub fn start_agent_at(&mut self, agent: AgentId, at: SimTime) {
        self.world.calendar.schedule(at, EventKind::Start { agent });
    }

    /// Run until the calendar is exhausted or `deadline` is reached; the
    /// clock ends at exactly `deadline` if the calendar outlives it.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(event) = self.world.calendar.pop_before(deadline) {
            debug_assert!(event.at >= self.world.now, "time ran backwards");
            self.world.now = event.at;
            self.dispatch(event.kind);
        }
        if deadline > self.world.now {
            self.world.now = deadline;
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.world.now + d;
        self.run_until(deadline);
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TxComplete { channel, packet } => self.world.complete_tx(channel, packet),
            EventKind::Arrive { node, packet } => self.arrive(node, packet),
            EventKind::Timer { agent, token } => {
                let mut ctx = Context {
                    world: &mut self.world,
                    agent,
                };
                self.agents[agent.index()].on_timer(token, &mut ctx);
            }
            EventKind::Start { agent } => {
                let mut ctx = Context {
                    world: &mut self.world,
                    agent,
                };
                self.agents[agent.index()].on_start(&mut ctx);
            }
        }
    }

    fn arrive(&mut self, node: NodeId, handle: PacketHandle) {
        let (uid, dest) = {
            let p = self.world.arena.get(handle);
            (p.uid, p.dest)
        };
        self.world.digest.record_arrive(self.world.now, node, uid);
        if self.world.tracer.is_some() {
            self.world.trace(&TraceEvent::Arrive {
                node,
                packet: self.world.arena.get(handle),
            });
        }
        match dest {
            Dest::Agent(agent) => {
                let target_node = self.world.agent_meta[agent.index()].node;
                if target_node == node {
                    self.deliver(agent, handle);
                } else {
                    let ch = self.world.nodes[node.index()]
                        .route_to(target_node)
                        .unwrap_or_else(|| {
                            panic!("no route from {node} toward {target_node} for {agent}")
                        });
                    self.world.offer(ch, handle);
                }
            }
            Dest::Group(group) => {
                // Fan out through reusable scratch buffers; replicate via
                // the arena, letting the last copy reuse the original slot.
                let mut forwards = std::mem::take(&mut self.world.fwd_scratch);
                let mut locals = std::mem::take(&mut self.world.member_scratch);
                forwards.clear();
                locals.clear();
                let g = &self.world.groups[group.index()];
                debug_assert!(
                    g.root.is_some(),
                    "group packet before build_group_tree was called"
                );
                if let Some(f) = g.forward.get(node.index()) {
                    forwards.extend_from_slice(f);
                }
                if let Some(m) = g.members_at.get(node.index()) {
                    locals.extend_from_slice(m);
                }
                let total = forwards.len() + locals.len();
                let mut k = 0;
                for &ch in &forwards {
                    k += 1;
                    let h = if k == total {
                        handle
                    } else {
                        self.world.arena.duplicate(handle)
                    };
                    self.world.offer(ch, h);
                }
                for &agent in &locals {
                    k += 1;
                    let h = if k == total {
                        handle
                    } else {
                        self.world.arena.duplicate(handle)
                    };
                    self.deliver(agent, h);
                }
                if total == 0 {
                    // A tree node with nothing downstream: the packet ends
                    // here.
                    self.world.arena.remove(handle);
                }
                self.world.fwd_scratch = forwards;
                self.world.member_scratch = locals;
            }
        }
    }

    fn deliver(&mut self, agent: AgentId, handle: PacketHandle) {
        let uid = self.world.arena.get(handle).uid;
        self.world.digest.record_deliver(self.world.now, agent, uid);
        if self.world.tracer.is_some() {
            self.world.trace(&TraceEvent::Deliver {
                agent,
                packet: self.world.arena.get(handle),
            });
        }
        let packet = self.world.arena.remove(handle);
        let mut ctx = Context {
            world: &mut self.world,
            agent,
        };
        self.agents[agent.index()].on_packet(packet, &mut ctx);
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Downcast an agent to its concrete type for post-run inspection.
    pub fn agent_as<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents[id.index()].as_any().downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn agent_as_mut<T: 'static>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents[id.index()].as_any_mut().downcast_mut::<T>()
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Sink;
    use crate::queue::QueueConfig;

    /// An agent that fires `count` fixed-size packets at a destination as
    /// fast as the engine lets it (all injected at start).
    struct Blaster {
        dest: Dest,
        count: u32,
        size: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.dest, self.size, Segment::Raw);
            }
        }
        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_world(qcfg: &QueueConfig) -> (Engine, AgentId, AgentId, ChannelId) {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        let (ab, _) = e.add_link(a, b, 8_000_000, SimDuration::from_millis(10), qcfg);
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 5,
                size: 1000,
            }),
        );
        e.compute_routes();
        (e, blaster, sink, ab)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 5);
        assert_eq!(s.bytes, 5000);
        assert_eq!(e.world().channel(ab).stats.transmitted, 5);
    }

    #[test]
    fn serialization_and_propagation_delays_add_up() {
        // 1000 B at 8 Mbps = 1 ms serialization; 10 ms propagation.
        // 5 back-to-back packets: the last arrives at 5*1ms + 10ms = 15 ms.
        let (mut e, blaster, sink, _) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_millis(14));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 4, "only four packets can have arrived by 14ms");
        e.run_until(SimTime::from_millis(15));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 5);
    }

    #[test]
    fn utilization_at_a_mid_transmission_deadline_counts_elapsed_time_only() {
        // 1000 B at 8 Mbps = 1 ms serialization. The blaster starts at
        // t=1ms, so at a 1.5ms deadline the first packet is half-sent:
        // 0.5ms of busy time over 1.5ms of run = 1/3. Charging the full
        // service time at tx start (the old accounting) would claim 2/3.
        let (mut e, blaster, _, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::from_millis(1));
        e.run_until(SimTime::from_millis(1) + SimDuration::from_micros(500));
        let u = e.world().channel(ab).stats.utilization(e.now());
        assert!((u - 1.0 / 3.0).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn droptail_overflow_loses_excess() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        let (ab, _) = e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::DropTail { limit: 3 },
        );
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 10,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        // 10 injected simultaneously: 1 in service + 3 buffered survive.
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 4);
        assert_eq!(e.world().channel(ab).stats.overflow_drops, 6);
    }

    #[test]
    fn multihop_routing_works() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let m = e.add_node("m");
        let b = e.add_node("b");
        e.add_link(
            a,
            m,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        e.add_link(
            m,
            b,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 3,
                size: 500,
            }),
        );
        e.compute_routes();
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 3);
    }

    #[test]
    fn multicast_replicates_to_all_members() {
        // Star: root -> g -> {l1, l2, l3}; one packet must reach all three.
        let mut e = Engine::new(1);
        let root = e.add_node("root");
        let g = e.add_node("g");
        let leaves: Vec<NodeId> = (0..3).map(|i| e.add_node(format!("l{i}"))).collect();
        e.add_link(
            root,
            g,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        for &l in &leaves {
            e.add_link(
                g,
                l,
                8_000_000,
                SimDuration::from_millis(1),
                &QueueConfig::paper_droptail(),
            );
        }
        let group = e.new_group();
        let sinks: Vec<AgentId> = leaves
            .iter()
            .map(|&l| {
                let s = e.add_agent(l, Box::new(Sink::default()));
                e.join_group(group, s);
                s
            })
            .collect();
        let blaster = e.add_agent(
            root,
            Box::new(Blaster {
                dest: Dest::Group(group),
                count: 7,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.build_group_tree(group, root);
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        for &s in &sinks {
            let sink: &Sink = e.agent_as(s).unwrap();
            assert_eq!(sink.received, 7);
        }
        // The root->g hop carries each packet exactly once (replication
        // happens at the branch point g, not at the source).
        let root_out = e.world().node(root).out_channels[0];
        assert_eq!(e.world().channel(root_out).stats.transmitted, 7);
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_red());
            let _ = seed;
            e.start_agent_at(blaster, SimTime::ZERO);
            e.run_until(SimTime::from_secs(2));
            let s: &Sink = e.agent_as(sink).unwrap();
            (s.received, e.world().channel(ab).stats.transmitted)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerAgent {
            fired: Vec<u64>,
        }
        impl Agent for TimerAgent {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_>) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let a = e.add_agent(n, Box::new(TimerAgent { fired: vec![] }));
        e.start_agent_at(a, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let ta: &TimerAgent = e.agent_as(a).unwrap();
        assert_eq!(ta.fired, vec![1, 2, 3]);
    }

    #[test]
    fn send_overhead_never_reorders_an_agents_packets() {
        // Random processing overhead models a host's (serialized) protocol
        // stack: it delays packets but must not permute them, or receivers
        // would see phantom SACK holes.
        struct OrderedSink {
            uids: Vec<u64>,
        }
        impl Agent for OrderedSink {
            fn on_packet(&mut self, packet: Packet, _ctx: &mut Context<'_>) {
                self.uids.push(packet.uid);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut e = Engine::new(99);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            1_000_000_000, // fast link: ordering is decided at injection
            SimDuration::from_millis(1),
            &QueueConfig::DropTail { limit: 10_000 },
        );
        let sink = e.add_agent(b, Box::new(OrderedSink { uids: vec![] }));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 500,
                size: 100,
            }),
        );
        e.compute_routes();
        e.set_send_overhead(blaster, SimDuration::from_millis(5));
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(10));
        let s: &OrderedSink = e.agent_as(sink).unwrap();
        assert_eq!(s.uids.len(), 500);
        let mut sorted = s.uids.clone();
        sorted.sort_unstable();
        assert_eq!(s.uids, sorted, "jitter reordered the agent's packets");
    }

    #[test]
    fn fault_injection_drops_everything() {
        let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.set_fault(ab, FaultInjector::new(1.0));
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 0);
        assert_eq!(e.world().channel(ab).stats.fault_drops, 5);
    }

    #[test]
    fn clock_lands_exactly_on_deadline() {
        let (mut e, blaster, _, _) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(42));
        assert_eq!(e.now(), SimTime::from_secs(42));
    }
}
