//! The simulation engine: world state, event dispatch, agent context.
//!
//! Ownership layout: the [`Engine`] owns a [`World`] and, in a *separate
//! field*, the boxed [`Agent`]s. The world itself is split for the
//! domain-partitioned executor: a read-only [`Shared`] half (nodes,
//! groups, routes, the [`DomainMap`]) and one [`DomainShard`] per domain
//! holding everything a domain mutates while it runs — its calendar, RNG,
//! channels, packet arena and trace digest. Agent callbacks receive a
//! [`Context`] borrowing only the shared state and the agent's own shard,
//! so an agent can schedule sends and timers while the engine still holds
//! `&mut` to the agent itself — no `RefCell`, no unsafe.
//!
//! # Execution modes
//!
//! * **Classic sequential** — an unpartitioned engine has exactly one
//!   domain and [`Engine::run_until`] is the familiar single event loop,
//!   bit-identical to the engine before partitioning existed. Every unit
//!   test and every caller that never calls [`Engine::partition`] lives
//!   here.
//! * **Partitioned** — after [`Engine::partition`] the event loop becomes
//!   an epoch executor: every domain advances to the next absolute barrier
//!   (a multiple of the [`DomainMap`] lookahead, see
//!   [`crate::shard::grid_next`]), then the epoch's boundary packets are
//!   exchanged in one batch, each scheduled directly under its canonical
//!   *(send epoch, source region, send order)* calendar key. With
//!   [`Engine::set_workers`] above 1 the domains run on scoped threads;
//!   the digests are bit-identical at every worker count and under any
//!   `run_until` stepping, because the partition, the per-domain RNG
//!   streams and the keyed exchange order depend only on the topology,
//!   the seed and θ.
//!
//! Determinism: per-domain seeded RNGs, integer time, and FIFO
//! tie-breaking in each calendar make runs bit-reproducible for a given
//! seed.
//!
//! Hot path: packets live in per-domain [`PacketArena`]s and move through
//! the calendar, queues and multicast fan-out as copyable
//! [`PacketHandle`]s; the packet struct itself is only touched at
//! injection, at trace points, at domain crossings (where it moves between
//! arenas by value) and at delivery. Each calendar is a hierarchical timer
//! wheel ([`Calendar`]) driven through `pop_before(deadline)`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Barrier, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::agent::Agent;
use crate::arena::{PacketArena, PacketHandle};
use crate::event::{Calendar, EventKind};
use crate::fault::FaultInjector;
use crate::id::{AgentId, ChannelId, GroupId, NodeId};
use crate::link::Channel;
use crate::node::{Group, Node};
use crate::packet::{Dest, Packet};
use crate::queue::{Enqueue, QueueConfig};
use crate::shard::{domain_seed, grid_next, BoundaryMsg, DomainMap};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDigest, TraceEvent, Tracer};
use crate::wire::Segment;

/// Per-agent engine-side metadata.
#[derive(Debug)]
struct AgentMeta {
    /// The node the agent is attached to.
    node: NodeId,
    /// Local slot (within the owning shard's `regions`) of the agent's
    /// region: the RNG stream, uid counter and digest lane its packets
    /// charge against.
    region: u32,
    /// Maximum of the uniform random per-packet processing delay added at
    /// send time (the paper's phase-effect eliminator, §3.1). Zero disables
    /// it.
    send_overhead: SimDuration,
    /// Injection time of this agent's most recent packet. Random overhead
    /// must not reorder an agent's own packets (host processing is a
    /// queue, not a scatter), so later sends enter the network no earlier
    /// than this.
    last_injection: SimTime,
}

/// One conservative-lookahead *region*'s identity state. Regions are the
/// components of the fine θ-partition — a pure function of the topology,
/// the seed and θ, never of the shard count — and each owns the RNG
/// stream, uid counter, digest lane and boundary-send counter for its
/// nodes. Execution domains ([`DomainShard`]) group one or more regions
/// (the cost-aware merge pass), so merging never moves a random draw, a
/// uid or a digest record from one stream to another: digests stay
/// bit-identical at every shard count.
struct RegionStream {
    /// Global region id (index into the fine partition).
    id: u32,
    rng: StdRng,
    next_uid: u64,
    /// High bits stamped onto this region's packet uids so uids stay
    /// globally unique without cross-region coordination. Zero for the
    /// unpartitioned engine (uids identical to the classic counter).
    uid_tag: u64,
    /// Always-on fingerprint of this region's packet-event stream (see
    /// [`TraceDigest`]); merged across regions in region order by
    /// [`World::trace_digest`].
    digest: TraceDigest,
    /// Send-order counter for this region's cross-region packets within
    /// the current θ-grid epoch: the low component of the canonical
    /// boundary key. Reset at each epoch barrier — same-instant ties
    /// across epochs are already separated by the key's epoch bits.
    boundary_seq: u64,
}

impl RegionStream {
    fn new(id: u32, rng: StdRng, uid_tag: u64) -> Self {
        RegionStream {
            id,
            rng,
            next_uid: 0,
            uid_tag,
            digest: TraceDigest::new(),
            boundary_seq: 0,
        }
    }

    fn alloc_uid(&mut self) -> u64 {
        let uid = self.uid_tag | self.next_uid;
        self.next_uid += 1;
        uid
    }
}

/// The read-only half of the world: topology, routing, groups and the
/// domain partition. During a run every domain reads this concurrently;
/// it is only mutated between runs (topology growth, group churn).
pub struct Shared {
    nodes: Vec<Node>,
    groups: Vec<Group>,
    /// The base RNG seed; per-region streams derive from it.
    seed: u64,
    /// The fine θ-partition: the *regions* that own RNG/uid/digest
    /// identity. A pure function of the topology, the seed and θ. Its
    /// lookahead is the exchange grid at every shard count.
    regions: DomainMap,
    /// The execution partition (regions coalesced by the cost-aware merge
    /// pass): one [`DomainShard`] per execution domain. Equal to `regions`
    /// for the classic fine partition.
    dmap: DomainMap,
    /// Global region id → (owning shard, slot within that shard's
    /// `regions`).
    region_loc: Vec<(u32, u32)>,
    /// Global node id → local region slot within its owning shard.
    node_region_slot: Vec<u32>,
    /// Global channel id → (owning shard, index within that shard). A
    /// channel belongs to the shard of its `from` node — the only shard
    /// that ever transmits on it.
    chan_loc: Vec<(u32, u32)>,
    /// Global agent id → (home shard, index within that shard).
    agent_loc: Vec<(u32, u32)>,
    /// Global agent id → home node (read from any domain when routing
    /// unicast traffic toward the agent).
    agent_nodes: Vec<NodeId>,
}

/// Everything one execution domain mutates while it runs: its slice of
/// simulated time, calendar, channels, packet arena, and the identity
/// streams of the regions it executes.
pub struct DomainShard {
    /// This shard's execution-domain index.
    domain: u32,
    now: SimTime,
    calendar: Calendar,
    channels: Vec<Channel>,
    /// Local region slot per channel (parallel to `channels`): the region
    /// of the channel's `from` node.
    chan_region: Vec<u32>,
    agent_meta: Vec<AgentMeta>,
    /// Identity streams of the regions executed here, ordered by global
    /// region id.
    regions: Vec<RegionStream>,
    /// Every in-flight packet's single home; events and queues hold
    /// [`PacketHandle`]s into it.
    arena: PacketArena,
    /// Packets that crossed out of this shard since the last epoch
    /// barrier, in send order.
    outbox: Vec<BoundaryMsg>,
    /// Reusable buffers for multicast fan-out (avoids a pair of Vec
    /// allocations per group arrival).
    fwd_scratch: Vec<ChannelId>,
    member_scratch: Vec<AgentId>,
}

impl DomainShard {
    fn new(domain: u32) -> Self {
        DomainShard {
            domain,
            now: SimTime::ZERO,
            calendar: Calendar::new(),
            channels: Vec::new(),
            chan_region: Vec::new(),
            agent_meta: Vec::new(),
            regions: Vec::new(),
            arena: PacketArena::new(),
            outbox: Vec::new(),
            fwd_scratch: Vec::new(),
            member_scratch: Vec::new(),
        }
    }

    /// Total events recorded across this shard's region digests.
    fn events(&self) -> u64 {
        self.regions.iter().map(|r| r.digest.events()).sum()
    }

    /// Enter a θ-grid epoch: stamp the calendar and restart each region's
    /// per-epoch boundary send counter. Re-entering the same epoch (a
    /// `run_until` that stopped mid-epoch) is a no-op so the counters
    /// continue where they left off.
    fn begin_epoch(&mut self, epoch: u64) {
        if self.calendar.epoch() == epoch {
            return;
        }
        self.calendar.set_epoch(epoch);
        for r in &mut self.regions {
            r.boundary_seq = 0;
        }
    }

    /// Deliver an incoming boundary packet: it enters this shard's arena
    /// and goes straight into the calendar under its canonical
    /// *(send epoch, source region, send order)* key — the key alone fixes
    /// its same-instant dispatch position, so neither the insertion
    /// sequence (nondeterministic under the threaded exchange) nor the
    /// shard count can perturb the order.
    fn accept_boundary(&mut self, msg: BoundaryMsg) {
        let handle = self.arena.insert(msg.packet);
        self.calendar.schedule_boundary(
            msg.at,
            msg.region,
            msg.seq,
            EventKind::Arrive {
                node: msg.node,
                packet: handle,
            },
        );
    }
}

/// Everything in the simulated world except the agents' protocol state.
pub struct World {
    shared: Shared,
    shards: Vec<DomainShard>,
    tracer: Option<Rc<RefCell<dyn Tracer>>>,
    /// Worker threads for the partitioned executor (1 = run the epochs
    /// inline on the calling thread).
    workers: usize,
    /// When armed, the inline epoch executor appends one row per epoch:
    /// the number of events each domain processed in that epoch. Feeds the
    /// parallel bench's critical-path speedup model.
    epoch_loads: Option<Vec<Vec<u64>>>,
}

impl World {
    fn new(seed: u64) -> Self {
        let mut shard0 = DomainShard::new(0);
        // The unpartitioned engine is one region with the classic stream:
        // seeded straight from the base seed, uid tag zero.
        shard0
            .regions
            .push(RegionStream::new(0, StdRng::seed_from_u64(seed), 0));
        World {
            shared: Shared {
                nodes: Vec::new(),
                groups: Vec::new(),
                seed,
                regions: DomainMap::single(),
                dmap: DomainMap::single(),
                region_loc: vec![(0, 0)],
                node_region_slot: Vec::new(),
                chan_loc: Vec::new(),
                agent_loc: Vec::new(),
                agent_nodes: Vec::new(),
            },
            shards: vec![shard0],
            tracer: None,
            workers: 1,
            epoch_loads: None,
        }
    }

    /// Current simulation time. Between `run_until` calls every domain
    /// agrees on this; within a partitioned run domains advance epoch by
    /// epoch.
    pub fn now(&self) -> SimTime {
        self.shards[0].now
    }

    /// Immutable channel access (routed to the owning domain's shard).
    pub fn channel(&self, id: ChannelId) -> &Channel {
        let (d, li) = self.shared.chan_loc[id.index()];
        &self.shards[d as usize].channels[li as usize]
    }

    /// Mutable channel access (configure faults, inspect queues).
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut Channel {
        let (d, li) = self.shared.chan_loc[id.index()];
        &mut self.shards[d as usize].channels[li as usize]
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.shared.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.shared.nodes.len()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.shared.chan_loc.len()
    }

    /// The node an agent is attached to.
    pub fn agent_node(&self, agent: AgentId) -> NodeId {
        self.shared.agent_nodes[agent.index()]
    }

    /// The members of a group.
    pub fn group_members(&self, group: GroupId) -> &[AgentId] {
        &self.shared.groups[group.index()].members
    }

    /// The region-0 simulation RNG. A partitioned world runs one
    /// independent stream per region; out-of-band draws (topology
    /// construction, test scaffolding, scenario dynamics) use region 0's.
    pub fn rng(&mut self) -> &mut StdRng {
        // Region 0 always lives in shard 0, slot 0: both numberings start
        // at node 0.
        &mut self.shards[0].regions[0].rng
    }

    /// The merged digest of every packet event processed so far: the
    /// per-region digests folded in global region order. For a
    /// single-region world this is exactly that region's digest. The fold
    /// order — and every lane in it — depends only on the topology, the
    /// seed and θ, so the result is bit-identical at every shard and
    /// worker count.
    pub fn trace_digest(&self) -> TraceDigest {
        if self.shared.region_loc.len() == 1 {
            return self.shards[0].regions[0].digest.clone();
        }
        let mut merged = TraceDigest::new();
        for &(s, slot) in &self.shared.region_loc {
            merged.absorb(&self.shards[s as usize].regions[slot as usize].digest);
        }
        merged
    }

    /// Number of regions (components of the fine θ-partition; 1 until
    /// [`Engine::partition`]).
    pub fn region_count(&self) -> usize {
        self.shared.region_loc.len()
    }

    /// The domain-0 packet arena (diagnostics: live packet population,
    /// peak capacity). Partitioned worlds keep one arena per domain; see
    /// [`World::live_packets`] for the global population.
    pub fn arena(&self) -> &PacketArena {
        &self.shards[0].arena
    }

    /// Total in-flight packets across all domains (boundary packets in
    /// transit between arenas included).
    pub fn live_packets(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.arena.len() + s.outbox.len())
            .sum()
    }

    /// The domain partition currently in effect.
    pub fn domain_map(&self) -> &DomainMap {
        &self.shared.dmap
    }

    /// Number of domains (1 until [`Engine::partition`]).
    pub fn domain_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the partitioned executor will use.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// The handle an agent uses to act on the world from inside a callback.
/// It sees the shared topology and its own domain's shard — which is all
/// an agent can causally touch within an epoch.
pub struct Context<'w> {
    shared: &'w Shared,
    shard: &'w mut DomainShard,
    /// The agent being called.
    pub agent: AgentId,
    /// The agent's index within its domain.
    agent_local: usize,
}

impl<'w> Context<'w> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.shard.now
    }

    /// The simulation RNG (the *only* randomness source agents may use);
    /// this agent's region stream.
    pub fn rng(&mut self) -> &mut StdRng {
        let r = self.shard.agent_meta[self.agent_local].region as usize;
        &mut self.shard.regions[r].rng
    }

    /// Send a packet. It enters the network at this agent's node, after the
    /// agent's configured random processing overhead (if any). Returns the
    /// packet uid.
    pub fn send(&mut self, dest: Dest, size_bytes: u32, segment: Segment) -> u64 {
        let meta = &self.shard.agent_meta[self.agent_local];
        let node = meta.node;
        let overhead = meta.send_overhead;
        let region = meta.region as usize;
        let uid = self.shard.regions[region].alloc_uid();
        let delay = if overhead.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                self.shard.regions[region]
                    .rng
                    .gen_range(0..=overhead.as_nanos()),
            )
        };
        // Order-preserving jitter: never inject before a previously sent
        // packet of the same agent.
        let at =
            (self.shard.now + delay).max(self.shard.agent_meta[self.agent_local].last_injection);
        self.shard.agent_meta[self.agent_local].last_injection = at;
        let packet = Packet {
            uid,
            src: self.agent,
            dest,
            size_bytes,
            segment,
            sent_at: self.shard.now,
        };
        let handle = self.shard.arena.insert(packet);
        self.shard.calendar.schedule(
            at,
            EventKind::Arrive {
                node,
                packet: handle,
            },
        );
        uid
    }

    /// Arm a timer to fire after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.shard.now + delay;
        self.shard.calendar.schedule(
            at,
            EventKind::Timer {
                agent: self.agent,
                token,
            },
        );
    }

    /// Arm a timer at an absolute instant.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.shard.now, "timer set in the past");
        self.shard.calendar.schedule(
            at.max(self.shard.now),
            EventKind::Timer {
                agent: self.agent,
                token,
            },
        );
    }

    /// Number of members in a multicast group (the RLA sender sizes its
    /// receiver set with this at startup).
    pub fn group_size(&self, group: GroupId) -> usize {
        self.shared.groups[group.index()].members.len()
    }

    /// The members of a multicast group.
    pub fn group_members(&self, group: GroupId) -> &[AgentId] {
        &self.shared.groups[group.index()].members
    }
}

/// One domain's event loop: the shard being advanced, the shared
/// topology, and the slice of agents homed in this domain. This is the
/// unit of work the epoch executor hands to a worker thread.
struct DomainRun<'a> {
    shared: &'a Shared,
    shard: &'a mut DomainShard,
    agents: &'a mut [Box<dyn Agent>],
    tracer: Option<&'a Rc<RefCell<dyn Tracer>>>,
}

impl<'a> DomainRun<'a> {
    /// Local index of a channel owned by this domain.
    #[inline]
    fn chan_index(&self, id: ChannelId) -> usize {
        let (d, li) = self.shared.chan_loc[id.index()];
        debug_assert_eq!(d, self.shard.domain, "channel event in the wrong domain");
        li as usize
    }

    fn trace(&self, event: &TraceEvent<'_>) {
        if let Some(tracer) = self.tracer {
            tracer.borrow_mut().trace(self.shard.now, event);
        }
    }

    /// Run this domain until its calendar is exhausted or `deadline` is
    /// reached; the clock ends at exactly `deadline` if the calendar
    /// outlives it.
    fn run_until(&mut self, deadline: SimTime) {
        while let Some(event) = self.shard.calendar.pop_before(deadline) {
            debug_assert!(event.at >= self.shard.now, "time ran backwards");
            self.shard.now = event.at;
            self.dispatch(event.kind);
        }
        if deadline > self.shard.now {
            self.shard.now = deadline;
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TxComplete { channel, packet } => self.complete_tx(channel, packet),
            EventKind::Arrive { node, packet } => self.arrive(node, packet),
            EventKind::Timer { agent, token } => {
                let local = self.agent_index(agent);
                let mut ctx = Context {
                    shared: self.shared,
                    shard: &mut *self.shard,
                    agent,
                    agent_local: local,
                };
                self.agents[local].on_timer(token, &mut ctx);
            }
            EventKind::Start { agent } => {
                let local = self.agent_index(agent);
                let mut ctx = Context {
                    shared: self.shared,
                    shard: &mut *self.shard,
                    agent,
                    agent_local: local,
                };
                self.agents[local].on_start(&mut ctx);
            }
        }
    }

    /// Local index of an agent homed in this domain.
    #[inline]
    fn agent_index(&self, agent: AgentId) -> usize {
        let (d, li) = self.shared.agent_loc[agent.index()];
        debug_assert_eq!(d, self.shard.domain, "agent event in the wrong domain");
        li as usize
    }

    /// Inject the packet behind `handle` at `channel`: fault-check, then
    /// transmit immediately if the transmitter is idle, otherwise enqueue.
    /// On any drop the arena slot is freed here.
    fn offer(&mut self, channel: ChannelId, handle: PacketHandle) {
        let li = self.chan_index(channel);
        let shard = &mut *self.shard;
        let rslot = shard.chan_region[li] as usize;
        let now = shard.now;
        let (uid, is_data) = {
            let p = shard.arena.get(handle);
            (p.uid, p.segment.is_data())
        };
        let ch = &mut shard.channels[li];
        ch.stats.offered += 1;

        if let Some(fault) = ch.fault.as_mut() {
            if fault.should_drop(is_data, &mut shard.regions[rslot].rng) {
                ch.stats.record_drop(crate::queue::DropReason::Fault);
                let qlen = ch.queue.len();
                shard.regions[rslot].digest.record_drop(
                    now,
                    channel,
                    uid,
                    crate::queue::DropReason::Fault,
                    qlen,
                );
                if self.tracer.is_some() {
                    self.trace(&TraceEvent::Drop {
                        channel,
                        packet: self.shard.arena.get(handle),
                        reason: crate::queue::DropReason::Fault,
                        qlen,
                    });
                }
                self.shard.arena.remove(handle);
                return;
            }
        }

        let ch = &mut shard.channels[li];
        if !ch.busy {
            debug_assert!(ch.queue.is_empty(), "idle transmitter with queued packets");
            ch.stats.accepted += 1;
            self.start_tx(channel, handle);
        } else {
            match ch.queue.enqueue(handle, now, &mut shard.regions[rslot].rng) {
                Enqueue::Accepted => {
                    ch.stats.accepted += 1;
                    let qlen = ch.queue.len();
                    ch.stats.record_qlen(now, qlen);
                    shard.regions[rslot]
                        .digest
                        .record_enqueue(now, channel, uid, qlen);
                    if self.tracer.is_some() {
                        self.trace(&TraceEvent::Enqueue {
                            channel,
                            packet: self.shard.arena.get(handle),
                            qlen,
                        });
                    }
                }
                Enqueue::Dropped(handle, reason) => {
                    ch.stats.record_drop(reason);
                    let qlen = ch.queue.len();
                    shard.regions[rslot]
                        .digest
                        .record_drop(now, channel, uid, reason, qlen);
                    if self.tracer.is_some() {
                        self.trace(&TraceEvent::Drop {
                            channel,
                            packet: self.shard.arena.get(handle),
                            reason,
                            qlen,
                        });
                    }
                    self.shard.arena.remove(handle);
                }
            }
        }
    }

    /// Begin transmitting the packet behind `handle` on `channel`.
    fn start_tx(&mut self, channel: ChannelId, handle: PacketHandle) {
        let li = self.chan_index(channel);
        let shard = &mut *self.shard;
        let rslot = shard.chan_region[li] as usize;
        let now = shard.now;
        let (uid, size_bytes) = {
            let p = shard.arena.get(handle);
            (p.uid, p.size_bytes)
        };
        let ch = &mut shard.channels[li];
        debug_assert!(!ch.busy, "transmitter already busy");
        ch.busy = true;
        let service = ch.service_time(size_bytes);
        ch.stats.record_tx_begin(now);
        let qlen = ch.queue.len();
        shard.regions[rslot]
            .digest
            .record_tx_start(now, channel, uid, qlen);
        if self.tracer.is_some() {
            self.trace(&TraceEvent::TxStart {
                channel,
                packet: self.shard.arena.get(handle),
                qlen,
            });
        }
        self.shard.calendar.schedule(
            now + service,
            EventKind::TxComplete {
                channel,
                packet: handle,
            },
        );
    }

    /// The transmitter on `channel` finished serializing the packet. This
    /// is the only place a packet can leave its region. An intra-region
    /// hop schedules the arrival directly (the classic path). A
    /// cross-region hop takes the canonical boundary path — keyed by its
    /// send epoch, source region and send order — either scheduled
    /// straight into this shard's calendar (same execution domain; the
    /// arena handle is kept, no copy) or moved to the outbox for the
    /// barrier exchange (different shard). The key is a total order
    /// independent of the insertion path, so both roads dispatch the
    /// arrival at exactly the same position and the merge pass never
    /// changes an event sequence.
    fn complete_tx(&mut self, channel: ChannelId, handle: PacketHandle) {
        let li = self.chan_index(channel);
        let shard = &mut *self.shard;
        let rslot = shard.chan_region[li] as usize;
        let now = shard.now;
        let size_bytes = shard.arena.get(handle).size_bytes;
        let ch = &mut shard.channels[li];
        ch.stats.record_tx_end(now);
        ch.stats.transmitted += 1;
        ch.stats.bytes_transmitted += size_bytes as u64;
        let to = ch.to;
        let delay = ch.prop_delay;
        let src_region = shard.regions[rslot].id;
        if self.shared.regions.domain_of(to) == src_region {
            shard.calendar.schedule(
                now + delay,
                EventKind::Arrive {
                    node: to,
                    packet: handle,
                },
            );
        } else {
            let seq = {
                let r = &mut shard.regions[rslot];
                let s = r.boundary_seq;
                r.boundary_seq += 1;
                s
            };
            if self.shared.dmap.domain_of(to) == shard.domain {
                shard.calendar.schedule_boundary(
                    now + delay,
                    src_region,
                    seq,
                    EventKind::Arrive {
                        node: to,
                        packet: handle,
                    },
                );
            } else {
                let packet = shard.arena.remove(handle);
                shard.outbox.push(BoundaryMsg {
                    at: now + delay,
                    node: to,
                    packet,
                    region: src_region,
                    seq,
                });
            }
        }

        // Pull the next packet out of the buffer, if any.
        let ch = &mut shard.channels[li];
        ch.busy = false;
        if let Some(next) = ch.queue.dequeue(now) {
            let qlen = ch.queue.len();
            ch.stats.record_qlen(now, qlen);
            self.start_tx(channel, next);
        }
    }

    fn arrive(&mut self, node: NodeId, handle: PacketHandle) {
        let (uid, dest) = {
            let p = self.shard.arena.get(handle);
            (p.uid, p.dest)
        };
        let rslot = self.shared.node_region_slot[node.index()] as usize;
        self.shard.regions[rslot]
            .digest
            .record_arrive(self.shard.now, node, uid);
        if self.tracer.is_some() {
            self.trace(&TraceEvent::Arrive {
                node,
                packet: self.shard.arena.get(handle),
            });
        }
        match dest {
            Dest::Agent(agent) => {
                let target_node = self.shared.agent_nodes[agent.index()];
                if target_node == node {
                    self.deliver(agent, handle);
                } else {
                    let ch = self.shared.nodes[node.index()]
                        .route_to(target_node)
                        .unwrap_or_else(|| {
                            panic!("no route from {node} toward {target_node} for {agent}")
                        });
                    self.offer(ch, handle);
                }
            }
            Dest::Group(group) => {
                // Fan out through reusable scratch buffers; replicate via
                // the arena, letting the last copy reuse the original slot.
                let mut forwards = std::mem::take(&mut self.shard.fwd_scratch);
                let mut locals = std::mem::take(&mut self.shard.member_scratch);
                forwards.clear();
                locals.clear();
                let g = &self.shared.groups[group.index()];
                debug_assert!(
                    g.root.is_some(),
                    "group packet before build_group_tree was called"
                );
                if let Some(f) = g.forward.get(node.index()) {
                    forwards.extend_from_slice(f);
                }
                if let Some(m) = g.members_at.get(node.index()) {
                    locals.extend_from_slice(m);
                }
                let total = forwards.len() + locals.len();
                let mut k = 0;
                for &ch in &forwards {
                    k += 1;
                    let h = if k == total {
                        handle
                    } else {
                        self.shard.arena.duplicate(handle)
                    };
                    self.offer(ch, h);
                }
                for &agent in &locals {
                    k += 1;
                    let h = if k == total {
                        handle
                    } else {
                        self.shard.arena.duplicate(handle)
                    };
                    self.deliver(agent, h);
                }
                if total == 0 {
                    // A tree node with nothing downstream: the packet ends
                    // here.
                    self.shard.arena.remove(handle);
                }
                self.shard.fwd_scratch = forwards;
                self.shard.member_scratch = locals;
            }
        }
    }

    fn deliver(&mut self, agent: AgentId, handle: PacketHandle) {
        let uid = self.shard.arena.get(handle).uid;
        let local = self.agent_index(agent);
        let rslot = self.shard.agent_meta[local].region as usize;
        self.shard.regions[rslot]
            .digest
            .record_deliver(self.shard.now, agent, uid);
        if self.tracer.is_some() {
            self.trace(&TraceEvent::Deliver {
                agent,
                packet: self.shard.arena.get(handle),
            });
        }
        let packet = self.shard.arena.remove(handle);
        let mut ctx = Context {
            shared: self.shared,
            shard: &mut *self.shard,
            agent,
            agent_local: local,
        };
        self.agents[local].on_packet(packet, &mut ctx);
    }
}

/// The simulator: a world plus the transport agents living in it. Agents
/// are stored per domain, parallel to the world's shards.
pub struct Engine {
    world: World,
    agents: Vec<Vec<Box<dyn Agent>>>,
}

impl Engine {
    /// A fresh, empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            world: World::new(seed),
            agents: vec![Vec::new()],
        }
    }

    /// Read-only world access.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (topology construction, fault configuration).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Install a tracer. The caller keeps its own `Rc` handle to read the
    /// trace back after the run. Tracers are inherently single-threaded:
    /// a partitioned engine accepts one only while
    /// [`Engine::set_workers`] is 1.
    pub fn set_tracer(&mut self, tracer: Rc<RefCell<dyn Tracer>>) {
        self.world.tracer = Some(tracer);
    }

    /// The merged digest of every packet event this engine processed.
    pub fn trace_digest(&self) -> TraceDigest {
        self.world.trace_digest()
    }

    // ------------------------------------------------------------------
    // Domain partitioning
    // ------------------------------------------------------------------

    /// Partition the topology into conservative-lookahead domains along
    /// links whose propagation delay is at least `theta` (default: the
    /// smallest positive link delay — the finest partition the delays
    /// admit; see [`DomainMap::partition`]). Returns the domain count.
    /// Every region becomes its own execution domain; see
    /// [`Engine::partition_merged`] for the cost-aware coalesced form.
    ///
    /// Existing channels, agents and their metadata are redistributed to
    /// their domains; per-region RNG streams are derived from the base
    /// seed. The partition — and with it every digest the engine will
    /// produce — is a pure function of the topology, the seed and θ,
    /// never of the worker count.
    ///
    /// # Panics
    /// If events are already scheduled or packets in flight (partition
    /// the world before starting agents), or if the engine is already
    /// partitioned.
    pub fn partition(&mut self, theta: Option<SimDuration>) -> usize {
        self.do_partition(theta, None, None)
    }

    /// Cost-aware merged partition: compute the fine θ-partition (the
    /// *regions*, which keep their own RNG/uid/digest identity exactly as
    /// under [`Engine::partition`]), then coalesce regions into at most
    /// `target` execution domains along the fastest cut links, balancing
    /// the per-domain load estimate `costs` (one weight per region;
    /// defaults to each region's outbound `bandwidth · fan-out` when
    /// `None`). Returns the execution-domain count.
    ///
    /// `target = 1` collapses the run to a single shard with zero
    /// exchange overhead — intra-region hops take the classic direct
    /// path, cross-region hops defer to a per-barrier batch flush in the
    /// same arena. Digests are bit-identical at every `target`, because
    /// the identity layer (regions) never depends on it.
    pub fn partition_merged(
        &mut self,
        theta: Option<SimDuration>,
        target: usize,
        costs: Option<&[u64]>,
    ) -> usize {
        assert!(target >= 1, "at least one execution domain is required");
        self.do_partition(theta, Some(target), costs)
    }

    fn do_partition(
        &mut self,
        theta: Option<SimDuration>,
        target: Option<usize>,
        costs: Option<&[u64]>,
    ) -> usize {
        assert!(
            !self.world.shared.regions.is_partitioned(),
            "the engine is already partitioned"
        );
        assert_eq!(
            self.world.shards.len(),
            1,
            "the engine is already partitioned"
        );
        {
            let s0 = &self.world.shards[0];
            assert!(
                s0.calendar.is_empty() && s0.arena.is_empty() && s0.now == SimTime::ZERO,
                "partition the world before scheduling events or running"
            );
        }
        let links: Vec<(NodeId, NodeId, SimDuration)> = self.world.shards[0]
            .channels
            .iter()
            .map(|ch| (ch.from, ch.to, ch.prop_delay))
            .collect();
        let node_count = self.world.shared.nodes.len();
        let regions = DomainMap::partition(node_count, &links, theta);
        if !regions.is_partitioned() {
            self.world.shared.regions = DomainMap::single();
            self.world.shared.dmap = DomainMap::single();
            return 1;
        }
        let r_count = regions.domains();

        // The execution partition: regions coalesced toward the target
        // shard count (or the identity when no target was given).
        let dmap = match target {
            None => regions.clone(),
            Some(t) => {
                let default_costs;
                let costs = match costs {
                    Some(c) => c,
                    None => {
                        // Bandwidth·fan-out estimate: each region's event
                        // load scales with the aggregate outbound link
                        // rate of its nodes (links driven at capacity).
                        let mut w = vec![1u64; r_count];
                        for ch in &self.world.shards[0].channels {
                            let r = regions.domain_of(ch.from) as usize;
                            w[r] = w[r].saturating_add(1 + ch.bandwidth_bps / 1_000_000);
                        }
                        default_costs = w;
                        &default_costs
                    }
                };
                regions.merged(&links, t, Some(costs))
            }
        };
        let e_count = dmap.domains();

        let seed = self.world.shared.seed;
        let mut shards: Vec<DomainShard> = (0..e_count as u32).map(DomainShard::new).collect();
        let mut agents: Vec<Vec<Box<dyn Agent>>> = (0..e_count).map(|_| Vec::new()).collect();

        // Region identity streams: region r keeps the same derived seed
        // and uid tag at every execution grouping. Slots within a shard
        // are ordered by global region id.
        let mut exec_of_region = vec![u32::MAX; r_count];
        for n in 0..node_count {
            let r = regions.domain_of(NodeId::from(n)) as usize;
            let e = dmap.domain_of(NodeId::from(n));
            if exec_of_region[r] == u32::MAX {
                exec_of_region[r] = e;
            } else {
                debug_assert_eq!(exec_of_region[r], e, "region split across shards");
            }
        }
        let mut region_loc = vec![(0u32, 0u32); r_count];
        for (r, &e) in exec_of_region.iter().enumerate() {
            let shard = &mut shards[e as usize];
            region_loc[r] = (e, shard.regions.len() as u32);
            shard.regions.push(RegionStream::new(
                r as u32,
                StdRng::seed_from_u64(domain_seed(seed, r as u32)),
                (r as u64) << 48,
            ));
        }
        let node_region_slot: Vec<u32> = (0..node_count)
            .map(|n| region_loc[regions.domain_of(NodeId::from(n)) as usize].1)
            .collect();

        let mut old = std::mem::take(&mut self.world.shards);
        let old_shard = old.pop().expect("one shard before partition");
        // Channels move to the shard of their upstream node, in global id
        // order, so local indices are reproducible.
        for (ch, loc) in old_shard
            .channels
            .into_iter()
            .zip(self.world.shared.chan_loc.iter_mut())
        {
            let d = dmap.domain_of(ch.from);
            let shard = &mut shards[d as usize];
            *loc = (d, shard.channels.len() as u32);
            shard
                .chan_region
                .push(region_loc[regions.domain_of(ch.from) as usize].1);
            shard.channels.push(ch);
        }
        // Agents (and their metadata) move with their home node, in global
        // agent order.
        let old_agents = std::mem::take(&mut self.agents[0]);
        for ((agent, mut meta), loc) in old_agents
            .into_iter()
            .zip(old_shard.agent_meta)
            .zip(self.world.shared.agent_loc.iter_mut())
        {
            let d = dmap.domain_of(meta.node);
            meta.region = region_loc[regions.domain_of(meta.node) as usize].1;
            *loc = (d, agents[d as usize].len() as u32);
            shards[d as usize].agent_meta.push(meta);
            agents[d as usize].push(agent);
        }

        self.world.shared.regions = regions;
        self.world.shared.dmap = dmap;
        self.world.shared.region_loc = region_loc;
        self.world.shared.node_region_slot = node_region_slot;
        self.world.shards = shards;
        self.agents = agents;
        e_count
    }

    /// Set the worker-thread count for the partitioned executor. With 1
    /// (the default) the epochs run inline on the calling thread; above 1
    /// the domains are distributed round-robin over scoped worker
    /// threads. Has no effect on an unpartitioned engine — and none on
    /// the results either way: digests are identical at every worker
    /// count.
    pub fn set_workers(&mut self, workers: usize) {
        assert!(workers >= 1, "at least one worker is required");
        self.world.workers = workers;
    }

    /// Number of domains (1 until [`Engine::partition`]).
    pub fn domain_count(&self) -> usize {
        self.world.domain_count()
    }

    /// Arm (or disarm) per-epoch load recording: one row per epoch with
    /// each domain's processed-event count. Only the inline (workers = 1)
    /// partitioned executor records; the parallel bench uses the profile
    /// to model multi-worker critical paths on machines with fewer cores
    /// than workers.
    pub fn record_epoch_loads(&mut self, on: bool) {
        self.world.epoch_loads = on.then(Vec::new);
    }

    /// The recorded per-epoch, per-domain event counts (see
    /// [`Engine::record_epoch_loads`]).
    pub fn epoch_loads(&self) -> Option<&[Vec<u64>]> {
        self.world.epoch_loads.as_deref()
    }

    /// Number of regions (components of the fine θ-partition).
    pub fn region_count(&self) -> usize {
        self.world.region_count()
    }

    /// Per-region processed-event totals, in global region order. A
    /// measured run's counts are the natural cost input for
    /// [`Engine::partition_merged`] on a subsequent run of the same
    /// topology — they refine the bandwidth·fan-out default.
    pub fn region_event_counts(&self) -> Vec<u64> {
        self.world
            .shared
            .region_loc
            .iter()
            .map(|&(s, slot)| {
                self.world.shards[s as usize].regions[slot as usize]
                    .digest
                    .events()
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a node. After [`Engine::partition`] a new node forms its own
    /// fresh region (it has no links yet; links attached later are checked
    /// against the lookahead) — and, when the execution partition is
    /// split, its own fresh shard; under a merged single-shard partition
    /// it joins shard 0.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from(self.world.shared.nodes.len());
        self.world.shared.nodes.push(Node::new(id, name));
        if self.world.shared.regions.is_partitioned() {
            let r = self.world.shared.regions.push_isolated_node();
            let seed = self.world.shared.seed;
            let stream = RegionStream::new(
                r,
                StdRng::seed_from_u64(domain_seed(seed, r)),
                (r as u64) << 48,
            );
            let d = if self.world.shared.dmap.is_partitioned() {
                let d = self.world.shared.dmap.push_isolated_node();
                let mut shard = DomainShard::new(d);
                // Late domains start at the global clock, not at zero.
                shard.now = self.world.shards[0].now;
                self.world.shards.push(shard);
                self.agents.push(Vec::new());
                d
            } else {
                0
            };
            let shard = &mut self.world.shards[d as usize];
            let slot = shard.regions.len() as u32;
            shard.regions.push(stream);
            self.world.shared.region_loc.push((d, slot));
            self.world.shared.node_region_slot.push(slot);
        } else {
            self.world.shared.node_region_slot.push(0);
        }
        id
    }

    /// Add a full-duplex link between `a` and `b`: two independent
    /// channels, each with its own buffer built from `queue_cfg`. Returns
    /// `(a→b, b→a)`.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> (ChannelId, ChannelId) {
        let ab = self.add_channel(a, b, bandwidth_bps, prop_delay, queue_cfg);
        let ba = self.add_channel(b, a, bandwidth_bps, prop_delay, queue_cfg);
        (ab, ba)
    }

    /// Add a single directed channel (for asymmetric links).
    pub fn add_channel(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_cfg: &QueueConfig,
    ) -> ChannelId {
        assert!(from != to, "self-loop channels are not allowed");
        let regions = &self.world.shared.regions;
        if regions.is_partitioned() && regions.domain_of(from) != regions.domain_of(to) {
            // The exchange grid is the *fine* lookahead θ at every shard
            // count, so every cross-region channel must clear it.
            assert!(
                prop_delay >= regions.lookahead(),
                "cross-domain channel faster than the lookahead breaks the epoch contract"
            );
        }
        let d = self.world.shared.dmap.domain_of(from);
        let id = ChannelId::from(self.world.shared.chan_loc.len());
        let shard = &mut self.world.shards[d as usize];
        self.world
            .shared
            .chan_loc
            .push((d, shard.channels.len() as u32));
        shard
            .chan_region
            .push(self.world.shared.node_region_slot[from.index()]);
        shard.channels.push(Channel::new(
            id,
            from,
            to,
            bandwidth_bps,
            prop_delay,
            queue_cfg,
        ));
        self.world.shared.nodes[from.index()].out_channels.push(id);
        id
    }

    /// Attach a fault injector to a channel.
    pub fn set_fault(&mut self, channel: ChannelId, fault: FaultInjector) {
        self.world.channel_mut(channel).fault = Some(fault);
    }

    /// Attach an agent to `node`. The agent does nothing until
    /// [`Engine::start_agent_at`] schedules its start event.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        assert!(node.index() < self.world.shared.nodes.len(), "unknown node");
        let d = self.world.shared.dmap.domain_of(node);
        let id = AgentId::from(self.world.shared.agent_loc.len());
        self.world
            .shared
            .agent_loc
            .push((d, self.agents[d as usize].len() as u32));
        self.world.shared.agent_nodes.push(node);
        self.agents[d as usize].push(agent);
        self.world.shards[d as usize].agent_meta.push(AgentMeta {
            node,
            region: self.world.shared.node_region_slot[node.index()],
            send_overhead: SimDuration::ZERO,
            last_injection: SimTime::ZERO,
        });
        id
    }

    /// Configure the agent's uniform random per-packet send overhead
    /// (phase-effect elimination; see §3.1 of the paper). `max` should be
    /// the bottleneck service time of the agent's data packets.
    pub fn set_send_overhead(&mut self, agent: AgentId, max: SimDuration) {
        let (d, li) = self.world.shared.agent_loc[agent.index()];
        self.world.shards[d as usize].agent_meta[li as usize].send_overhead = max;
    }

    /// Create a multicast group.
    pub fn new_group(&mut self) -> GroupId {
        let id = GroupId::from(self.world.shared.groups.len());
        self.world.shared.groups.push(Group::default());
        id
    }

    /// Add `agent` to `group`'s receiver set.
    pub fn join_group(&mut self, group: GroupId, agent: AgentId) {
        let g = &mut self.world.shared.groups[group.index()];
        if !g.members.contains(&agent) {
            g.members.push(agent);
        }
    }

    /// Remove `agent` from `group`'s receiver set; returns `false` when it
    /// was not a member. The distribution tree is untouched — call
    /// [`Engine::build_group_tree`] afterwards so in-flight multicast stops
    /// fanning out to pruned branches.
    pub fn leave_group(&mut self, group: GroupId, agent: AgentId) -> bool {
        let g = &mut self.world.shared.groups[group.index()];
        match g.members.iter().position(|&m| m == agent) {
            Some(i) => {
                g.members.remove(i);
                true
            }
            None => false,
        }
    }

    /// Compute all-pairs unicast next-hop routes with BFS (all links are
    /// one hop). Call after the topology is final and before running.
    pub fn compute_routes(&mut self) {
        let n = self.world.shared.nodes.len();
        // Adjacency: (neighbor, channel) per node.
        let adj: Vec<Vec<(NodeId, ChannelId)>> = self
            .world
            .shared
            .nodes
            .iter()
            .map(|node| {
                node.out_channels
                    .iter()
                    .map(|&ch| (self.world.channel(ch).to, ch))
                    .collect()
            })
            .collect();

        for src in 0..n {
            let mut first_hop: Vec<Option<ChannelId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            visited[src] = true;
            // Seed the BFS with src's direct neighbours, remembering which
            // channel reached them; descendants inherit that first hop.
            for &(nb, ch) in &adj[src] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    first_hop[nb.index()] = Some(ch);
                    queue.push_back(nb);
                }
            }
            while let Some(u) = queue.pop_front() {
                let via = first_hop[u.index()];
                for &(nb, _) in &adj[u.index()] {
                    if !visited[nb.index()] {
                        visited[nb.index()] = true;
                        first_hop[nb.index()] = via;
                        queue.push_back(nb);
                    }
                }
            }
            self.world.shared.nodes[src].routes = first_hop;
        }
    }

    /// Build the source-based distribution tree for `group`, rooted at the
    /// node of `root_agent`. Requires routes (call [`Engine::compute_routes`]
    /// first) and the full member list.
    pub fn build_group_tree(&mut self, group: GroupId, root: NodeId) {
        let n = self.world.shared.nodes.len();
        let members = self.world.shared.groups[group.index()].members.clone();
        let mut forward: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut members_at: Vec<Vec<AgentId>> = vec![Vec::new(); n];

        for &member in &members {
            let target = self.world.shared.agent_nodes[member.index()];
            members_at[target.index()].push(member);
            let mut cur = root;
            let mut hops = 0;
            while cur != target {
                let ch = self.world.shared.nodes[cur.index()]
                    .route_to(target)
                    .unwrap_or_else(|| {
                        panic!("group member at {target} unreachable from tree root {root}")
                    });
                if !forward[cur.index()].contains(&ch) {
                    forward[cur.index()].push(ch);
                }
                cur = self.world.channel(ch).to;
                hops += 1;
                assert!(hops <= n, "routing loop while building multicast tree");
            }
        }

        let g = &mut self.world.shared.groups[group.index()];
        g.root = Some(root);
        g.forward = forward;
        g.members_at = members_at;
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Schedule `agent`'s `on_start` at time `at`.
    pub fn start_agent_at(&mut self, agent: AgentId, at: SimTime) {
        let (d, _) = self.world.shared.agent_loc[agent.index()];
        self.world.shards[d as usize]
            .calendar
            .schedule(at, EventKind::Start { agent });
    }

    /// Run until `deadline`; the clock ends at exactly `deadline`.
    ///
    /// An unpartitioned engine runs the classic single event loop (and
    /// additionally stops early if its calendar empties). A partitioned
    /// engine advances all domains epoch by epoch to `deadline` —
    /// inline, or on [`Engine::set_workers`] scoped threads — exchanging
    /// boundary packets at each absolute grid barrier. Every domain's
    /// clock equals `deadline` on return.
    pub fn run_until(&mut self, deadline: SimTime) {
        if !self.world.shared.regions.is_partitioned() {
            // One region: the classic single event loop, no barriers, no
            // exchange.
            let world = &mut self.world;
            DomainRun {
                shared: &world.shared,
                shard: &mut world.shards[0],
                agents: &mut self.agents[0],
                tracer: world.tracer.as_ref(),
            }
            .run_until(deadline);
            return;
        }
        if self.world.shards.len() == 1 || self.world.workers == 1 {
            self.run_epochs_inline(deadline);
        } else {
            self.run_epochs_threaded(deadline);
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.world.now() + d;
        self.run_until(deadline);
    }

    /// The inline epoch executor: advance every shard to the next θ-grid
    /// barrier (or the deadline), then hand each shard's outbox — the
    /// whole epoch's crossings in one batch — to the destination shards,
    /// which schedule them directly under their canonical keys.
    /// Single-threaded, so a tracer is allowed. This is also the
    /// merged-to-one executor: with a single shard the exchange is empty
    /// and the loop degenerates to stepping the grid epoch, so the
    /// sequential path pays no per-message cost at all beyond the keyed
    /// schedule it already did at send time.
    fn run_epochs_inline(&mut self, deadline: SimTime) {
        // The exchange grid is the *fine* lookahead θ regardless of how
        // regions were coalesced: a merged-L grid would let a receiver
        // dispatch events between a message's send epoch and its arrival,
        // perturbing same-instant FIFO order relative to the fine run.
        let lookahead = self.world.shared.regions.lookahead();
        debug_assert!(!lookahead.is_zero(), "partitioned world without lookahead");
        let mut t = self.world.shards[0].now;
        debug_assert!(
            self.world.shards.iter().all(|s| s.now == t),
            "domains out of step at epoch entry"
        );
        let recording = self.world.epoch_loads.is_some();
        while t < deadline {
            let barrier = grid_next(t, lookahead);
            let target = barrier.min(deadline);
            // The global grid index of the epoch being run: the high bits
            // of every key assigned this step, identical at every shard
            // and worker count (and across stepped `run_until` calls that
            // stop mid-epoch).
            let epoch = barrier.as_nanos() / lookahead.as_nanos();
            let mut loads = recording.then(|| Vec::with_capacity(self.world.shards.len()));
            for (shard, agents) in self.world.shards.iter_mut().zip(self.agents.iter_mut()) {
                shard.begin_epoch(epoch);
                let before = recording.then(|| shard.events());
                DomainRun {
                    shared: &self.world.shared,
                    shard,
                    agents,
                    tracer: self.world.tracer.as_ref(),
                }
                .run_until(target);
                if let (Some(loads), Some(before)) = (loads.as_mut(), before) {
                    loads.push(shard.events() - before);
                }
            }
            if let (Some(all), Some(row)) = (self.world.epoch_loads.as_mut(), loads) {
                all.push(row);
            }
            if target == barrier && self.world.shards.len() > 1 {
                // Exchange at the grid barrier: hand each shard's outbox —
                // the whole epoch's crossings in one batch — to the
                // destination shards. Each message is scheduled under its
                // canonical (send epoch, source region, send order) key
                // (the calendars still carry this epoch's index), so no
                // sort is needed anywhere: the keys are a total order
                // independent of routing sequence.
                let mut d = 0;
                while d < self.world.shards.len() {
                    if !self.world.shards[d].outbox.is_empty() {
                        let outbox = std::mem::take(&mut self.world.shards[d].outbox);
                        for m in &outbox {
                            let dst = self.world.shared.dmap.domain_of(m.node) as usize;
                            self.world.shards[dst].accept_boundary(*m);
                        }
                        // Hand the allocation back for the next epoch.
                        let mut outbox = outbox;
                        outbox.clear();
                        self.world.shards[d].outbox = outbox;
                    }
                    d += 1;
                }
            }
            t = target;
        }
    }

    /// The threaded epoch executor: domains are distributed round-robin
    /// over scoped worker threads; two barriers per epoch separate the
    /// run phase from the exchange phase. The whole epoch's crossings are
    /// batched through one shared inbox — each worker appends its
    /// domains' outboxes under a single lock, then (after the barrier)
    /// filter-copies the messages addressed to its own domains under one
    /// more lock and schedules them directly under their canonical keys —
    /// so the exchange cost is two lock acquisitions per worker per epoch
    /// instead of a mutex slot per domain. The inbox's append order is
    /// racy, but the keys are a total order independent of insertion
    /// sequence, so digests are bit-identical to the inline executor's.
    fn run_epochs_threaded(&mut self, deadline: SimTime) {
        assert!(
            self.world.tracer.is_none(),
            "tracers are single-threaded: set_workers(1) to trace a partitioned run"
        );
        let d_count = self.world.shards.len();
        let workers = self.world.workers.min(d_count);
        let lookahead = self.world.shared.regions.lookahead();
        debug_assert!(!lookahead.is_zero(), "partitioned world without lookahead");
        let start = self.world.shards[0].now;
        debug_assert!(
            self.world.shards.iter().all(|s| s.now == start),
            "domains out of step at epoch entry"
        );
        let shared = &self.world.shared;
        // One shared inbox for the whole epoch's crossings, tagged with
        // the epoch index: the first appender of a new epoch clears the
        // previous batch (every reader consumed it before the prior
        // epoch's closing barrier).
        let inbox: Mutex<(u64, Vec<BoundaryMsg>)> = Mutex::new((0, Vec::new()));
        let inbox = &inbox;
        let barrier = Barrier::new(workers);
        let barrier = &barrier;

        type BucketEntry<'a> = (usize, &'a mut DomainShard, &'a mut Vec<Box<dyn Agent>>);
        let mut buckets: Vec<Vec<BucketEntry>> = (0..workers).map(|_| Vec::new()).collect();
        for (d, (shard, agents)) in self
            .world
            .shards
            .iter_mut()
            .zip(self.agents.iter_mut())
            .enumerate()
        {
            buckets[d % workers].push((d, shard, agents));
        }

        std::thread::scope(|scope| {
            for mut bucket in buckets {
                scope.spawn(move || {
                    let mut t = start;
                    let mut epoch = 0u64;
                    while t < deadline {
                        let grid = grid_next(t, lookahead);
                        let target = grid.min(deadline);
                        let exchanging = target == grid;
                        epoch += 1;
                        let grid_epoch = grid.as_nanos() / lookahead.as_nanos();
                        // Phase A: run own domains to the target, then
                        // publish all their outboxes under one lock.
                        for (_, shard, agents) in bucket.iter_mut() {
                            shard.begin_epoch(grid_epoch);
                            DomainRun {
                                shared,
                                shard,
                                agents,
                                tracer: None,
                            }
                            .run_until(target);
                        }
                        if exchanging {
                            let mut slot = inbox.lock().unwrap();
                            if slot.0 != epoch {
                                slot.0 = epoch;
                                slot.1.clear();
                            }
                            for (_, shard, _) in bucket.iter_mut() {
                                slot.1.append(&mut shard.outbox);
                            }
                        }
                        barrier.wait();
                        // Phase B: copy the messages addressed to own
                        // domains out of the shared batch, scheduling each
                        // directly under its canonical key (the calendars
                        // still carry this epoch's index). The batch's
                        // append order is racy across workers, but the key
                        // fixes every arrival's dispatch position, so the
                        // copy order is immaterial.
                        if exchanging {
                            let slot = inbox.lock().unwrap();
                            for (d, shard, _) in bucket.iter_mut() {
                                for m in slot.1.iter() {
                                    if shared.dmap.domain_of(m.node) as usize == *d {
                                        shard.accept_boundary(*m);
                                    }
                                }
                            }
                        }
                        barrier.wait();
                        t = target;
                    }
                });
            }
        });
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// Downcast an agent to its concrete type for post-run inspection.
    pub fn agent_as<T: 'static>(&self, id: AgentId) -> Option<&T> {
        let (d, li) = self.world.shared.agent_loc[id.index()];
        self.agents[d as usize][li as usize]
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable downcast.
    pub fn agent_as_mut<T: 'static>(&mut self, id: AgentId) -> Option<&mut T> {
        let (d, li) = self.world.shared.agent_loc[id.index()];
        self.agents[d as usize][li as usize]
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Number of agents.
    pub fn agent_count(&self) -> usize {
        self.world.shared.agent_loc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Sink;
    use crate::queue::QueueConfig;

    /// An agent that fires `count` fixed-size packets at a destination as
    /// fast as the engine lets it (all injected at start).
    struct Blaster {
        dest: Dest,
        count: u32,
        size: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.dest, self.size, Segment::Raw);
            }
        }
        fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_world(qcfg: &QueueConfig) -> (Engine, AgentId, AgentId, ChannelId) {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        let (ab, _) = e.add_link(a, b, 8_000_000, SimDuration::from_millis(10), qcfg);
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 5,
                size: 1000,
            }),
        );
        e.compute_routes();
        (e, blaster, sink, ab)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 5);
        assert_eq!(s.bytes, 5000);
        assert_eq!(e.world().channel(ab).stats.transmitted, 5);
    }

    #[test]
    fn serialization_and_propagation_delays_add_up() {
        // 1000 B at 8 Mbps = 1 ms serialization; 10 ms propagation.
        // 5 back-to-back packets: the last arrives at 5*1ms + 10ms = 15 ms.
        let (mut e, blaster, sink, _) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_millis(14));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 4, "only four packets can have arrived by 14ms");
        e.run_until(SimTime::from_millis(15));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 5);
    }

    #[test]
    fn utilization_at_a_mid_transmission_deadline_counts_elapsed_time_only() {
        // 1000 B at 8 Mbps = 1 ms serialization. The blaster starts at
        // t=1ms, so at a 1.5ms deadline the first packet is half-sent:
        // 0.5ms of busy time over 1.5ms of run = 1/3. Charging the full
        // service time at tx start (the old accounting) would claim 2/3.
        let (mut e, blaster, _, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::from_millis(1));
        e.run_until(SimTime::from_millis(1) + SimDuration::from_micros(500));
        let u = e.world().channel(ab).stats.utilization(e.now());
        assert!((u - 1.0 / 3.0).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn droptail_overflow_loses_excess() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        let (ab, _) = e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::DropTail { limit: 3 },
        );
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 10,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        // 10 injected simultaneously: 1 in service + 3 buffered survive.
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 4);
        assert_eq!(e.world().channel(ab).stats.overflow_drops, 6);
    }

    #[test]
    fn multihop_routing_works() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let m = e.add_node("m");
        let b = e.add_node("b");
        e.add_link(
            a,
            m,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        e.add_link(
            m,
            b,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 3,
                size: 500,
            }),
        );
        e.compute_routes();
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 3);
    }

    #[test]
    fn multicast_replicates_to_all_members() {
        // Star: root -> g -> {l1, l2, l3}; one packet must reach all three.
        let mut e = Engine::new(1);
        let root = e.add_node("root");
        let g = e.add_node("g");
        let leaves: Vec<NodeId> = (0..3).map(|i| e.add_node(format!("l{i}"))).collect();
        e.add_link(
            root,
            g,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::paper_droptail(),
        );
        for &l in &leaves {
            e.add_link(
                g,
                l,
                8_000_000,
                SimDuration::from_millis(1),
                &QueueConfig::paper_droptail(),
            );
        }
        let group = e.new_group();
        let sinks: Vec<AgentId> = leaves
            .iter()
            .map(|&l| {
                let s = e.add_agent(l, Box::new(Sink::default()));
                e.join_group(group, s);
                s
            })
            .collect();
        let blaster = e.add_agent(
            root,
            Box::new(Blaster {
                dest: Dest::Group(group),
                count: 7,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.build_group_tree(group, root);
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        for &s in &sinks {
            let sink: &Sink = e.agent_as(s).unwrap();
            assert_eq!(sink.received, 7);
        }
        // The root->g hop carries each packet exactly once (replication
        // happens at the branch point g, not at the source).
        let root_out = e.world().node(root).out_channels[0];
        assert_eq!(e.world().channel(root_out).stats.transmitted, 7);
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed: u64| {
            let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_red());
            let _ = seed;
            e.start_agent_at(blaster, SimTime::ZERO);
            e.run_until(SimTime::from_secs(2));
            let s: &Sink = e.agent_as(sink).unwrap();
            (s.received, e.world().channel(ab).stats.transmitted)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerAgent {
            fired: Vec<u64>,
        }
        impl Agent for TimerAgent {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Context<'_>) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut e = Engine::new(1);
        let n = e.add_node("n");
        let a = e.add_agent(n, Box::new(TimerAgent { fired: vec![] }));
        e.start_agent_at(a, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let ta: &TimerAgent = e.agent_as(a).unwrap();
        assert_eq!(ta.fired, vec![1, 2, 3]);
    }

    #[test]
    fn send_overhead_never_reorders_an_agents_packets() {
        // Random processing overhead models a host's (serialized) protocol
        // stack: it delays packets but must not permute them, or receivers
        // would see phantom SACK holes.
        struct OrderedSink {
            uids: Vec<u64>,
        }
        impl Agent for OrderedSink {
            fn on_packet(&mut self, packet: Packet, _ctx: &mut Context<'_>) {
                self.uids.push(packet.uid);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut e = Engine::new(99);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            1_000_000_000, // fast link: ordering is decided at injection
            SimDuration::from_millis(1),
            &QueueConfig::DropTail { limit: 10_000 },
        );
        let sink = e.add_agent(b, Box::new(OrderedSink { uids: vec![] }));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 500,
                size: 100,
            }),
        );
        e.compute_routes();
        e.set_send_overhead(blaster, SimDuration::from_millis(5));
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(10));
        let s: &OrderedSink = e.agent_as(sink).unwrap();
        assert_eq!(s.uids.len(), 500);
        let mut sorted = s.uids.clone();
        sorted.sort_unstable();
        assert_eq!(s.uids, sorted, "jitter reordered the agent's packets");
    }

    #[test]
    fn fault_injection_drops_everything() {
        let (mut e, blaster, sink, ab) = two_node_world(&QueueConfig::paper_droptail());
        e.set_fault(ab, FaultInjector::new(1.0));
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 0);
        assert_eq!(e.world().channel(ab).stats.fault_drops, 5);
    }

    #[test]
    fn clock_lands_exactly_on_deadline() {
        let (mut e, blaster, _, _) = two_node_world(&QueueConfig::paper_droptail());
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(42));
        assert_eq!(e.now(), SimTime::from_secs(42));
    }

    // ------------------------------------------------------------------
    // Domain-partitioned execution
    // ------------------------------------------------------------------

    /// A chain a -(1ms)- m -(10ms)- b with traffic in both directions and
    /// a multicast group fanning out from a. Partitioning at θ=5ms cuts
    /// the 10ms link: {a, m} and {b} become two domains with L = 10ms.
    fn partitioned_chain(seed: u64, workers: usize) -> (Engine, AgentId, AgentId) {
        let mut e = Engine::new(seed);
        let a = e.add_node("a");
        let m = e.add_node("m");
        let b = e.add_node("b");
        e.add_link(
            a,
            m,
            8_000_000,
            SimDuration::from_millis(1),
            &QueueConfig::DropTail { limit: 8 },
        );
        e.add_link(
            m,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 8 },
        );
        assert_eq!(e.partition(Some(SimDuration::from_millis(5))), 2);
        e.set_workers(workers);
        let sink_b = e.add_agent(b, Box::new(Sink::default()));
        let sink_a = e.add_agent(a, Box::new(Sink::default()));
        let fwd = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink_b),
                count: 40,
                size: 1000,
            }),
        );
        let rev = e.add_agent(
            b,
            Box::new(Blaster {
                dest: Dest::Agent(sink_a),
                count: 25,
                size: 600,
            }),
        );
        e.compute_routes();
        e.set_send_overhead(fwd, SimDuration::from_millis(2));
        e.set_send_overhead(rev, SimDuration::from_millis(2));
        e.start_agent_at(fwd, SimTime::ZERO);
        e.start_agent_at(rev, SimTime::from_millis(3));
        (e, sink_a, sink_b)
    }

    #[test]
    fn partitioned_packets_cross_domains_both_ways() {
        let (mut e, sink_a, sink_b) = partitioned_chain(7, 1);
        e.run_until(SimTime::from_secs(2));
        let sb: &Sink = e.agent_as(sink_b).unwrap();
        let sa: &Sink = e.agent_as(sink_a).unwrap();
        // Both blasts overflow their drop-tail exits (limit 8, plus one in
        // service); what survives the first hop crosses the cut link and
        // must be conserved end to end — no packet may vanish at a domain
        // boundary.
        assert!(sb.received > 0, "forward traffic never crossed the cut");
        assert!(sa.received > 0, "reverse traffic never crossed the cut");
        let w = e.world();
        let drops = |ch: ChannelId| w.channel(ch).stats.overflow_drops;
        let a_to_m = w.node(NodeId(0)).out_channels[0];
        let b_to_m = w.node(NodeId(2)).out_channels[0];
        assert_eq!(sb.received + drops(a_to_m), 40, "forward packets vanished");
        assert_eq!(sa.received + drops(b_to_m), 25, "reverse packets vanished");
        assert_eq!(e.now(), SimTime::from_secs(2));
        assert_eq!(w.live_packets(), 0);
    }

    #[test]
    fn digest_is_identical_across_worker_counts_and_stepping() {
        let full = |workers: usize| {
            let (mut e, _, _) = partitioned_chain(11, workers);
            e.run_until(SimTime::from_secs(2));
            e.trace_digest()
        };
        let baseline = full(1);
        assert!(baseline.events() > 0);
        assert_eq!(baseline, full(2), "two workers drifted");
        assert_eq!(baseline, full(4), "four workers drifted");
        // Mid-epoch stepping must not move the exchange barriers: pause at
        // an off-grid instant (L = 10ms; 7ms is mid-epoch) and resume.
        let (mut e, _, _) = partitioned_chain(11, 2);
        e.run_until(SimTime::from_millis(7));
        e.run_until(SimTime::from_millis(13));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(baseline, e.trace_digest(), "stepping changed the digest");
        // Deadlines landing exactly on grid barriers are the epoch loop's
        // edge case: the final epoch must run (and exchange) exactly once.
        let (mut e, _, _) = partitioned_chain(11, 1);
        e.run_until(SimTime::from_millis(10));
        e.run_until(SimTime::from_millis(20));
        e.run_until(SimTime::from_secs(2));
        assert_eq!(
            baseline,
            e.trace_digest(),
            "on-barrier stepping changed the digest"
        );
    }

    /// The star topology from `partitioned_multicast_spans_domains`, with
    /// bidirectional unicast echo traffic layered on top, partitioned by
    /// the given closure. Returns the digest after 1 s.
    fn star_digest(partition: impl FnOnce(&mut Engine) -> usize, workers: usize) -> TraceDigest {
        let mut e = Engine::new(17);
        let root = e.add_node("root");
        let hub = e.add_node("hub");
        let l0 = e.add_node("l0");
        let l1 = e.add_node("l1");
        for &(x, y) in &[(root, hub), (hub, l0), (hub, l1)] {
            e.add_link(
                x,
                y,
                8_000_000,
                SimDuration::from_millis(10),
                &QueueConfig::DropTail { limit: 6 },
            );
        }
        let domains = partition(&mut e);
        assert!(domains >= 1);
        e.set_workers(workers);
        let group = e.new_group();
        let s0 = e.add_agent(l0, Box::new(Sink::default()));
        let s1 = e.add_agent(l1, Box::new(Sink::default()));
        e.join_group(group, s0);
        e.join_group(group, s1);
        let sink_root = e.add_agent(root, Box::new(Sink::default()));
        let mcast = e.add_agent(
            root,
            Box::new(Blaster {
                dest: Dest::Group(group),
                count: 9,
                size: 1000,
            }),
        );
        let echo = e.add_agent(
            l1,
            Box::new(Blaster {
                dest: Dest::Agent(sink_root),
                count: 12,
                size: 700,
            }),
        );
        e.compute_routes();
        e.build_group_tree(group, root);
        e.set_send_overhead(mcast, SimDuration::from_millis(1));
        e.set_send_overhead(echo, SimDuration::from_millis(1));
        e.start_agent_at(mcast, SimTime::ZERO);
        e.start_agent_at(echo, SimTime::from_millis(2));
        e.run_until(SimTime::from_secs(1));
        assert_eq!(e.world().live_packets(), 0, "packets leaked across arenas");
        e.trace_digest()
    }

    #[test]
    fn merged_partition_preserves_the_fine_digest_at_every_target() {
        // The fine partition (4 regions) is the identity baseline; the
        // merge pass must reproduce its digest bit-for-bit at every
        // execution-domain count, including the fully collapsed single
        // shard, and on worker threads.
        let fine = star_digest(|e| e.partition(None), 1);
        assert!(fine.events() > 0);
        for target in 1..=4 {
            let merged = star_digest(|e| e.partition_merged(None, target, None), 1);
            assert_eq!(fine, merged, "merge to {target} changed the digest");
        }
        let merged_threaded = star_digest(|e| e.partition_merged(None, 2, None), 2);
        assert_eq!(fine, merged_threaded, "threaded merged run drifted");
        // Measured per-region costs must not change results either — only
        // the grouping may move.
        let costs = vec![5, 40, 3, 3];
        let refined = star_digest(|e| e.partition_merged(None, 2, Some(&costs)), 1);
        assert_eq!(fine, refined, "cost-refined merge changed the digest");
    }

    #[test]
    fn merged_to_one_keeps_exchange_counters_at_zero() {
        let mut e = Engine::new(17);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        assert_eq!(e.partition_merged(None, 1, None), 1);
        assert_eq!(e.domain_count(), 1);
        assert_eq!(e.region_count(), 2, "regions stay fine under the merge");
        let sink = e.add_agent(b, Box::new(Sink::default()));
        let blaster = e.add_agent(
            a,
            Box::new(Blaster {
                dest: Dest::Agent(sink),
                count: 5,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        let s: &Sink = e.agent_as(sink).unwrap();
        assert_eq!(s.received, 5);
        // A single execution domain never touches the outbox: every
        // crossing stays in its arena and is scheduled directly under its
        // canonical boundary key.
        assert_eq!(e.world().shards[0].outbox.capacity(), 0);
        assert_eq!(e.world().live_packets(), 0);
    }

    #[test]
    fn region_event_counts_cover_every_region_and_sum_to_the_digest() {
        let (mut e, _, _) = partitioned_chain(5, 1);
        e.run_until(SimTime::from_millis(100));
        let counts = e.region_event_counts();
        assert_eq!(counts.len(), e.region_count());
        assert_eq!(counts.iter().sum::<u64>(), e.trace_digest().events());
        assert!(counts.iter().all(|&c| c > 0), "a silent region: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "already partitioned")]
    fn merged_partition_cannot_be_applied_twice() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        e.partition_merged(None, 1, None);
        e.partition(None);
    }

    #[test]
    fn partitioned_multicast_spans_domains() {
        // root -(10ms)- hub, hub -(10ms)- l0/l1: four domains; the group
        // tree replicates at hub across two boundary crossings.
        let mut e = Engine::new(3);
        let root = e.add_node("root");
        let hub = e.add_node("hub");
        let l0 = e.add_node("l0");
        let l1 = e.add_node("l1");
        for &(x, y) in &[(root, hub), (hub, l0), (hub, l1)] {
            e.add_link(
                x,
                y,
                8_000_000,
                SimDuration::from_millis(10),
                &QueueConfig::paper_droptail(),
            );
        }
        assert_eq!(e.partition(None), 4);
        e.set_workers(2);
        let group = e.new_group();
        let s0 = e.add_agent(l0, Box::new(Sink::default()));
        let s1 = e.add_agent(l1, Box::new(Sink::default()));
        e.join_group(group, s0);
        e.join_group(group, s1);
        let blaster = e.add_agent(
            root,
            Box::new(Blaster {
                dest: Dest::Group(group),
                count: 9,
                size: 1000,
            }),
        );
        e.compute_routes();
        e.build_group_tree(group, root);
        e.start_agent_at(blaster, SimTime::ZERO);
        e.run_until(SimTime::from_secs(1));
        for id in [s0, s1] {
            let s: &Sink = e.agent_as(id).unwrap();
            assert_eq!(s.received, 9);
        }
        assert_eq!(e.world().live_packets(), 0, "packets leaked across arenas");
    }

    #[test]
    fn unpartitioned_engine_is_untouched_by_worker_setting() {
        // set_workers on an unpartitioned engine is inert: same digest as
        // the default.
        let run = |workers: usize| {
            let (mut e, blaster, _, _) = two_node_world(&QueueConfig::paper_red());
            e.set_workers(workers);
            e.start_agent_at(blaster, SimTime::ZERO);
            e.run_until(SimTime::from_secs(2));
            e.trace_digest()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    #[should_panic(expected = "already partitioned")]
    fn double_partition_is_rejected() {
        let mut e = Engine::new(1);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        e.partition(None);
        e.partition(None);
    }

    #[test]
    fn epoch_loads_cover_every_domain() {
        let (mut e, _, _) = partitioned_chain(5, 1);
        e.record_epoch_loads(true);
        e.run_until(SimTime::from_millis(100));
        let loads = e.epoch_loads().expect("recording was armed");
        // L = 10ms over a 100ms run: ten epochs, two domains each.
        assert_eq!(loads.len(), 10);
        assert!(loads.iter().all(|row| row.len() == 2));
        let total: u64 = loads.iter().flatten().sum();
        assert_eq!(total, e.trace_digest().events());
    }
}
