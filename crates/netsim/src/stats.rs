//! Counters and time-weighted statistics collected by the engine.

use crate::queue::DropReason;
use crate::time::{SimDuration, SimTime};

/// Per-channel statistics: admission counters and the time-weighted queue
/// length (the quantity RED averages and the paper's "buffer period"
/// analysis looks at).
#[derive(Debug, Default, Clone)]
pub struct ChannelStats {
    /// Packets offered to the channel (enqueued or dropped).
    pub offered: u64,
    /// Packets accepted into the buffer or transmitted directly.
    pub accepted: u64,
    /// Packets fully transmitted.
    pub transmitted: u64,
    /// Bytes fully transmitted.
    pub bytes_transmitted: u64,
    /// Drops because the physical buffer was full.
    pub overflow_drops: u64,
    /// RED early drops.
    pub early_drops: u64,
    /// RED forced drops (average above the max threshold).
    pub forced_drops: u64,
    /// Fault-injector drops.
    pub fault_drops: u64,
    /// Running integral of queue length over time (packets * seconds).
    qlen_area: f64,
    /// Time of the last queue-length change.
    last_change: SimTime,
    /// Queue length at the last change.
    last_len: usize,
    /// Largest instantaneous queue length seen.
    pub max_qlen: usize,
    /// Total busy (transmitting) time over *closed* intervals.
    busy: SimDuration,
    /// Start of the in-progress transmission, if one is open.
    busy_since: Option<SimTime>,
}

impl ChannelStats {
    /// Record a drop of the given kind.
    pub fn record_drop(&mut self, reason: DropReason) {
        match reason {
            DropReason::BufferOverflow => self.overflow_drops += 1,
            DropReason::EarlyDrop => self.early_drops += 1,
            DropReason::ForcedDrop => self.forced_drops += 1,
            DropReason::Fault => self.fault_drops += 1,
        }
    }

    /// Total queue drops (excluding fault injection).
    pub fn queue_drops(&self) -> u64 {
        self.overflow_drops + self.early_drops + self.forced_drops
    }

    /// Update the queue-length integral when the length changes.
    pub fn record_qlen(&mut self, now: SimTime, len: usize) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.qlen_area += self.last_len as f64 * dt;
        self.last_change = now;
        self.last_len = len;
        self.max_qlen = self.max_qlen.max(len);
    }

    /// The transmitter went busy at `now`. Busy time is tracked as
    /// open/closed intervals rather than charged up-front, so a
    /// measurement deadline that cuts a transmission in half counts only
    /// the elapsed half (see [`utilization`](Self::utilization)).
    pub fn record_tx_begin(&mut self, now: SimTime) {
        debug_assert!(self.busy_since.is_none(), "transmitter already busy");
        self.busy_since = Some(now);
    }

    /// The transmitter went idle at `now`, closing the interval opened by
    /// [`record_tx_begin`](Self::record_tx_begin).
    pub fn record_tx_end(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy += now.saturating_since(since);
        }
    }

    /// Average queue length over `[0, now]`, in packets.
    pub fn avg_qlen(&self, now: SimTime) -> f64 {
        let total = now.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.qlen_area + self.last_len as f64 * tail) / total
    }

    /// Fraction of `[0, now]` the transmitter was busy. Includes the
    /// elapsed part of a transmission still in progress at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let total = now.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        let open = self
            .busy_since
            .map_or(0.0, |since| now.saturating_since(since).as_secs_f64());
        ((self.busy.as_secs_f64() + open) / total).min(1.0)
    }
}

/// An exponentially-weighted moving average: `avg += gain * (x - avg)`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    gain: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh EWMA with the given gain in `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "EWMA gain must be in (0, 1]");
        Ewma { gain, value: None }
    }

    /// Fold in one observation; the first observation initializes.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.gain * (x - v),
        });
    }

    /// The current average, if any observation has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `default` before the first observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// A streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Default, Clone)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// A time-weighted average of a piecewise-constant signal (e.g. the
/// congestion window as a function of time).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    area: f64,
}

impl TimeWeighted {
    /// Start integrating at `start` with initial value `v`.
    pub fn new(start: SimTime, v: f64) -> Self {
        TimeWeighted {
            start,
            last_t: start,
            last_v: v,
            area: 0.0,
        }
    }

    /// The signal changed to `v` at `now`.
    pub fn set(&mut self, now: SimTime, v: f64) {
        let dt = now.saturating_since(self.last_t).as_secs_f64();
        self.area += self.last_v * dt;
        self.last_t = now;
        self.last_v = v;
    }

    /// Time average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_secs_f64();
        if span == 0.0 {
            return self.last_v;
        }
        let tail = now.saturating_since(self.last_t).as_secs_f64();
        (self.area + self.last_v * tail) / span
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Restart the integration window at `now`, keeping the current value.
    /// Used to discard the warmup transient before collecting statistics.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.last_t = now;
        self.area = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_initializes_and_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(7.0), 7.0);
        e.push(10.0);
        assert_eq!(e.value(), Some(10.0));
        for _ in 0..30 {
            e.push(0.0);
        }
        assert!(e.value().unwrap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn ewma_rejects_zero_gain() {
        Ewma::new(0.0);
    }

    #[test]
    fn running_moments() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn running_empty_is_sane() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert!(r.min().is_nan());
    }

    #[test]
    fn time_weighted_average() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 10.0);
        w.set(SimTime::from_secs(1), 20.0); // 10 for 1s
        w.set(SimTime::from_secs(3), 0.0); // 20 for 2s
        let avg = w.average(SimTime::from_secs(5)); // 0 for 2s
        assert!((avg - (10.0 + 40.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_reset_discards_history() {
        let mut w = TimeWeighted::new(SimTime::ZERO, 100.0);
        w.set(SimTime::from_secs(10), 2.0);
        w.reset(SimTime::from_secs(10));
        let avg = w.average(SimTime::from_secs(20));
        assert!((avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn channel_stats_qlen_integral() {
        let mut s = ChannelStats::default();
        s.record_qlen(SimTime::from_secs(1), 5); // len 0 for 1s
        s.record_qlen(SimTime::from_secs(3), 0); // len 5 for 2s
        let avg = s.avg_qlen(SimTime::from_secs(5)); // len 0 for 2s
        assert!((avg - 10.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.max_qlen, 5);
    }

    #[test]
    fn utilization_counts_only_the_elapsed_part_of_an_open_tx() {
        let mut s = ChannelStats::default();
        s.record_tx_begin(SimTime::from_millis(1000));
        // At 1.5s the transmission is still in flight: only the elapsed
        // 0.5s counts. The old up-front accounting charged the full
        // service time at tx start, overstating utilization whenever the
        // measurement deadline cut a transmission in half.
        let u = s.utilization(SimTime::from_millis(1500));
        assert!((u - 0.5 / 1.5).abs() < 1e-12, "got {u}");
    }

    #[test]
    fn utilization_sums_closed_intervals() {
        let mut s = ChannelStats::default();
        s.record_tx_begin(SimTime::from_secs(1));
        s.record_tx_end(SimTime::from_secs(2));
        s.record_tx_begin(SimTime::from_secs(3));
        s.record_tx_end(SimTime::from_secs(4));
        let u = s.utilization(SimTime::from_secs(4));
        assert!((u - 0.5).abs() < 1e-12, "got {u}");
        // Idle afterwards: the open-interval term stays zero.
        let u = s.utilization(SimTime::from_secs(8));
        assert!((u - 0.25).abs() < 1e-12, "got {u}");
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut s = ChannelStats::default();
        s.record_tx_begin(SimTime::ZERO);
        s.record_tx_end(SimTime::from_secs(5));
        assert_eq!(s.utilization(SimTime::from_secs(5)), 1.0);
    }

    #[test]
    fn channel_stats_drop_classification() {
        let mut s = ChannelStats::default();
        s.record_drop(DropReason::BufferOverflow);
        s.record_drop(DropReason::EarlyDrop);
        s.record_drop(DropReason::EarlyDrop);
        s.record_drop(DropReason::Fault);
        assert_eq!(s.overflow_drops, 1);
        assert_eq!(s.early_drops, 2);
        assert_eq!(s.fault_drops, 1);
        assert_eq!(s.queue_drops(), 3);
    }
}
