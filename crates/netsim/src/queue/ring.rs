//! Fixed-capacity ring buffer of packet handles.
//!
//! Gateway buffers have a hard capacity fixed at construction (the paper's
//! gateways hold 20 packets), so the queue disciplines store their backlog
//! in a preallocated ring instead of a growable `VecDeque` — no
//! reallocation, no spare capacity heuristics, and pushing/popping is an
//! index increment.

use crate::arena::PacketHandle;

/// A FIFO of [`PacketHandle`]s with capacity fixed at construction.
#[derive(Debug)]
pub struct HandleRing {
    buf: Box<[PacketHandle]>,
    head: usize,
    len: usize,
}

impl HandleRing {
    /// An empty ring holding at most `capacity` handles.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs at least one slot");
        HandleRing {
            buf: vec![PacketHandle::DANGLING; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Append a handle at the tail.
    ///
    /// # Panics
    /// If the ring is full — callers check [`len`](Self::len) against
    /// [`capacity`](Self::capacity) first (that check *is* the drop
    /// decision).
    pub fn push_back(&mut self, handle: PacketHandle) {
        assert!(self.len < self.buf.len(), "ring buffer overflow");
        let tail = (self.head + self.len) % self.buf.len();
        self.buf[tail] = handle;
        self.len += 1;
    }

    /// Remove and return the handle at the head.
    pub fn pop_front(&mut self) -> Option<PacketHandle> {
        if self.len == 0 {
            return None;
        }
        let handle = self.buf[self.head];
        self.buf[self.head] = PacketHandle::DANGLING;
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(handle)
    }

    /// Handles currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::queue::test_packet;

    #[test]
    fn fifo_and_wraparound() {
        let mut arena = PacketArena::new();
        let mut ring = HandleRing::new(3);
        // Cycle more handles through than the capacity to force wrap.
        let mut next_uid = 0u64;
        let mut expect_uid = 0u64;
        for _ in 0..2 {
            while ring.len() < ring.capacity() {
                ring.push_back(arena.insert(test_packet(next_uid)));
                next_uid += 1;
            }
            for _ in 0..2 {
                let h = ring.pop_front().unwrap();
                assert_eq!(arena.remove(h).uid, expect_uid);
                expect_uid += 1;
            }
        }
        while let Some(h) = ring.pop_front() {
            assert_eq!(arena.remove(h).uid, expect_uid);
            expect_uid += 1;
        }
        assert_eq!(expect_uid, next_uid);
        assert!(arena.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring buffer overflow")]
    fn overfill_panics() {
        let mut ring = HandleRing::new(1);
        ring.push_back(PacketHandle::DANGLING);
        ring.push_back(PacketHandle::DANGLING);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        HandleRing::new(0);
    }
}
