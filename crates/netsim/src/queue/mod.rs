//! Queue disciplines for gateway output buffers.
//!
//! The paper's whole premise is the interaction of congestion control with
//! the two router types deployed in the 1998 Internet: FIFO **drop-tail**
//! buffers (the common case) and **RED** gateways (Floyd & Jacobson 1993).
//! Both are implemented here behind one trait so a link can be configured
//! with either.
//!
//! Queues buffer [`PacketHandle`]s into the engine's
//! [`PacketArena`](crate::arena::PacketArena) rather than packets by value:
//! admission is decided purely from queue state (lengths, averages, RNG),
//! never from packet contents, so the discipline only ever moves an 8-byte
//! handle. Storage is a fixed-capacity [`HandleRing`] sized to the buffer
//! limit at construction.

mod droptail;
mod red;
mod ring;

pub use droptail::DropTail;
pub use red::{Red, RedConfig};
pub use ring::HandleRing;

use rand::rngs::StdRng;

use crate::arena::PacketHandle;
use crate::time::SimTime;

/// Why a packet was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The buffer was full (drop-tail behaviour; also RED when the physical
    /// buffer overflows).
    BufferOverflow,
    /// RED's early-drop decision (average queue between the thresholds).
    EarlyDrop,
    /// RED's forced drop (average queue above the maximum threshold).
    ForcedDrop,
    /// A fault injector discarded the packet.
    Fault,
}

/// Outcome of offering a packet to a queue.
#[derive(Debug)]
pub enum Enqueue {
    /// The packet was queued (or will be transmitted immediately).
    Accepted,
    /// The packet was discarded; the caller gets the handle back for
    /// tracing and to free the arena slot.
    Dropped(PacketHandle, DropReason),
}

/// A queue discipline: decides admission and ordering of packets waiting
/// for a channel transmitter.
///
/// Implementations must be deterministic given the same RNG stream; RED is
/// the only discipline that consumes randomness.
pub trait QueueDiscipline: std::fmt::Debug + Send {
    /// Offer the packet behind `handle` to the queue at time `now`.
    fn enqueue(&mut self, handle: PacketHandle, now: SimTime, rng: &mut StdRng) -> Enqueue;

    /// Take the next packet to transmit.
    fn dequeue(&mut self, now: SimTime) -> Option<PacketHandle>;

    /// Packets currently buffered.
    fn len(&self) -> usize;

    /// `true` when nothing is buffered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffer capacity in packets.
    fn capacity(&self) -> usize;

    /// RED's average-queue estimate, for disciplines that maintain one.
    /// Telemetry reads this through the trait so it needs no downcasting.
    fn red_avg(&self) -> Option<f64> {
        None
    }
}

/// Configuration for constructing a queue discipline on a channel.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueConfig {
    /// FIFO with tail drop; `limit` packets of buffer.
    DropTail {
        /// Buffer size in packets.
        limit: usize,
    },
    /// Random Early Detection.
    Red(RedConfig),
}

impl QueueConfig {
    /// The paper's gateway buffer: 20 packets, drop-tail.
    pub fn paper_droptail() -> Self {
        QueueConfig::DropTail { limit: 20 }
    }

    /// The paper's RED gateway: buffer 20, min threshold 5, max threshold
    /// 15, remaining parameters at the NS2 defaults.
    pub fn paper_red() -> Self {
        QueueConfig::Red(RedConfig::paper())
    }

    /// Build the discipline.
    pub fn build(&self) -> Box<dyn QueueDiscipline> {
        match self {
            QueueConfig::DropTail { limit } => Box::new(DropTail::new(*limit)),
            QueueConfig::Red(cfg) => Box::new(Red::new(cfg.clone())),
        }
    }
}

#[cfg(test)]
pub(crate) fn test_packet(uid: u64) -> crate::packet::Packet {
    use crate::id::AgentId;
    use crate::packet::{Dest, Packet};
    use crate::wire::Segment;
    Packet {
        uid,
        src: AgentId(0),
        dest: Dest::Agent(AgentId(1)),
        size_bytes: 1000,
        segment: Segment::Raw,
        sent_at: SimTime::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builds_matching_discipline() {
        let q = QueueConfig::paper_droptail().build();
        assert_eq!(q.capacity(), 20);
        let q = QueueConfig::paper_red().build();
        assert_eq!(q.capacity(), 20);
    }
}
