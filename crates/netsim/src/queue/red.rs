//! Random Early Detection gateway (Floyd & Jacobson, 1993).
//!
//! RED keeps an exponentially-weighted moving average of the queue length
//! and, when it sits between a minimum and a maximum threshold, drops each
//! arrival with a probability that grows with the average (and with the
//! number of packets admitted since the last drop, so that drops are spread
//! out). Above the maximum threshold every arrival is dropped.
//!
//! The property the paper leans on (§1, §4): *all connections through a RED
//! gateway see the same loss probability, roughly proportional to their
//! bandwidth share*, which is what lets Theorem I derive tighter fairness
//! bounds than the drop-tail case.
//!
//! Parameters and update rules follow the NS2 `red` queue that the paper's
//! simulations used: queue averaged in packets, `w_q = 0.002`,
//! `max_p = 1/linterm = 0.1`, and idle-time compensation using the typical
//! packet transmission time.
//!
//! Every admission decision depends only on queue state and the RNG, never
//! on the offered packet — which is why the discipline can work on bare
//! [`PacketHandle`]s and, crucially, why the RNG stream (and so the trace
//! digest) is unchanged by the arena refactor.

use rand::rngs::StdRng;
use rand::Rng;

use super::{DropReason, Enqueue, HandleRing, QueueDiscipline};
use crate::arena::PacketHandle;
use crate::time::{SimDuration, SimTime};

/// RED gateway parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RedConfig {
    /// Physical buffer size in packets.
    pub limit: usize,
    /// Minimum average-queue threshold (packets) below which nothing drops.
    pub min_th: f64,
    /// Maximum average-queue threshold (packets) above which all arrivals
    /// drop.
    pub max_th: f64,
    /// EWMA weight for the average queue size (NS2 default 0.002).
    pub weight: f64,
    /// Maximum early-drop probability reached at `max_th` (NS2 `1/linterm`,
    /// default 0.1).
    pub max_p: f64,
    /// Typical packet service time, used to age the average while the queue
    /// is idle. Set from the link speed and flow packet size.
    pub mean_pkt_time: SimDuration,
}

impl RedConfig {
    /// The paper's RED gateway: buffer 20, thresholds 5/15, NS2 defaults
    /// elsewhere. `mean_pkt_time` defaults to 1000 B at 10 Mbps; callers
    /// configuring slower bottlenecks should override it via
    /// [`RedConfig::with_mean_pkt_time`].
    pub fn paper() -> Self {
        RedConfig {
            limit: 20,
            min_th: 5.0,
            max_th: 15.0,
            weight: 0.002,
            max_p: 0.1,
            mean_pkt_time: SimDuration::from_micros(800),
        }
    }

    /// Same parameters with the idle-aging packet time replaced.
    pub fn with_mean_pkt_time(mut self, t: SimDuration) -> Self {
        self.mean_pkt_time = t;
        self
    }

    fn validate(&self) {
        assert!(self.limit > 0, "RED queue needs at least one slot");
        assert!(
            self.min_th < self.max_th,
            "RED min threshold must lie below the max threshold"
        );
        assert!(
            (0.0..=1.0).contains(&self.max_p),
            "max_p must be a probability"
        );
        assert!(
            self.weight > 0.0 && self.weight <= 1.0,
            "EWMA weight must be in (0, 1]"
        );
    }
}

/// A RED queue instance.
#[derive(Debug)]
pub struct Red {
    cfg: RedConfig,
    buf: HandleRing,
    /// EWMA of the instantaneous queue length, in packets.
    avg: f64,
    /// Packets admitted since the last drop (the `count` of the paper's
    /// algorithm; -1 encoding is replaced by an Option-free i64).
    count: i64,
    /// When the queue went idle (empty and transmitter free), if it is.
    idle_since: Option<SimTime>,
    /// Total early + forced drops (exposed for diagnostics).
    early_drops: u64,
    forced_drops: u64,
    overflow_drops: u64,
}

impl Red {
    /// Build a RED queue from `cfg`.
    pub fn new(cfg: RedConfig) -> Self {
        cfg.validate();
        Red {
            buf: HandleRing::new(cfg.limit),
            cfg,
            avg: 0.0,
            count: -1,
            idle_since: Some(SimTime::ZERO),
            early_drops: 0,
            forced_drops: 0,
            overflow_drops: 0,
        }
    }

    /// The current average queue estimate, in packets.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// (early, forced, overflow) drop counters.
    pub fn drop_counts(&self) -> (u64, u64, u64) {
        (self.early_drops, self.forced_drops, self.overflow_drops)
    }

    /// The current early-drop ("marking") probability `p_b` implied by
    /// the averaged queue: 0 below `min_th`, `max_p` at `max_th`, linear
    /// in between, clamped to a probability.
    pub fn drop_probability(&self) -> f64 {
        let p_b =
            self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
        p_b.clamp(0.0, 1.0)
    }

    fn update_avg(&mut self, now: SimTime) {
        if let Some(idle_start) = self.idle_since.take() {
            // While the queue was idle, pretend `m` small packets departed,
            // aging the average toward zero: avg <- (1-w)^m * avg.
            let idle = now.saturating_since(idle_start);
            let m = if self.cfg.mean_pkt_time.is_zero() {
                0.0
            } else {
                idle.as_secs_f64() / self.cfg.mean_pkt_time.as_secs_f64()
            };
            self.avg *= (1.0 - self.cfg.weight).powf(m);
        }
        self.avg += self.cfg.weight * (self.buf.len() as f64 - self.avg);
    }

    /// The early-drop decision for the current average, given `count`
    /// packets since the last drop.
    fn early_drop(&mut self, rng: &mut StdRng) -> bool {
        let p_b = self.drop_probability();
        // Spread drops out: the effective probability grows with the number
        // of packets admitted since the last drop.
        let denom = 1.0 - self.count as f64 * p_b;
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        rng.gen::<f64>() < p_a
    }
}

impl QueueDiscipline for Red {
    fn enqueue(&mut self, handle: PacketHandle, now: SimTime, rng: &mut StdRng) -> Enqueue {
        self.update_avg(now);

        if self.avg >= self.cfg.max_th {
            self.count = 0;
            self.forced_drops += 1;
            return Enqueue::Dropped(handle, DropReason::ForcedDrop);
        }
        if self.avg >= self.cfg.min_th {
            if self.count >= 0 {
                self.count += 1;
            } else {
                self.count = 0;
            }
            if self.early_drop(rng) {
                self.count = 0;
                self.early_drops += 1;
                return Enqueue::Dropped(handle, DropReason::EarlyDrop);
            }
        } else {
            self.count = -1;
        }

        if self.buf.len() >= self.cfg.limit {
            self.count = 0;
            self.overflow_drops += 1;
            return Enqueue::Dropped(handle, DropReason::BufferOverflow);
        }
        self.buf.push_back(handle);
        Enqueue::Accepted
    }

    fn dequeue(&mut self, now: SimTime) -> Option<PacketHandle> {
        let p = self.buf.pop_front();
        if self.buf.is_empty() && self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
        p
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.cfg.limit
    }

    fn red_avg(&self) -> Option<f64> {
        Some(self.avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::queue::test_packet;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn fill(
        q: &mut Red,
        arena: &mut PacketArena,
        n: u64,
        now: SimTime,
        rng: &mut StdRng,
    ) -> (u64, u64) {
        let mut accepted = 0;
        let mut dropped = 0;
        for uid in 0..n {
            match q.enqueue(arena.insert(test_packet(uid)), now, rng) {
                Enqueue::Accepted => accepted += 1,
                Enqueue::Dropped(h, _) => {
                    arena.remove(h);
                    dropped += 1;
                }
            }
        }
        (accepted, dropped)
    }

    #[test]
    fn no_drops_below_min_threshold() {
        let mut arena = PacketArena::new();
        let mut q = Red::new(RedConfig::paper());
        let mut r = rng();
        // With avg starting at 0 and w=0.002, a handful of arrivals keeps
        // the average far below min_th = 5: nothing may drop.
        let (acc, drop) = fill(&mut q, &mut arena, 4, SimTime::ZERO, &mut r);
        assert_eq!((acc, drop), (4, 0));
        assert!(q.avg_queue() < 5.0);
    }

    #[test]
    fn forced_drop_above_max_threshold() {
        let cfg = RedConfig {
            weight: 1.0, // avg tracks the instantaneous queue exactly
            ..RedConfig::paper()
        };
        let mut arena = PacketArena::new();
        let mut q = Red::new(cfg);
        let mut r = rng();
        // Push the instantaneous (= average) queue above max_th = 15.
        let (_, _) = fill(&mut q, &mut arena, 16, SimTime::ZERO, &mut r);
        // avg is now >= 15 (or early drops kept it near); keep offering
        // until the average is beyond max_th, then expect a forced drop.
        let mut forced = false;
        for uid in 100..200 {
            if let Enqueue::Dropped(_, DropReason::ForcedDrop) =
                q.enqueue(arena.insert(test_packet(uid)), SimTime::ZERO, &mut r)
            {
                forced = true;
                break;
            }
        }
        assert!(forced, "average queue above max_th must force drops");
    }

    #[test]
    fn overflow_still_protected() {
        // Even with thresholds never reached (huge max_th), the physical
        // buffer bound holds.
        let cfg = RedConfig {
            limit: 3,
            min_th: 1000.0,
            max_th: 2000.0,
            ..RedConfig::paper()
        };
        let mut arena = PacketArena::new();
        let mut q = Red::new(cfg);
        let mut r = rng();
        let (acc, drop) = fill(&mut q, &mut arena, 5, SimTime::ZERO, &mut r);
        assert_eq!((acc, drop), (3, 2));
        assert_eq!(q.drop_counts().2, 2);
    }

    #[test]
    fn idle_period_decays_average() {
        let cfg = RedConfig {
            weight: 0.5,
            ..RedConfig::paper()
        };
        let mut arena = PacketArena::new();
        let mut q = Red::new(cfg);
        let mut r = rng();
        fill(&mut q, &mut arena, 8, SimTime::ZERO, &mut r);
        let avg_busy = q.avg_queue();
        assert!(avg_busy > 1.0);
        while q.dequeue(SimTime::from_secs(1)).is_some() {}
        // A long idle period ages the average toward zero.
        q.enqueue(
            arena.insert(test_packet(99)),
            SimTime::from_secs(10),
            &mut r,
        );
        assert!(
            q.avg_queue() < avg_busy / 2.0,
            "idle aging should shrink the average ({} -> {})",
            avg_busy,
            q.avg_queue()
        );
    }

    #[test]
    fn early_drop_probability_grows_with_average() {
        // Statistical check: with avg pinned just above min_th vs just
        // below max_th, the early-drop rate must increase.
        let drops_at = |target_len: usize| {
            let cfg = RedConfig {
                weight: 1.0,
                limit: 100,
                min_th: 5.0,
                max_th: 50.0,
                max_p: 0.5,
                ..RedConfig::paper()
            };
            let mut arena = PacketArena::new();
            let mut q = Red::new(cfg);
            let mut r = rng();
            // Prime the queue to the target length.
            let mut uid = 0;
            while q.len() < target_len {
                if let Enqueue::Dropped(h, _) =
                    q.enqueue(arena.insert(test_packet(uid)), SimTime::ZERO, &mut r)
                {
                    arena.remove(h);
                }
                uid += 1;
            }
            let mut drops = 0;
            for trial in 0..2000 {
                match q.enqueue(
                    arena.insert(test_packet(1000 + trial)),
                    SimTime::ZERO,
                    &mut r,
                ) {
                    Enqueue::Dropped(h, _) => {
                        arena.remove(h);
                        drops += 1;
                    }
                    Enqueue::Accepted => {
                        let h = q.dequeue(SimTime::ZERO).unwrap(); // hold the length constant
                        arena.remove(h);
                    }
                }
            }
            drops
        };
        let low = drops_at(8);
        let high = drops_at(40);
        assert!(
            high > low * 2,
            "drop rate must grow with the average queue ({low} vs {high})"
        );
    }

    #[test]
    #[should_panic(expected = "min threshold")]
    fn bad_thresholds_rejected() {
        Red::new(RedConfig {
            min_th: 15.0,
            max_th: 5.0,
            ..RedConfig::paper()
        });
    }
}
