//! FIFO drop-tail queue — the dominant router type in the 1998 Internet.

use std::collections::VecDeque;

use rand::rngs::StdRng;

use super::{DropReason, Enqueue, QueueDiscipline};
use crate::packet::Packet;
use crate::time::SimTime;

/// A finite FIFO buffer: arrivals beyond the limit are discarded.
#[derive(Debug)]
pub struct DropTail {
    buf: VecDeque<Packet>,
    limit: usize,
}

impl DropTail {
    /// A drop-tail queue holding at most `limit` packets.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "drop-tail queue needs at least one slot");
        DropTail {
            buf: VecDeque::with_capacity(limit),
            limit,
        }
    }
}

impl QueueDiscipline for DropTail {
    fn enqueue(&mut self, packet: Packet, _now: SimTime, _rng: &mut StdRng) -> Enqueue {
        if self.buf.len() >= self.limit {
            Enqueue::Dropped(packet, DropReason::BufferOverflow)
        } else {
            self.buf.push_back(packet);
            Enqueue::Accepted
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        self.buf.pop_front()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::test_packet;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTail::new(4);
        let mut r = rng();
        for uid in 0..4 {
            assert!(matches!(
                q.enqueue(test_packet(uid), SimTime::ZERO, &mut r),
                Enqueue::Accepted
            ));
        }
        for uid in 0..4 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().uid, uid);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTail::new(2);
        let mut r = rng();
        q.enqueue(test_packet(0), SimTime::ZERO, &mut r);
        q.enqueue(test_packet(1), SimTime::ZERO, &mut r);
        match q.enqueue(test_packet(2), SimTime::ZERO, &mut r) {
            Enqueue::Dropped(p, DropReason::BufferOverflow) => assert_eq!(p.uid, 2),
            other => panic!("expected overflow drop, got {other:?}"),
        }
        // Earlier arrivals are untouched.
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(SimTime::ZERO).unwrap().uid, 0);
    }

    #[test]
    fn frees_slot_after_dequeue() {
        let mut q = DropTail::new(1);
        let mut r = rng();
        q.enqueue(test_packet(0), SimTime::ZERO, &mut r);
        assert!(matches!(
            q.enqueue(test_packet(1), SimTime::ZERO, &mut r),
            Enqueue::Dropped(..)
        ));
        q.dequeue(SimTime::ZERO);
        assert!(matches!(
            q.enqueue(test_packet(2), SimTime::ZERO, &mut r),
            Enqueue::Accepted
        ));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        DropTail::new(0);
    }
}
