//! FIFO drop-tail queue — the dominant router type in the 1998 Internet.

use rand::rngs::StdRng;

use super::{DropReason, Enqueue, HandleRing, QueueDiscipline};
use crate::arena::PacketHandle;
use crate::time::SimTime;

/// A finite FIFO buffer: arrivals beyond the limit are discarded.
#[derive(Debug)]
pub struct DropTail {
    buf: HandleRing,
}

impl DropTail {
    /// A drop-tail queue holding at most `limit` packets.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "drop-tail queue needs at least one slot");
        DropTail {
            buf: HandleRing::new(limit),
        }
    }
}

impl QueueDiscipline for DropTail {
    fn enqueue(&mut self, handle: PacketHandle, _now: SimTime, _rng: &mut StdRng) -> Enqueue {
        if self.buf.len() >= self.buf.capacity() {
            Enqueue::Dropped(handle, DropReason::BufferOverflow)
        } else {
            self.buf.push_back(handle);
            Enqueue::Accepted
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<PacketHandle> {
        self.buf.pop_front()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PacketArena;
    use crate::queue::test_packet;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn fifo_order() {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(4);
        let mut r = rng();
        for uid in 0..4 {
            let h = arena.insert(test_packet(uid));
            assert!(matches!(
                q.enqueue(h, SimTime::ZERO, &mut r),
                Enqueue::Accepted
            ));
        }
        for uid in 0..4 {
            let h = q.dequeue(SimTime::ZERO).unwrap();
            assert_eq!(arena.get(h).uid, uid);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(2);
        let mut r = rng();
        q.enqueue(arena.insert(test_packet(0)), SimTime::ZERO, &mut r);
        q.enqueue(arena.insert(test_packet(1)), SimTime::ZERO, &mut r);
        match q.enqueue(arena.insert(test_packet(2)), SimTime::ZERO, &mut r) {
            Enqueue::Dropped(h, DropReason::BufferOverflow) => {
                assert_eq!(arena.remove(h).uid, 2);
            }
            other => panic!("expected overflow drop, got {other:?}"),
        }
        // Earlier arrivals are untouched.
        assert_eq!(q.len(), 2);
        let h = q.dequeue(SimTime::ZERO).unwrap();
        assert_eq!(arena.get(h).uid, 0);
    }

    #[test]
    fn frees_slot_after_dequeue() {
        let mut arena = PacketArena::new();
        let mut q = DropTail::new(1);
        let mut r = rng();
        q.enqueue(arena.insert(test_packet(0)), SimTime::ZERO, &mut r);
        assert!(matches!(
            q.enqueue(arena.insert(test_packet(1)), SimTime::ZERO, &mut r),
            Enqueue::Dropped(..)
        ));
        q.dequeue(SimTime::ZERO);
        assert!(matches!(
            q.enqueue(arena.insert(test_packet(2)), SimTime::ZERO, &mut r),
            Enqueue::Accepted
        ));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        DropTail::new(0);
    }
}
