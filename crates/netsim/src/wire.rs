//! Transport segment representations.
//!
//! Following the smoltcp convention, the base crate defines the *wire
//! formats* that travel inside packets, while the protocol *behaviour*
//! (window management, loss detection) lives in the transport crates
//! (`tcp-sack`, `rla`, `baselines`).
//!
//! Sequence numbers count packets, not bytes — the paper's analysis is
//! entirely in packet units (windows in packets, throughput in pkt/s), and
//! all data packets have a fixed size per flow.

use crate::id::AgentId;
use crate::time::SimTime;

/// The maximum number of SACK blocks carried in one acknowledgment, as in
/// RFC 2018 (40 bytes of TCP option space / 8 bytes per block, with one slot
/// lost to the timestamp option in practice).
pub const MAX_SACK_BLOCKS: usize = 3;

/// A half-open range `[start, end)` of packet sequence numbers that the
/// receiver holds above the cumulative acknowledgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SackBlock {
    /// First sequence number covered by the block.
    pub start: u64,
    /// One past the last sequence number covered by the block.
    pub end: u64,
}

impl SackBlock {
    /// Number of packets the block covers.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` for a degenerate empty block.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` if `seq` falls inside the block.
    pub fn contains(&self, seq: u64) -> bool {
        (self.start..self.end).contains(&seq)
    }
}

/// A TCP data segment (one packet of the flow's fixed packet size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// `true` when this is a retransmission.
    pub retransmit: bool,
    /// Timestamp at which the sender transmitted the segment; echoed by the
    /// receiver for RTT measurement (the timestamp option).
    pub timestamp: SimTime,
}

/// A TCP SACK acknowledgment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpAck {
    /// Cumulative ack: all packets with `seq < cum_ack` have been received.
    pub cum_ack: u64,
    /// Out-of-order data held by the receiver, most recent block first.
    pub sack: Vec<SackBlock>,
    /// Echo of the data segment timestamp that triggered this ack.
    pub echo_timestamp: SimTime,
}

/// A multicast data segment (used by the RLA sender).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McastData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// `true` when this is a retransmission.
    pub retransmit: bool,
    /// Sender transmission timestamp, echoed by receivers.
    pub timestamp: SimTime,
}

/// A multicast receiver's selective acknowledgment, unicast back to the
/// sender. Same format as [`TcpAck`] plus the receiver's identity (the RLA
/// sender keeps per-receiver state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McastAck {
    /// The acknowledging receiver.
    pub receiver: AgentId,
    /// Cumulative ack: all packets with `seq < cum_ack` received.
    pub cum_ack: u64,
    /// Out-of-order data held by the receiver.
    pub sack: Vec<SackBlock>,
    /// Echo of the data segment timestamp that triggered this ack.
    pub echo_timestamp: SimTime,
    /// Set by a receiver that wants an immediate unicast retransmission of
    /// the first hole (paper §3.3, footnote 8).
    pub urgent_rexmit: bool,
}

/// A data packet from a rate-based sender (LTRC / MBFC baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// Sender transmission timestamp.
    pub timestamp: SimTime,
}

/// Periodic feedback from a rate-based receiver: a loss-rate report over the
/// last monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateFeedback {
    /// The reporting receiver.
    pub receiver: AgentId,
    /// Highest sequence number seen so far.
    pub highest_seq: u64,
    /// Packets detected lost during the report interval.
    pub lost: u64,
    /// Packets received during the report interval.
    pub received: u64,
    /// Exponentially-weighted moving average of the receiver's loss rate.
    pub avg_loss_rate: f64,
}

/// The transport payload of a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// No transport payload (cross traffic, probes).
    Raw,
    /// TCP data.
    TcpData(TcpData),
    /// TCP selective acknowledgment.
    TcpAck(TcpAck),
    /// Multicast data (RLA).
    McastData(McastData),
    /// Multicast receiver SACK (RLA).
    McastAck(McastAck),
    /// Rate-based multicast data (baselines).
    RateData(RateData),
    /// Rate-based receiver feedback (baselines).
    RateFeedback(RateFeedback),
}

impl Segment {
    /// Short tag for traces.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Segment::Raw => "raw",
            Segment::TcpData(_) => "tcp-data",
            Segment::TcpAck(_) => "tcp-ack",
            Segment::McastData(_) => "mc-data",
            Segment::McastAck(_) => "mc-ack",
            Segment::RateData(_) => "rate-data",
            Segment::RateFeedback(_) => "rate-fb",
        }
    }

    /// `true` for data-bearing segments (as opposed to feedback).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            Segment::TcpData(_) | Segment::McastData(_) | Segment::RateData(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sack_block_geometry() {
        let b = SackBlock { start: 10, end: 14 };
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(b.contains(10) && b.contains(13));
        assert!(!b.contains(14) && !b.contains(9));

        let e = SackBlock { start: 5, end: 5 };
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn segment_classification() {
        assert!(Segment::TcpData(TcpData {
            seq: 0,
            retransmit: false,
            timestamp: SimTime::ZERO
        })
        .is_data());
        assert!(!Segment::TcpAck(TcpAck {
            cum_ack: 0,
            sack: vec![],
            echo_timestamp: SimTime::ZERO
        })
        .is_data());
        assert_eq!(Segment::Raw.kind_str(), "raw");
    }
}
