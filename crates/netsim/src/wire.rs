//! Transport segment representations.
//!
//! Following the smoltcp convention, the base crate defines the *wire
//! formats* that travel inside packets, while the protocol *behaviour*
//! (window management, loss detection) lives in the transport crates
//! (`tcp-sack`, `rla`, `baselines`).
//!
//! Sequence numbers count packets, not bytes — the paper's analysis is
//! entirely in packet units (windows in packets, throughput in pkt/s), and
//! all data packets have a fixed size per flow.

use crate::id::AgentId;
use crate::time::SimTime;

/// The maximum number of SACK blocks carried in one acknowledgment, as in
/// RFC 2018 (40 bytes of TCP option space / 8 bytes per block, with one slot
/// lost to the timestamp option in practice).
pub const MAX_SACK_BLOCKS: usize = 3;

/// A half-open range `[start, end)` of packet sequence numbers that the
/// receiver holds above the cumulative acknowledgment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SackBlock {
    /// First sequence number covered by the block.
    pub start: u64,
    /// One past the last sequence number covered by the block.
    pub end: u64,
}

impl SackBlock {
    /// Number of packets the block covers.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` for a degenerate empty block.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` if `seq` falls inside the block.
    pub fn contains(&self, seq: u64) -> bool {
        (self.start..self.end).contains(&seq)
    }
}

/// The SACK blocks carried in one acknowledgment: an inline array bounded
/// by the wire format's [`MAX_SACK_BLOCKS`], in the order they appear on
/// the wire (most recent block first, remainder by descending start).
///
/// Acks are forged and copied on every data packet, so the list is a plain
/// `Copy` value — no heap allocation per acknowledgment, and segments that
/// carry one stay `memcpy`-able.
#[derive(Debug, Clone, Copy, Default)]
pub struct SackList {
    blocks: [SackBlock; MAX_SACK_BLOCKS],
    len: u8,
}

impl SackList {
    /// An empty list.
    pub const EMPTY: SackList = SackList {
        blocks: [SackBlock { start: 0, end: 0 }; MAX_SACK_BLOCKS],
        len: 0,
    };

    /// An empty list.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Append a block. Blocks beyond [`MAX_SACK_BLOCKS`] are silently
    /// discarded — exactly the wire truncation RFC 2018 imposes when the
    /// option space runs out.
    pub fn push(&mut self, block: SackBlock) {
        if (self.len as usize) < MAX_SACK_BLOCKS {
            self.blocks[self.len as usize] = block;
            self.len += 1;
        }
    }

    /// The carried blocks, in wire order.
    pub fn as_slice(&self) -> &[SackBlock] {
        &self.blocks[..self.len as usize]
    }

    /// Build the wire list from an *ascending* iterator of out-of-order
    /// sequence numbers (the receiver's reorder buffer): maximal runs become
    /// blocks; the block containing `latest` is listed first, then the
    /// remaining blocks from highest to lowest start, truncated to
    /// [`MAX_SACK_BLOCKS`].
    ///
    /// Runs arrive in ascending start order, so the blocks we may need are
    /// the one holding `latest` plus the last `MAX_SACK_BLOCKS` runs seen —
    /// kept in a fixed ring, no allocation.
    pub fn from_ascending_seqs(seqs: impl IntoIterator<Item = u64>, latest: u64) -> SackList {
        let mut latest_block: Option<SackBlock> = None;
        // Ring of the highest-start runs seen so far (ascending input means
        // the last MAX_SACK_BLOCKS runs are the highest).
        let mut ring = [SackBlock::default(); MAX_SACK_BLOCKS];
        let mut ring_len = 0usize; // total runs ever pushed
        let push_run = |run: SackBlock,
                        latest_block: &mut Option<SackBlock>,
                        ring: &mut [SackBlock; MAX_SACK_BLOCKS],
                        ring_len: &mut usize| {
            if run.contains(latest) {
                *latest_block = Some(run);
            }
            ring[*ring_len % MAX_SACK_BLOCKS] = run;
            *ring_len += 1;
        };

        let mut iter = seqs.into_iter();
        if let Some(first) = iter.next() {
            let mut cur = SackBlock {
                start: first,
                end: first + 1,
            };
            for seq in iter {
                debug_assert!(seq > cur.end - 1, "sequences must be ascending and unique");
                if seq == cur.end {
                    cur.end += 1;
                } else {
                    push_run(cur, &mut latest_block, &mut ring, &mut ring_len);
                    cur = SackBlock {
                        start: seq,
                        end: seq + 1,
                    };
                }
            }
            push_run(cur, &mut latest_block, &mut ring, &mut ring_len);
        }

        let mut out = SackList::new();
        if let Some(lb) = latest_block {
            out.push(lb);
        }
        // Walk the ring newest-first (descending start), skipping the block
        // already emitted for `latest`.
        let kept = ring_len.min(MAX_SACK_BLOCKS);
        for i in 0..kept {
            let idx = (ring_len - 1 - i) % MAX_SACK_BLOCKS;
            let run = ring[idx];
            if Some(run) != latest_block {
                out.push(run);
            }
        }
        out
    }
}

impl std::ops::Deref for SackList {
    type Target = [SackBlock];
    fn deref(&self) -> &[SackBlock] {
        self.as_slice()
    }
}

impl PartialEq for SackList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SackList {}

impl<'a> IntoIterator for &'a SackList {
    type Item = &'a SackBlock;
    type IntoIter = std::slice::Iter<'a, SackBlock>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<SackBlock> for SackList {
    fn from_iter<T: IntoIterator<Item = SackBlock>>(iter: T) -> Self {
        let mut out = SackList::new();
        for b in iter {
            out.push(b);
        }
        out
    }
}

/// A TCP data segment (one packet of the flow's fixed packet size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// `true` when this is a retransmission.
    pub retransmit: bool,
    /// Timestamp at which the sender transmitted the segment; echoed by the
    /// receiver for RTT measurement (the timestamp option).
    pub timestamp: SimTime,
}

/// A TCP SACK acknowledgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpAck {
    /// Cumulative ack: all packets with `seq < cum_ack` have been received.
    pub cum_ack: u64,
    /// Out-of-order data held by the receiver, most recent block first.
    pub sack: SackList,
    /// Echo of the data segment timestamp that triggered this ack.
    pub echo_timestamp: SimTime,
}

/// A multicast data segment (used by the RLA sender).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McastData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// `true` when this is a retransmission.
    pub retransmit: bool,
    /// Sender transmission timestamp, echoed by receivers.
    pub timestamp: SimTime,
}

/// A multicast receiver's selective acknowledgment, unicast back to the
/// sender. Same format as [`TcpAck`] plus the receiver's identity (the RLA
/// sender keeps per-receiver state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McastAck {
    /// The acknowledging receiver.
    pub receiver: AgentId,
    /// Cumulative ack: all packets with `seq < cum_ack` received.
    pub cum_ack: u64,
    /// Out-of-order data held by the receiver.
    pub sack: SackList,
    /// Echo of the data segment timestamp that triggered this ack.
    pub echo_timestamp: SimTime,
    /// Set by a receiver that wants an immediate unicast retransmission of
    /// the first hole (paper §3.3, footnote 8).
    pub urgent_rexmit: bool,
}

/// A data packet from a rate-based sender (LTRC / MBFC baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateData {
    /// Packet sequence number, starting at 0.
    pub seq: u64,
    /// Sender transmission timestamp.
    pub timestamp: SimTime,
}

/// Periodic feedback from a rate-based receiver: a loss-rate report over the
/// last monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateFeedback {
    /// The reporting receiver.
    pub receiver: AgentId,
    /// Highest sequence number seen so far.
    pub highest_seq: u64,
    /// Packets detected lost during the report interval.
    pub lost: u64,
    /// Packets received during the report interval.
    pub received: u64,
    /// Exponentially-weighted moving average of the receiver's loss rate.
    pub avg_loss_rate: f64,
}

/// The transport payload of a packet.
///
/// Every variant is a plain `Copy` value (acks carry their SACK blocks
/// inline as a [`SackList`]), so cloning a packet — multicast fan-out,
/// trace snapshots — never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// No transport payload (cross traffic, probes).
    Raw,
    /// TCP data.
    TcpData(TcpData),
    /// TCP selective acknowledgment.
    TcpAck(TcpAck),
    /// Multicast data (RLA).
    McastData(McastData),
    /// Multicast receiver SACK (RLA).
    McastAck(McastAck),
    /// Rate-based multicast data (baselines).
    RateData(RateData),
    /// Rate-based receiver feedback (baselines).
    RateFeedback(RateFeedback),
}

impl Segment {
    /// Short tag for traces.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Segment::Raw => "raw",
            Segment::TcpData(_) => "tcp-data",
            Segment::TcpAck(_) => "tcp-ack",
            Segment::McastData(_) => "mc-data",
            Segment::McastAck(_) => "mc-ack",
            Segment::RateData(_) => "rate-data",
            Segment::RateFeedback(_) => "rate-fb",
        }
    }

    /// `true` for data-bearing segments (as opposed to feedback).
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            Segment::TcpData(_) | Segment::McastData(_) | Segment::RateData(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sack_block_geometry() {
        let b = SackBlock { start: 10, end: 14 };
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(b.contains(10) && b.contains(13));
        assert!(!b.contains(14) && !b.contains(9));

        let e = SackBlock { start: 5, end: 5 };
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn sack_list_builds_runs_latest_first() {
        // ooo = {2,3} ∪ {5} ∪ {7}; latest receipt is 5.
        let l = SackList::from_ascending_seqs([2, 3, 5, 7], 5);
        assert_eq!(
            l.as_slice(),
            [
                SackBlock { start: 5, end: 6 },
                SackBlock { start: 7, end: 8 },
                SackBlock { start: 2, end: 4 },
            ]
        );
    }

    #[test]
    fn sack_list_truncates_to_wire_limit() {
        // Nine isolated runs; only MAX_SACK_BLOCKS survive, and the block
        // holding `latest` always does.
        let l = SackList::from_ascending_seqs((2..20).step_by(2), 2);
        assert_eq!(l.len(), MAX_SACK_BLOCKS);
        assert_eq!(l[0], SackBlock { start: 2, end: 3 });
        assert_eq!(l[1], SackBlock { start: 18, end: 19 });
        assert_eq!(l[2], SackBlock { start: 16, end: 17 });
    }

    #[test]
    fn sack_list_without_latest_is_descending() {
        // `latest` filled a hole and was consumed: not in the buffer.
        let l = SackList::from_ascending_seqs([4, 5, 8, 11], 1);
        assert_eq!(
            l.as_slice(),
            [
                SackBlock { start: 11, end: 12 },
                SackBlock { start: 8, end: 9 },
                SackBlock { start: 4, end: 6 },
            ]
        );
    }

    #[test]
    fn sack_list_empty_and_eq() {
        assert!(SackList::from_ascending_seqs([], 0).is_empty());
        let a: SackList = [SackBlock { start: 1, end: 2 }].into_iter().collect();
        let b = SackList::from_ascending_seqs([1], 1);
        assert_eq!(a, b);
        assert_ne!(a, SackList::EMPTY);
    }

    #[test]
    fn sack_list_push_discards_overflow() {
        let mut l = SackList::new();
        for i in 0..5 {
            l.push(SackBlock {
                start: i * 10,
                end: i * 10 + 1,
            });
        }
        assert_eq!(l.len(), MAX_SACK_BLOCKS);
        assert_eq!(l[2], SackBlock { start: 20, end: 21 });
    }

    #[test]
    fn segment_classification() {
        assert!(Segment::TcpData(TcpData {
            seq: 0,
            retransmit: false,
            timestamp: SimTime::ZERO
        })
        .is_data());
        assert!(!Segment::TcpAck(TcpAck {
            cum_ack: 0,
            sack: SackList::new(),
            echo_timestamp: SimTime::ZERO
        })
        .is_data());
        assert_eq!(Segment::Raw.kind_str(), "raw");
    }
}
