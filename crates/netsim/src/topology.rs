//! Reusable topology builders.
//!
//! Generic shapes used by tests and examples; the paper's specific
//! four-level tertiary tree (figure 6) is assembled in the `experiments`
//! crate from these primitives.

use crate::engine::Engine;
use crate::id::{ChannelId, NodeId};
use crate::queue::QueueConfig;
use crate::time::SimDuration;

/// Link parameters used by the builders.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Buffer discipline for both directions.
    pub queue: QueueConfig,
}

impl LinkSpec {
    /// A convenience constructor.
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue: QueueConfig) -> Self {
        LinkSpec {
            bandwidth_bps,
            delay,
            queue,
        }
    }
}

/// The classic dumbbell: `n_left` hosts on one router, `n_right` hosts on
/// another, a single shared bottleneck in the middle.
#[derive(Debug)]
pub struct Dumbbell {
    /// Hosts attached to the left router.
    pub left_hosts: Vec<NodeId>,
    /// Hosts attached to the right router.
    pub right_hosts: Vec<NodeId>,
    /// The left router.
    pub left_router: NodeId,
    /// The right router.
    pub right_router: NodeId,
    /// The bottleneck channel left→right (the congested direction).
    pub bottleneck: ChannelId,
    /// The reverse bottleneck channel right→left (carries ACKs).
    pub bottleneck_rev: ChannelId,
}

/// Build a dumbbell. Access links use `access`, the shared middle link uses
/// `bottleneck`.
pub fn dumbbell(
    engine: &mut Engine,
    n_left: usize,
    n_right: usize,
    access: &LinkSpec,
    bottleneck: &LinkSpec,
) -> Dumbbell {
    let left_router = engine.add_node("rl");
    let right_router = engine.add_node("rr");
    let (bn, bn_rev) = engine.add_link(
        left_router,
        right_router,
        bottleneck.bandwidth_bps,
        bottleneck.delay,
        &bottleneck.queue,
    );
    let left_hosts = (0..n_left)
        .map(|i| {
            let h = engine.add_node(format!("l{i}"));
            engine.add_link(
                h,
                left_router,
                access.bandwidth_bps,
                access.delay,
                &access.queue,
            );
            h
        })
        .collect();
    let right_hosts = (0..n_right)
        .map(|i| {
            let h = engine.add_node(format!("r{i}"));
            engine.add_link(
                right_router,
                h,
                access.bandwidth_bps,
                access.delay,
                &access.queue,
            );
            h
        })
        .collect();
    Dumbbell {
        left_hosts,
        right_hosts,
        left_router,
        right_router,
        bottleneck: bn,
        bottleneck_rev: bn_rev,
    }
}

/// A complete k-ary tree of gateways with hosts at the leaves.
#[derive(Debug)]
pub struct KaryTree {
    /// The root node.
    pub root: NodeId,
    /// `levels[l]` holds the nodes at depth `l` (`levels[0] = [root]`).
    pub levels: Vec<Vec<NodeId>>,
    /// `links[l][i]` is the `(down, up)` channel pair of the i-th link
    /// *entering* level `l+1` (so `links[0]` are the root's links).
    pub links: Vec<Vec<(ChannelId, ChannelId)>>,
}

impl KaryTree {
    /// The leaf nodes (deepest level).
    pub fn leaves(&self) -> &[NodeId] {
        self.levels.last().map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Build a k-ary tree of the given `depth` (number of link levels).
/// `level_specs[l]` describes the links between level `l` and `l+1`; its
/// length must equal `depth`.
pub fn kary_tree(engine: &mut Engine, arity: usize, level_specs: &[LinkSpec]) -> KaryTree {
    assert!(arity >= 1, "tree arity must be at least 1");
    assert!(!level_specs.is_empty(), "tree must have at least one level");
    let root = engine.add_node("root");
    let mut levels = vec![vec![root]];
    let mut links = Vec::new();
    for (depth, spec) in level_specs.iter().enumerate() {
        let mut next = Vec::new();
        let mut level_links = Vec::new();
        let parents = levels[depth].clone();
        for (pi, &parent) in parents.iter().enumerate() {
            for c in 0..arity {
                let idx = pi * arity + c;
                let child = engine.add_node(format!("d{}n{}", depth + 1, idx));
                let pair =
                    engine.add_link(parent, child, spec.bandwidth_bps, spec.delay, &spec.queue);
                next.push(child);
                level_links.push(pair);
            }
        }
        levels.push(next);
        links.push(level_links);
    }
    KaryTree {
        root,
        levels,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LinkSpec {
        LinkSpec::new(
            8_000_000,
            SimDuration::from_millis(5),
            QueueConfig::paper_droptail(),
        )
    }

    #[test]
    fn dumbbell_shape() {
        let mut e = Engine::new(0);
        let d = dumbbell(&mut e, 3, 3, &spec(), &spec());
        assert_eq!(d.left_hosts.len(), 3);
        assert_eq!(d.right_hosts.len(), 3);
        // 2 routers + 6 hosts.
        assert_eq!(e.world().node_count(), 8);
        // 7 duplex links = 14 channels.
        assert_eq!(e.world().channel_count(), 14);
        e.compute_routes();
        // Left host routes toward right host via left router.
        let lh = d.left_hosts[0];
        assert!(e.world().node(lh).route_to(d.right_hosts[0]).is_some());
    }

    #[test]
    fn tertiary_tree_shape() {
        // The paper's tree: depth 4, arity 3 -> 1+3+9+27+81? No: the paper
        // branches 3-way at each of 3 gateway levels below a single chain
        // link; the generic builder here is a full 3-ary tree, so depth 3
        // gives 27 leaves.
        let mut e = Engine::new(0);
        let t = kary_tree(&mut e, 3, &[spec(), spec(), spec()]);
        assert_eq!(t.levels.len(), 4);
        assert_eq!(t.leaves().len(), 27);
        assert_eq!(t.links[0].len(), 3);
        assert_eq!(t.links[2].len(), 27);
        e.compute_routes();
        // Root can reach every leaf.
        for &leaf in t.leaves() {
            assert!(e.world().node(t.root).route_to(leaf).is_some());
        }
    }
}
