//! Channel-level fault injection.
//!
//! Two uses:
//! * testing transport robustness under adverse conditions (the smoltcp
//!   example-suite idiom), and
//! * constructing the paper's *analytic* loss models directly — figure 2's
//!   "independent loss paths" and "common loss path" cases are Bernoulli
//!   losses on chosen channels, with no queueing involved.

use rand::rngs::StdRng;
use rand::Rng;

/// Random packet discard on a channel, applied before the queue.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability that any given packet is discarded.
    pub drop_prob: f64,
    /// When `true`, only data-bearing segments are dropped (feedback is
    /// spared). The analytic scenarios use this so that ACK loss does not
    /// contaminate the congestion-probability bookkeeping.
    pub data_only: bool,
    drops: u64,
    passed: u64,
}

impl FaultInjector {
    /// Drop every packet independently with probability `drop_prob`.
    pub fn new(drop_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop probability must be in [0, 1]"
        );
        FaultInjector {
            drop_prob,
            data_only: false,
            drops: 0,
            passed: 0,
        }
    }

    /// Restrict drops to data segments.
    pub fn data_only(mut self) -> Self {
        self.data_only = true;
        self
    }

    /// Decide the fate of a packet carrying `is_data` payload.
    pub fn should_drop(&mut self, is_data: bool, rng: &mut StdRng) -> bool {
        if self.data_only && !is_data {
            self.passed += 1;
            return false;
        }
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            self.drops += 1;
            true
        } else {
            self.passed += 1;
            false
        }
    }

    /// (dropped, passed) counters.
    pub fn counts(&self) -> (u64, u64) {
        (self.drops, self.passed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_probability_never_drops() {
        let mut f = FaultInjector::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(!f.should_drop(true, &mut rng));
        }
        assert_eq!(f.counts(), (0, 1000));
    }

    #[test]
    fn one_probability_always_drops() {
        let mut f = FaultInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(f.should_drop(true, &mut rng));
        }
        assert_eq!(f.counts(), (100, 0));
    }

    #[test]
    fn rate_is_statistically_close() {
        let mut f = FaultInjector::new(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut drops = 0;
        for _ in 0..20_000 {
            if f.should_drop(true, &mut rng) {
                drops += 1;
            }
        }
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn data_only_spares_feedback() {
        let mut f = FaultInjector::new(1.0).data_only();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(f.should_drop(true, &mut rng));
        assert!(!f.should_drop(false, &mut rng));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        FaultInjector::new(1.5);
    }
}
