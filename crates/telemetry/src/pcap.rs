//! Classic-libpcap export of the engine's packet-event stream.
//!
//! NS-2/NS-3 workflows lean on trace files inspected with tcptrace and
//! Wireshark; this module gives the reproduction the same ecosystem
//! leverage. A [`PcapTracer`] observes [`TraceEvent::TxStart`] — one
//! record per transmission start, so the file's packet count equals the
//! run digest's `tx_starts` counter — and a [`PcapWriter`] serializes
//! each simulated packet as a *synthetic* Ethernet/IPv4 frame:
//!
//! * TCP segments ([`Segment::TcpData`]/[`Segment::TcpAck`]) become IPv4
//!   protocol 6 with the real sequence/ack numbers in the TCP header and
//!   SACK blocks encoded as a genuine RFC 2018 TCP option, so tcptrace
//!   sees the actual scoreboard.
//! * Multicast and rate-based segments become IPv4 protocol 17 (UDP)
//!   with a small fixed payload carrying the kind tag and the
//!   sequence/ack numbers (see [`RLA_PAYLOAD_LEN`]).
//!
//! Addresses and ports are derived deterministically from the simulator
//! ids (see [`agent_ip`]/[`group_ip`]); sequence numbers stay in the
//! paper's *packet* units. Timestamps use the nanosecond-resolution pcap
//! magic (`0xa1b23c4d`) so a [`SimTime`] round-trips exactly.
//!
//! The hand-rolled [`PcapReader`] exists for tests and CI validation
//! only — it parses exactly what the writer emits (plus the classic
//! microsecond magic) and is not a general pcap implementation.
//!
//! Like every tracer, the pcap path is observer-only: the engine's trace
//! digest is computed independently, so enabling export can never change
//! a golden digest.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use netsim::id::{AgentId, GroupId};
use netsim::packet::{Dest, Packet};
use netsim::time::SimTime;
use netsim::trace::{TraceEvent, Tracer};
use netsim::wire::Segment;

/// Nanosecond-resolution libpcap magic (the classic layout with `ts_usec`
/// holding nanoseconds), written little-endian.
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
/// Microsecond-resolution libpcap magic; accepted by the reader.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Default snapshot length: every synthetic frame we emit fits (headers
/// plus the small RLA payload; the simulated bulk payload bytes are
/// *not* materialized — they exist only in `orig_len`).
pub const DEFAULT_SNAPLEN: u32 = 128;
/// Default spill-to-disk chunk size for the spooled tracer mode, in
/// records (~100 B of buffered `Packet` each, so the in-memory bound is
/// a few MB regardless of run length).
pub const DEFAULT_SPOOL_RECORDS: usize = 65_536;
/// Bytes of synthetic payload carried by the UDP framing (kind tag,
/// flags, and the 64-bit sequence or cumulative-ack number).
pub const RLA_PAYLOAD_LEN: usize = 12;

const ETH_HEADER_LEN: usize = 14;
const IPV4_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
const TCP_BASE_HEADER_LEN: usize = 20;

/// Writes one classic libpcap file. Records are buffered; [`finish`]
/// (or drop) flushes.
///
/// [`finish`]: PcapWriter::finish
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    records: u64,
}

impl PcapWriter<BufWriter<std::fs::File>> {
    /// Create `path` (truncating) and write the global header, creating
    /// parent directories as needed.
    pub fn create(path: &Path, snaplen: u32) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        PcapWriter::new(BufWriter::new(file), snaplen)
    }
}

impl<W: Write> PcapWriter<W> {
    /// Wrap `out` and write the 24-byte global header. `snaplen` is
    /// floored at 64 so a record always captures at least the synthetic
    /// link/network headers.
    pub fn new(mut out: W, snaplen: u32) -> io::Result<Self> {
        let snaplen = snaplen.max(64);
        out.write_all(&MAGIC_NANOS.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            out,
            snaplen,
            records: 0,
        })
    }

    /// The configured snapshot length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Serialize one packet as a record stamped `now`.
    pub fn record(&mut self, now: SimTime, packet: &Packet) -> io::Result<()> {
        let bytes = record_bytes(self.snaplen, now, packet);
        self.write_record_bytes(&bytes)
    }

    /// Append one pre-built record (see [`record_bytes`]) verbatim. The
    /// spooled tracer builds records when spilling chunks and streams
    /// them back through here at merge time.
    pub fn write_record_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.out.write_all(bytes)?;
        self.records += 1;
        Ok(())
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Build the on-disk bytes of one pcap record (16-byte record header +
/// truncated frame) without writing it. [`PcapWriter::record`] and the
/// tracer's spool chunks share this, so the spooled and unspooled paths
/// are byte-identical by construction.
pub fn record_bytes(snaplen: u32, now: SimTime, packet: &Packet) -> Vec<u8> {
    let frame = build_frame(packet);
    let caplen = (frame.len() as u32).min(snaplen.max(64));
    // On the wire the packet occupies its full simulated size; the
    // frame we materialize holds only headers + the tiny synthetic
    // payload, so orig_len ≥ caplen always.
    let orig_len = (ETH_HEADER_LEN as u32 + packet.size_bytes).max(frame.len() as u32);
    let nanos = now.as_nanos();
    let mut b = Vec::with_capacity(16 + caplen as usize);
    b.extend_from_slice(&((nanos / 1_000_000_000) as u32).to_le_bytes());
    b.extend_from_slice(&((nanos % 1_000_000_000) as u32).to_le_bytes());
    b.extend_from_slice(&caplen.to_le_bytes());
    b.extend_from_slice(&orig_len.to_le_bytes());
    b.extend_from_slice(&frame[..caplen as usize]);
    b
}

/// Deterministic IPv4 address for a unicast endpoint: `10.0.h.l` from the
/// agent id (h/l = id's high/low byte). Collision-free up to 65536 agents,
/// far above any scenario here.
pub fn agent_ip(a: AgentId) -> [u8; 4] {
    let i = a.index() as u16;
    [10, 0, (i >> 8) as u8, (i & 0xff) as u8]
}

/// Deterministic IPv4 multicast group address: `239.0.h.l` from the group
/// id (administratively-scoped block).
pub fn group_ip(g: GroupId) -> [u8; 4] {
    let i = g.index() as u16;
    [239, 0, (i >> 8) as u8, (i & 0xff) as u8]
}

/// Locally-administered MAC for an agent: `02:52:4c:41:h:l` (`52 4c 41` =
/// "RLA").
fn agent_mac(a: AgentId) -> [u8; 6] {
    let i = a.index() as u16;
    [0x02, 0x52, 0x4c, 0x41, (i >> 8) as u8, (i & 0xff) as u8]
}

/// Standard IPv4-multicast MAC mapping `01:00:5e` + low 23 bits.
fn group_mac(g: GroupId) -> [u8; 6] {
    let ip = group_ip(g);
    [0x01, 0x00, 0x5e, ip[1] & 0x7f, ip[2], ip[3]]
}

/// Ports: data flows use `10000 + src` → `20000 + dst-entity`; feedback
/// reverses the derivation so a (src ip, src port, dst ip, dst port)
/// 4-tuple groups each flow's two directions together in Wireshark.
fn port_for(a: AgentId, base: u16) -> u16 {
    base.wrapping_add((a.index() % 10000) as u16)
}

fn group_port(g: GroupId) -> u16 {
    20000u16.wrapping_add((g.index() % 10000) as u16)
}

/// One's-complement checksum over `data` (padded with a zero byte if odd).
fn inet_checksum(seed: u32, data: &[u8]) -> u16 {
    let mut sum = seed;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// The L4 view of a segment: protocol, ports, header+payload bytes.
struct L4 {
    protocol: u8,
    bytes: Vec<u8>,
}

/// Build the synthetic TCP header (with a SACK option when the ack
/// carries blocks). Sequence/ack numbers are the simulator's *packet*
/// units, truncated to u32 as on a real wire.
fn tcp_l4(packet: &Packet) -> L4 {
    let (sport, dport, seq, ack, flags, sack) = match &packet.segment {
        Segment::TcpData(d) => {
            let dst = match packet.dest {
                Dest::Agent(a) => a,
                Dest::Group(_) => AgentId(0),
            };
            (
                port_for(packet.src, 10000),
                port_for(dst, 20000),
                d.seq as u32,
                0u32,
                0x18u8, // PSH|ACK
                None,
            )
        }
        Segment::TcpAck(a) => {
            let dst = match packet.dest {
                Dest::Agent(x) => x,
                Dest::Group(_) => AgentId(0),
            };
            (
                port_for(packet.src, 20000),
                port_for(dst, 10000),
                0u32,
                a.cum_ack as u32,
                0x10u8, // ACK
                Some(a.sack),
            )
        }
        _ => unreachable!("tcp_l4 is only called for TCP segments"),
    };

    // RFC 2018 SACK option: NOP NOP [kind=5, len, (start,end) pairs].
    let mut options: Vec<u8> = Vec::new();
    if let Some(list) = sack {
        let blocks = list.as_slice();
        if !blocks.is_empty() {
            options.push(1); // NOP
            options.push(1); // NOP
            options.push(5); // SACK
            options.push(2 + 8 * blocks.len() as u8);
            for b in blocks {
                options.extend_from_slice(&(b.start as u32).to_be_bytes());
                options.extend_from_slice(&(b.end as u32).to_be_bytes());
            }
        }
    }
    debug_assert!(
        options.len().is_multiple_of(4),
        "TCP options must be 32-bit padded"
    );

    let header_len = TCP_BASE_HEADER_LEN + options.len();
    let mut b = Vec::with_capacity(header_len);
    b.extend_from_slice(&sport.to_be_bytes());
    b.extend_from_slice(&dport.to_be_bytes());
    b.extend_from_slice(&seq.to_be_bytes());
    b.extend_from_slice(&ack.to_be_bytes());
    b.push(((header_len / 4) as u8) << 4); // data offset
    b.push(flags);
    b.extend_from_slice(&0xffffu16.to_be_bytes()); // window
    b.extend_from_slice(&[0, 0]); // checksum, patched below
    b.extend_from_slice(&[0, 0]); // urgent pointer
    b.extend_from_slice(&options);
    L4 {
        protocol: 6,
        bytes: b,
    }
}

/// UDP framing for the multicast/rate/raw segments: an 8-byte UDP header
/// plus the [`RLA_PAYLOAD_LEN`]-byte synthetic payload
/// `[kind, flags, reserved u16, seq_or_ack u64]` (big-endian).
fn udp_l4(packet: &Packet) -> L4 {
    let (sport, dport, kind, flags, number) = match &packet.segment {
        Segment::McastData(d) => {
            let g = match packet.dest {
                Dest::Group(g) => group_port(g),
                Dest::Agent(a) => port_for(a, 20000),
            };
            (
                port_for(packet.src, 10000),
                g,
                1u8,
                u8::from(d.retransmit),
                d.seq,
            )
        }
        Segment::McastAck(a) => (
            port_for(a.receiver, 20000),
            port_for(
                match packet.dest {
                    Dest::Agent(x) => x,
                    Dest::Group(_) => AgentId(0),
                },
                10000,
            ),
            2u8,
            u8::from(a.urgent_rexmit),
            a.cum_ack,
        ),
        Segment::RateData(d) => {
            let g = match packet.dest {
                Dest::Group(g) => group_port(g),
                Dest::Agent(a) => port_for(a, 20000),
            };
            (port_for(packet.src, 10000), g, 3u8, 0u8, d.seq)
        }
        Segment::RateFeedback(f) => (
            port_for(f.receiver, 20000),
            port_for(
                match packet.dest {
                    Dest::Agent(x) => x,
                    Dest::Group(_) => AgentId(0),
                },
                10000,
            ),
            4u8,
            0u8,
            f.highest_seq,
        ),
        Segment::Raw => (
            port_for(packet.src, 10000),
            match packet.dest {
                Dest::Agent(a) => port_for(a, 20000),
                Dest::Group(g) => group_port(g),
            },
            0u8,
            0u8,
            0u64,
        ),
        Segment::TcpData(_) | Segment::TcpAck(_) => {
            unreachable!("TCP segments take the TCP framing")
        }
    };

    let len = UDP_HEADER_LEN + RLA_PAYLOAD_LEN;
    let mut b = Vec::with_capacity(len);
    b.extend_from_slice(&sport.to_be_bytes());
    b.extend_from_slice(&dport.to_be_bytes());
    b.extend_from_slice(&(len as u16).to_be_bytes());
    b.extend_from_slice(&[0, 0]); // checksum 0 = unused (legal over IPv4)
    b.push(kind);
    b.push(flags);
    b.extend_from_slice(&[0, 0]); // reserved
    b.extend_from_slice(&number.to_be_bytes());
    L4 {
        protocol: 17,
        bytes: b,
    }
}

/// Serialize the full synthetic Ethernet frame for one packet.
fn build_frame(packet: &Packet) -> Vec<u8> {
    let l4 = match packet.segment {
        Segment::TcpData(_) | Segment::TcpAck(_) => tcp_l4(packet),
        _ => udp_l4(packet),
    };
    let (dst_mac, dst_ip) = match packet.dest {
        Dest::Agent(a) => (agent_mac(a), agent_ip(a)),
        Dest::Group(g) => (group_mac(g), group_ip(g)),
    };
    // Feedback segments also name their receiver internally, but the
    // packet's `src` field carries the same agent — one derivation rule.
    let src_ip = agent_ip(packet.src);

    let total_len = (IPV4_HEADER_LEN + l4.bytes.len()).max(packet.size_bytes as usize);
    let total_len = total_len.min(65535) as u16;
    let mut frame = Vec::with_capacity(ETH_HEADER_LEN + IPV4_HEADER_LEN + l4.bytes.len());
    // Ethernet II.
    frame.extend_from_slice(&dst_mac);
    frame.extend_from_slice(&agent_mac(packet.src));
    frame.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4.
    let ip_start = frame.len();
    frame.push(0x45); // version 4, IHL 5
    frame.push(0); // DSCP/ECN
    frame.extend_from_slice(&total_len.to_be_bytes());
    frame.extend_from_slice(&((packet.uid & 0xffff) as u16).to_be_bytes());
    frame.extend_from_slice(&[0x40, 0]); // DF, no fragments
    frame.push(64); // TTL
    frame.push(l4.protocol);
    frame.extend_from_slice(&[0, 0]); // checksum, patched below
    frame.extend_from_slice(&src_ip);
    frame.extend_from_slice(&dst_ip);
    let csum = inet_checksum(0, &frame[ip_start..ip_start + IPV4_HEADER_LEN]);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());
    // L4 (TCP checksum left zero: the synthetic payload is truncated, so
    // a pseudo-header checksum could not validate anyway).
    frame.extend_from_slice(&l4.bytes);
    frame
}

/// A [`Tracer`] that writes one pcap record per [`TraceEvent::TxStart`] —
/// the moment a packet starts serializing onto a link, so the record
/// count equals the run digest's `tx_starts` counter.
///
/// The partitioned engine runs each domain to the epoch barrier in turn,
/// so trace callbacks arrive in (epoch, domain, time) order — *not*
/// global time order. The tracer therefore buffers `(time, packet)`
/// pairs ([`Packet`] is `Copy`) and stable-sorts them by timestamp in
/// [`finish`], producing a chronological capture Wireshark and tcptrace
/// can follow. Buffering also keeps the engine's event loop free of I/O:
/// the file (created eagerly, so an unwritable path fails fast) is only
/// written at `finish`, whose `Result` carries any I/O error.
///
/// Memory note: one buffered record is one `Packet` (~100 B). In the
/// default mode a run holds its whole capture in memory, so `RLA_PCAP`
/// alone is aimed at short runs. The spooled mode
/// ([`create_spooled`]/`RLA_PCAP_SPOOL`) bounds the buffer at the chunk
/// size by spilling sorted chunks to `<path>.spool.<i>` side files and
/// k-way merging them at `finish`, so paper-length (3000 s) exports
/// cannot exhaust memory. Every buffered record is tagged with a global
/// arrival sequence number and both modes order by `(time, seq)`, so the
/// merged file is byte-identical to the unspooled one.
///
/// [`finish`]: PcapTracer::finish
/// [`create_spooled`]: PcapTracer::create_spooled
#[derive(Debug)]
pub struct PcapTracer {
    writer: Option<PcapWriter<BufWriter<std::fs::File>>>,
    path: PathBuf,
    pending: Vec<(SimTime, u64, Packet)>,
    /// Global arrival counter; total records traced so far.
    next_seq: u64,
    /// Spill-to-disk chunk size in records; `None` buffers everything.
    spool_records: Option<usize>,
    /// Paths of the spilled chunk files, in spill order.
    chunks: Vec<PathBuf>,
}

impl PcapTracer {
    /// Create the capture file at `path`, buffering the whole capture in
    /// memory until [`finish`](Self::finish).
    pub fn create(path: &Path, snaplen: u32) -> io::Result<Self> {
        Self::with_spool(path, snaplen, None)
    }

    /// Create the capture file at `path` in spooled mode: whenever
    /// `chunk_records` records are buffered they are sorted and spilled
    /// to a `<path>.spool.<i>` side file, and `finish` merges the chunks
    /// (deleting them) into a capture byte-identical to the unspooled
    /// mode's.
    pub fn create_spooled(path: &Path, snaplen: u32, chunk_records: usize) -> io::Result<Self> {
        assert!(chunk_records > 0, "a spool chunk needs at least one record");
        Self::with_spool(path, snaplen, Some(chunk_records))
    }

    fn with_spool(path: &Path, snaplen: u32, spool_records: Option<usize>) -> io::Result<Self> {
        Ok(PcapTracer {
            writer: Some(PcapWriter::create(path, snaplen)?),
            path: path.to_path_buf(),
            pending: Vec::new(),
            next_seq: 0,
            spool_records,
            chunks: Vec::new(),
        })
    }

    /// The capture file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records traced so far (buffered in memory or spilled to chunks).
    pub fn records(&self) -> u64 {
        self.next_seq
    }

    /// Sort the buffered chunk by `(time, seq)` and spill it to the next
    /// side file as length-prefixed pre-built pcap records.
    fn spill_chunk(&mut self) -> io::Result<()> {
        let snaplen = match &self.writer {
            Some(w) => w.snaplen(),
            None => return Ok(()),
        };
        self.pending.sort_unstable_by_key(|(t, seq, _)| (*t, *seq));
        let path = PathBuf::from(format!(
            "{}.spool.{}",
            self.path.display(),
            self.chunks.len()
        ));
        let mut out = BufWriter::new(std::fs::File::create(&path)?);
        for (t, seq, p) in self.pending.drain(..) {
            let bytes = record_bytes(snaplen, t, &p);
            out.write_all(&t.as_nanos().to_le_bytes())?;
            out.write_all(&seq.to_le_bytes())?;
            out.write_all(&(bytes.len() as u32).to_le_bytes())?;
            out.write_all(&bytes)?;
        }
        out.flush()?;
        self.chunks.push(path);
        Ok(())
    }

    /// Write and flush the capture file in `(time, seq)` order — sorting
    /// the in-memory buffer, or k-way merging the spilled chunks (which
    /// are deleted afterwards) — and return the record count.
    pub fn finish(&mut self) -> io::Result<u64> {
        let n = self.next_seq;
        let Some(mut w) = self.writer.take() else {
            return Ok(n);
        };
        if self.chunks.is_empty() {
            // `seq` is the push order, so this sort is the old stable
            // sort-by-time: same-instant records keep their arrival
            // (domain, send) order per the determinism contract.
            self.pending.sort_unstable_by_key(|(t, seq, _)| (*t, *seq));
            for (t, _, p) in self.pending.drain(..) {
                w.record(t, &p)?;
            }
        } else {
            // Put the writer back so spill_chunk sees the snaplen, then
            // flush the tail records as a final chunk.
            self.writer = Some(w);
            if !self.pending.is_empty() {
                self.spill_chunk()?;
            }
            w = self.writer.take().expect("writer restored above");
            let mut cursors = Vec::with_capacity(self.chunks.len());
            for path in &self.chunks {
                let mut c = ChunkCursor {
                    reader: BufReader::new(std::fs::File::open(path)?),
                    head: None,
                };
                c.advance()?;
                cursors.push(c);
            }
            // Chunks are internally sorted, so the global (time, seq)
            // order falls out of repeatedly taking the smallest head.
            // Chunk counts are small (records / chunk size), so a linear
            // min scan beats a heap in both code and constant factor.
            loop {
                let next = cursors
                    .iter_mut()
                    .filter(|c| c.head.is_some())
                    .min_by_key(|c| {
                        let (t, seq, _) = c.head.as_ref().expect("filtered on Some");
                        (*t, *seq)
                    });
                let Some(c) = next else { break };
                let (_, _, bytes) = c.head.take().expect("selected head is Some");
                w.write_record_bytes(&bytes)?;
                c.advance()?;
            }
            for path in self.chunks.drain(..) {
                std::fs::remove_file(path)?;
            }
        }
        w.finish()?;
        Ok(n)
    }
}

/// One spilled chunk being merged: a reader plus its current head record
/// `(time nanos, seq, record bytes)`.
struct ChunkCursor {
    reader: BufReader<std::fs::File>,
    head: Option<(u64, u64, Vec<u8>)>,
}

impl std::fmt::Debug for ChunkCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCursor")
            .field("head", &self.head.as_ref().map(|(t, s, _)| (*t, *s)))
            .finish()
    }
}

impl ChunkCursor {
    /// Read the next `(time, seq, len, bytes)` entry; `head` becomes
    /// `None` at a clean end of chunk.
    fn advance(&mut self) -> io::Result<()> {
        let mut hdr = [0u8; 20];
        let mut filled = 0;
        while filled < hdr.len() {
            let n = self.reader.read(&mut hdr[filled..])?;
            if n == 0 {
                if filled == 0 {
                    self.head = None;
                    return Ok(());
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated pcap spool chunk",
                ));
            }
            filled += n;
        }
        let t = u64::from_le_bytes(hdr[0..8].try_into().expect("8-byte slice"));
        let seq = u64::from_le_bytes(hdr[8..16].try_into().expect("8-byte slice"));
        let len = u32::from_le_bytes(hdr[16..20].try_into().expect("4-byte slice")) as usize;
        let mut bytes = vec![0u8; len];
        self.reader.read_exact(&mut bytes)?;
        self.head = Some((t, seq, bytes));
        Ok(())
    }
}

impl Tracer for PcapTracer {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        if let TraceEvent::TxStart { packet, .. } = event {
            if self.writer.is_some() {
                self.pending.push((now, self.next_seq, **packet));
                self.next_seq += 1;
                if let Some(chunk) = self.spool_records {
                    if self.pending.len() >= chunk {
                        // A full chunk: spill now so the buffer never
                        // exceeds the configured bound. Tracing has no
                        // Result channel and silently dropping records
                        // would corrupt the capture, so an I/O failure
                        // panics with the path named.
                        self.spill_chunk().unwrap_or_else(|e| {
                            panic!(
                                "RLA_PCAP_SPOOL: cannot spill a chunk beside {}: {e}",
                                self.path.display()
                            )
                        });
                    }
                }
            }
        }
    }
}

impl Drop for PcapTracer {
    fn drop(&mut self) {
        let _ = self.finish();
        // Best-effort cleanup when finish itself failed mid-merge.
        for path in self.chunks.drain(..) {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Reader (tests/CI validation only).
// ---------------------------------------------------------------------

/// The parsed global header of a capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapHeader {
    /// Timestamp resolution: nanoseconds (`true`) or microseconds.
    pub nanos: bool,
    /// Snapshot length from the global header.
    pub snaplen: u32,
    /// Link type (expected [`LINKTYPE_ETHERNET`]).
    pub linktype: u32,
}

/// One parsed record: the pcap framing plus the fields of our synthetic
/// encapsulation that tests assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct PcapRecord {
    /// Timestamp in nanoseconds since the start of the run.
    pub ts_nanos: u64,
    /// Captured bytes.
    pub caplen: u32,
    /// Original (simulated) frame length.
    pub orig_len: u32,
    /// Parsed synthetic headers; `None` when `caplen` truncated them.
    pub net: Option<NetInfo>,
}

/// The decoded synthetic Ethernet/IPv4/L4 headers of one record.
#[derive(Debug, Clone, PartialEq)]
pub struct NetInfo {
    /// IPv4 source address.
    pub src_ip: [u8; 4],
    /// IPv4 destination address.
    pub dst_ip: [u8; 4],
    /// IPv4 protocol (6 = TCP, 17 = UDP).
    pub protocol: u8,
    /// IPv4 total length field.
    pub ip_total_len: u16,
    /// TCP: the raw 32-bit sequence number; UDP: the low 32 bits of the
    /// synthetic payload's sequence/ack field.
    pub seq: u32,
    /// TCP: the raw 32-bit ack number; UDP: 0 for data kinds, the number
    /// for feedback kinds.
    pub ack: u32,
    /// UDP synthetic payload kind tag (0 raw, 1 mc-data, 2 mc-ack,
    /// 3 rate-data, 4 rate-fb); 255 for TCP records.
    pub kind: u8,
    /// Full 64-bit sequence/ack number (UDP payload); for TCP, the
    /// 32-bit field widened.
    pub number: u64,
}

/// Minimal reader for the writer's output. See the module docs: this is
/// a test fixture, not a general pcap parser.
#[derive(Debug)]
pub struct PcapReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// The parsed global header.
    pub header: PcapHeader,
}

impl<'a> PcapReader<'a> {
    /// Parse the global header of `data`.
    pub fn new(data: &'a [u8]) -> Result<Self, String> {
        if data.len() < 24 {
            return Err(format!("truncated global header: {} bytes", data.len()));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        let nanos = match magic {
            MAGIC_NANOS => true,
            MAGIC_MICROS => false,
            other => return Err(format!("unknown pcap magic {other:#010x}")),
        };
        let version = (
            u16::from_le_bytes(data[4..6].try_into().unwrap()),
            u16::from_le_bytes(data[6..8].try_into().unwrap()),
        );
        if version != (2, 4) {
            return Err(format!("unsupported pcap version {version:?}"));
        }
        let snaplen = u32::from_le_bytes(data[16..20].try_into().unwrap());
        let linktype = u32::from_le_bytes(data[20..24].try_into().unwrap());
        Ok(PcapReader {
            data,
            pos: 24,
            header: PcapHeader {
                nanos,
                snaplen,
                linktype,
            },
        })
    }

    /// Parse the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>, String> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        if self.data.len() - self.pos < 16 {
            return Err(format!(
                "truncated record header at byte {} ({} bytes left)",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let u32_at = |p: usize| u32::from_le_bytes(self.data[p..p + 4].try_into().unwrap());
        let ts_sec = u32_at(self.pos) as u64;
        let ts_frac = u32_at(self.pos + 4) as u64;
        let caplen = u32_at(self.pos + 8);
        let orig_len = u32_at(self.pos + 12);
        if caplen > self.header.snaplen {
            return Err(format!(
                "record at byte {}: caplen {caplen} exceeds snaplen {}",
                self.pos, self.header.snaplen
            ));
        }
        if caplen > orig_len {
            return Err(format!(
                "record at byte {}: caplen {caplen} exceeds orig_len {orig_len}",
                self.pos
            ));
        }
        let body_start = self.pos + 16;
        let body_end = body_start + caplen as usize;
        if body_end > self.data.len() {
            return Err(format!(
                "record at byte {}: body of {caplen} bytes overruns the file",
                self.pos
            ));
        }
        let frame = &self.data[body_start..body_end];
        self.pos = body_end;
        let ts_nanos = ts_sec * 1_000_000_000
            + if self.header.nanos {
                ts_frac
            } else {
                ts_frac * 1000
            };
        Ok(Some(PcapRecord {
            ts_nanos,
            caplen,
            orig_len,
            net: parse_frame(frame),
        }))
    }

    /// Parse every remaining record.
    pub fn records(mut self) -> Result<Vec<PcapRecord>, String> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Decode the synthetic headers; `None` when the capture is too short
/// (snaplen truncation) or not our encapsulation.
fn parse_frame(frame: &[u8]) -> Option<NetInfo> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &frame[ETH_HEADER_LEN..];
    if ip[0] != 0x45 {
        return None;
    }
    let ip_total_len = u16::from_be_bytes([ip[2], ip[3]]);
    let protocol = ip[9];
    let src_ip = [ip[12], ip[13], ip[14], ip[15]];
    let dst_ip = [ip[16], ip[17], ip[18], ip[19]];
    let l4 = &ip[IPV4_HEADER_LEN..];
    let (seq, ack, kind, number) = match protocol {
        6 if l4.len() >= TCP_BASE_HEADER_LEN => {
            let seq = u32::from_be_bytes(l4[4..8].try_into().unwrap());
            let ack = u32::from_be_bytes(l4[8..12].try_into().unwrap());
            let flags = l4[13];
            // Data segments carry seq, pure acks carry ack; widen the
            // meaningful one.
            let number = if flags & 0x08 != 0 {
                u64::from(seq)
            } else {
                u64::from(ack)
            };
            (seq, ack, 255u8, number)
        }
        17 if l4.len() >= UDP_HEADER_LEN + RLA_PAYLOAD_LEN => {
            let p = &l4[UDP_HEADER_LEN..];
            let kind = p[0];
            let number = u64::from_be_bytes(p[4..12].try_into().unwrap());
            let (seq, ack) = match kind {
                2 | 4 => (0u32, number as u32),
                _ => (number as u32, 0u32),
            };
            (seq, ack, kind, number)
        }
        _ => return None,
    };
    Some(NetInfo {
        src_ip,
        dst_ip,
        protocol,
        ip_total_len,
        seq,
        ack,
        kind,
        number,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wire::{McastAck, McastData, SackBlock, SackList, TcpAck, TcpData};

    fn tcp_data(seq: u64) -> Packet {
        Packet {
            uid: seq,
            src: AgentId(3),
            dest: Dest::Agent(AgentId(7)),
            size_bytes: 1000,
            segment: Segment::TcpData(TcpData {
                seq,
                retransmit: false,
                timestamp: SimTime::ZERO,
            }),
            sent_at: SimTime::ZERO,
        }
    }

    fn tcp_ack(cum_ack: u64, sack: SackList) -> Packet {
        Packet {
            uid: 100 + cum_ack,
            src: AgentId(7),
            dest: Dest::Agent(AgentId(3)),
            size_bytes: 40,
            segment: Segment::TcpAck(TcpAck {
                cum_ack,
                sack,
                echo_timestamp: SimTime::ZERO,
            }),
            sent_at: SimTime::ZERO,
        }
    }

    fn mc_data(seq: u64) -> Packet {
        Packet {
            uid: 200 + seq,
            src: AgentId(1),
            dest: Dest::Group(GroupId(0)),
            size_bytes: 1000,
            segment: Segment::McastData(McastData {
                seq,
                retransmit: false,
                timestamp: SimTime::ZERO,
            }),
            sent_at: SimTime::ZERO,
        }
    }

    fn write_all(packets: &[(u64, Packet)], snaplen: u32) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), snaplen).unwrap();
        for (nanos, p) in packets {
            w.record(SimTime::from_nanos(*nanos), p).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn global_header_layout() {
        let bytes = write_all(&[], DEFAULT_SNAPLEN);
        assert_eq!(bytes.len(), 24);
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            MAGIC_NANOS
        );
        let r = PcapReader::new(&bytes).unwrap();
        assert!(r.header.nanos);
        assert_eq!(r.header.snaplen, DEFAULT_SNAPLEN);
        assert_eq!(r.header.linktype, LINKTYPE_ETHERNET);
    }

    #[test]
    fn tcp_record_round_trips_seq_ack_and_addresses() {
        let mut sack = SackList::new();
        sack.push(SackBlock { start: 9, end: 12 });
        let bytes = write_all(
            &[
                (1_500_000_007, tcp_data(5)),
                (1_600_000_000, tcp_ack(6, sack)),
            ],
            DEFAULT_SNAPLEN,
        );
        let recs = PcapReader::new(&bytes).unwrap().records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts_nanos, 1_500_000_007, "nanosecond timestamps");
        let d = recs[0].net.as_ref().unwrap();
        assert_eq!(d.protocol, 6);
        assert_eq!(d.seq, 5);
        assert_eq!(d.src_ip, [10, 0, 0, 3]);
        assert_eq!(d.dst_ip, [10, 0, 0, 7]);
        assert_eq!(
            d.ip_total_len, 1000,
            "total length reflects the simulated size"
        );
        let a = recs[1].net.as_ref().unwrap();
        assert_eq!(a.ack, 6);
        assert_eq!(a.src_ip, [10, 0, 0, 7], "ack flows receiver -> sender");
        // orig_len counts the simulated 1000 B + Ethernet, not the
        // materialized frame.
        assert_eq!(recs[0].orig_len, 1014);
        assert!(recs[0].caplen < recs[0].orig_len);
    }

    #[test]
    fn sack_blocks_become_a_tcp_option() {
        let mut sack = SackList::new();
        sack.push(SackBlock { start: 9, end: 12 });
        sack.push(SackBlock { start: 14, end: 15 });
        let bytes = write_all(&[(0, tcp_ack(6, sack))], DEFAULT_SNAPLEN);
        // Find the option bytes: Ethernet(14) + IP(20) + TCP base(20).
        let body = &bytes[24 + 16 + 34 + 20..];
        assert_eq!(&body[..4], &[1, 1, 5, 2 + 16], "NOP NOP SACK len");
        assert_eq!(u32::from_be_bytes(body[4..8].try_into().unwrap()), 9);
        assert_eq!(u32::from_be_bytes(body[8..12].try_into().unwrap()), 12);
        // Data offset advertises base + 20 option bytes = 10 words.
        let tcp = &bytes[24 + 16 + 34..];
        assert_eq!(tcp[12] >> 4, 10);
    }

    #[test]
    fn multicast_data_maps_to_group_udp() {
        let bytes = write_all(&[(7, mc_data(42))], DEFAULT_SNAPLEN);
        let recs = PcapReader::new(&bytes).unwrap().records().unwrap();
        let n = recs[0].net.as_ref().unwrap();
        assert_eq!(n.protocol, 17);
        assert_eq!(n.dst_ip, [239, 0, 0, 0]);
        assert_eq!(n.kind, 1);
        assert_eq!(n.number, 42);
        // Multicast MAC prefix 01:00:5e.
        let frame = &bytes[24 + 16..];
        assert_eq!(&frame[..3], &[0x01, 0x00, 0x5e]);
    }

    #[test]
    fn mcast_ack_carries_cum_ack_above_u32() {
        let p = Packet {
            uid: 1,
            src: AgentId(9),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 40,
            segment: Segment::McastAck(McastAck {
                receiver: AgentId(9),
                cum_ack: u64::from(u32::MAX) + 17,
                sack: SackList::new(),
                echo_timestamp: SimTime::ZERO,
                urgent_rexmit: true,
            }),
            sent_at: SimTime::ZERO,
        };
        let bytes = write_all(&[(0, p)], DEFAULT_SNAPLEN);
        let recs = PcapReader::new(&bytes).unwrap().records().unwrap();
        let n = recs[0].net.as_ref().unwrap();
        assert_eq!(n.kind, 2);
        assert_eq!(
            n.number,
            u64::from(u32::MAX) + 17,
            "full 64-bit ack survives"
        );
    }

    #[test]
    fn snaplen_truncates_but_orig_len_survives() {
        let bytes = write_all(&[(0, tcp_data(1))], 64);
        let recs = PcapReader::new(&bytes).unwrap().records().unwrap();
        assert_eq!(recs[0].caplen, 54, "frame is 54 B, under the 64 B floor");
        assert_eq!(recs[0].orig_len, 1014);
        // A pathological snaplen is floored at 64.
        let w = PcapWriter::new(Vec::new(), 1).unwrap();
        assert_eq!(w.snaplen(), 64);
    }

    #[test]
    fn ipv4_header_checksum_validates() {
        let bytes = write_all(&[(0, mc_data(3))], DEFAULT_SNAPLEN);
        let ip = &bytes[24 + 16 + ETH_HEADER_LEN..][..IPV4_HEADER_LEN];
        assert_eq!(inet_checksum(0, ip), 0, "checksum over the header is zero");
    }

    #[test]
    fn tracer_records_only_tx_starts() {
        use netsim::id::{ChannelId, NodeId};
        use netsim::queue::DropReason;
        let dir = std::env::temp_dir().join("rla_pcap_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tracer.pcap");
        let mut t = PcapTracer::create(&path, DEFAULT_SNAPLEN).unwrap();
        let p = tcp_data(0);
        t.trace(
            SimTime::from_secs(1),
            &TraceEvent::Enqueue {
                channel: ChannelId(0),
                packet: &p,
                qlen: 1,
            },
        );
        t.trace(
            SimTime::from_secs(1),
            &TraceEvent::TxStart {
                channel: ChannelId(0),
                packet: &p,
                qlen: 0,
            },
        );
        t.trace(
            SimTime::from_secs(2),
            &TraceEvent::Drop {
                channel: ChannelId(0),
                packet: &p,
                reason: DropReason::BufferOverflow,
                qlen: 0,
            },
        );
        t.trace(
            SimTime::from_secs(2),
            &TraceEvent::Arrive {
                node: NodeId(1),
                packet: &p,
            },
        );
        assert_eq!(t.finish().unwrap(), 1);
        let bytes = std::fs::read(&path).unwrap();
        let recs = PcapReader::new(&bytes).unwrap().records().unwrap();
        assert_eq!(recs.len(), 1, "only the TxStart became a record");
    }

    #[test]
    fn spooled_capture_matches_the_unspooled_bytes_and_round_trips() {
        use netsim::id::ChannelId;
        let dir = std::env::temp_dir().join("rla_pcap_spool_unit");
        std::fs::create_dir_all(&dir).unwrap();
        // Out-of-order timestamps with same-instant ties, so the test
        // exercises both the sort and the (time, seq) tie-break across
        // chunk boundaries.
        let stamps: Vec<u64> = (0..40)
            .map(|i| [9u64, 2, 9, 5, 7, 2, 8, 1][i % 8] * 1_000_000 + (i as u64 / 8))
            .collect();
        let run = |tracer: &mut PcapTracer| {
            for (i, nanos) in stamps.iter().enumerate() {
                tracer.trace(
                    SimTime::from_nanos(*nanos),
                    &TraceEvent::TxStart {
                        channel: ChannelId(0),
                        packet: &tcp_data(i as u64),
                        qlen: 0,
                    },
                );
            }
            tracer.finish().unwrap()
        };

        let plain_path = dir.join("plain.pcap");
        let mut plain = PcapTracer::create(&plain_path, DEFAULT_SNAPLEN).unwrap();
        assert_eq!(run(&mut plain), 40);

        // A 7-record chunk size forces several spills plus a tail chunk.
        let spooled_path = dir.join("spooled.pcap");
        let mut spooled = PcapTracer::create_spooled(&spooled_path, DEFAULT_SNAPLEN, 7).unwrap();
        assert_eq!(run(&mut spooled), 40);

        let plain_bytes = std::fs::read(&plain_path).unwrap();
        let spooled_bytes = std::fs::read(&spooled_path).unwrap();
        assert_eq!(
            plain_bytes, spooled_bytes,
            "the merged spooled capture must be byte-identical"
        );

        // Roundtrip: every record parses, timestamps are nondecreasing,
        // and same-instant runs keep arrival (seq) order.
        let recs = PcapReader::new(&spooled_bytes).unwrap().records().unwrap();
        assert_eq!(recs.len(), 40);
        for w in recs.windows(2) {
            assert!(w[0].ts_nanos <= w[1].ts_nanos, "chronological order");
            if w[0].ts_nanos == w[1].ts_nanos {
                let (a, b) = (w[0].net.as_ref().unwrap(), w[1].net.as_ref().unwrap());
                assert!(a.seq < b.seq, "same-instant records keep arrival order");
            }
        }

        // The side files are merged and deleted.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".spool."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "spool chunks left behind: {leftovers:?}"
        );
    }

    #[test]
    fn reader_rejects_garbage_and_truncation() {
        assert!(PcapReader::new(&[0u8; 10]).is_err(), "short header");
        let mut bad = write_all(&[], DEFAULT_SNAPLEN);
        bad[0] = 0xde;
        assert!(PcapReader::new(&bad).is_err(), "bad magic");
        let mut trunc = write_all(&[(0, tcp_data(1))], DEFAULT_SNAPLEN);
        trunc.truncate(trunc.len() - 5);
        let r = PcapReader::new(&trunc).unwrap().records();
        assert!(r.is_err(), "truncated body must error, not loop");
    }
}
