//! Sweep progress reporting for parallel experiment runners.
//!
//! A [`SweepProgress`] is shared (via `Arc`) between the worker threads
//! of a sweep. Each worker calls [`job_finished`] as it completes a
//! scenario; the reporter prints one line per completion — job count,
//! per-job event rate, wall time, and an ETA extrapolated from overall
//! throughput so far — to **stderr**, keeping stdout clean for the
//! result tables the binaries emit.
//!
//! All state is atomics; the only lock is around the single `eprintln!`
//! (and writes to stderr are line-buffered anyway), so contention is
//! negligible next to the seconds-long jobs it reports on.
//!
//! [`job_finished`]: SweepProgress::job_finished

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Thread-safe progress/heartbeat reporter for a fixed-size batch of
/// jobs. See the module docs.
#[derive(Debug)]
pub struct SweepProgress {
    total: usize,
    done: AtomicUsize,
    events: AtomicU64,
    started: Instant,
    enabled: bool,
}

impl SweepProgress {
    /// A reporter for `total` jobs. When `enabled` is false every call
    /// is a no-op (counters still advance, nothing is printed).
    pub fn new(total: usize, enabled: bool) -> Self {
        SweepProgress {
            total,
            done: AtomicUsize::new(0),
            events: AtomicU64::new(0),
            started: Instant::now(),
            enabled,
        }
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Trace events processed so far, across all completed jobs.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Record a completed job and (when enabled) print its heartbeat
    /// line. `events` is the job's trace-event count, `wall` its
    /// wall-clock duration.
    pub fn job_finished(&self, label: &str, events: u64, wall: Duration) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.events.fetch_add(events, Ordering::Relaxed);
        if self.enabled {
            eprintln!(
                "{}",
                self.render_line(label, events, wall, done, self.started.elapsed())
            );
        }
    }

    /// The heartbeat line for one completed job (separated from the
    /// printing so it is testable).
    fn render_line(
        &self,
        label: &str,
        events: u64,
        wall: Duration,
        done: usize,
        elapsed: Duration,
    ) -> String {
        let rate = if wall.as_secs_f64() > 0.0 {
            events as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let eta = if done > 0 && done < self.total {
            let per_job = elapsed.as_secs_f64() / done as f64;
            format!(", eta {:.0}s", per_job * (self.total - done) as f64)
        } else {
            String::new()
        };
        format!(
            "[sweep {done}/{}] {label}: {events} events in {:.2}s ({:.2}M ev/s{eta})",
            self.total,
            wall.as_secs_f64(),
            rate / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_advance_even_when_disabled() {
        let p = SweepProgress::new(3, false);
        p.job_finished("a", 100, Duration::from_secs(1));
        p.job_finished("b", 200, Duration::from_secs(1));
        assert_eq!(p.completed(), 2);
        assert_eq!(p.events(), 300);
    }

    #[test]
    fn line_includes_rate_and_eta() {
        let p = SweepProgress::new(4, false);
        let line = p.render_line(
            "fig7/case-1",
            2_000_000,
            Duration::from_secs(2),
            1,
            Duration::from_secs(2),
        );
        assert!(line.contains("[sweep 1/4] fig7/case-1"), "{line}");
        assert!(line.contains("(1.00M ev/s"), "{line}");
        assert!(line.contains("eta 6s"), "{line}");
    }

    #[test]
    fn last_job_has_no_eta() {
        let p = SweepProgress::new(2, false);
        let line = p.render_line("x", 10, Duration::from_secs(1), 2, Duration::from_secs(2));
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = SweepProgress::new(1, false);
        let line = p.render_line("x", 10, Duration::ZERO, 1, Duration::ZERO);
        assert!(line.contains("0.00M ev/s"), "{line}");
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        use std::sync::Arc;
        let p = Arc::new(SweepProgress::new(64, false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        p.job_finished("j", 5, Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.completed(), 64);
        assert_eq!(p.events(), 320);
    }
}
