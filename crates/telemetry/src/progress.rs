//! Sweep progress reporting for parallel experiment runners.
//!
//! A [`SweepProgress`] is shared (via `Arc`) between the worker threads
//! of a sweep. Each worker calls [`job_finished`] as it completes a
//! scenario; the reporter prints one line per completion — job count,
//! per-job event rate, wall time, and an ETA extrapolated from overall
//! throughput so far — to **stderr**, keeping stdout clean for the
//! result tables the binaries emit.
//!
//! Besides the human-facing stderr line, an optional machine-readable
//! *sink* ([`with_sink`]) appends one JSON object per completed job —
//! case, seed, events, event rate, ETA — flushed per line so a live
//! consumer (`rla_top`, `tail -f`) sees each heartbeat as it happens.
//! The `RLA_PROGRESS_FILE` knob in `experiments::cli` wires a file here.
//!
//! All state is atomics; the locks are around the single `eprintln!`
//! (line-buffered anyway) and the sink write, so contention is
//! negligible next to the seconds-long jobs it reports on.
//!
//! [`job_finished`]: SweepProgress::job_finished
//! [`with_sink`]: SweepProgress::with_sink

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::timeline::json_escaped;

/// Structured identity of a sweep job, carried into the JSONL heartbeat
/// sink alongside the display label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMeta<'a> {
    /// The congestion case (or other sweep axis) label.
    pub case: &'a str,
    /// The run's RNG seed.
    pub seed: u64,
}

/// Thread-safe progress/heartbeat reporter for a fixed-size batch of
/// jobs. See the module docs.
#[derive(Debug)]
pub struct SweepProgress {
    total: usize,
    done: AtomicUsize,
    events: AtomicU64,
    started: Instant,
    enabled: bool,
    sink: Option<Mutex<std::fs::File>>,
}

impl SweepProgress {
    /// A reporter for `total` jobs. When `enabled` is false every call
    /// is a no-op (counters still advance, nothing is printed).
    pub fn new(total: usize, enabled: bool) -> Self {
        SweepProgress {
            total,
            done: AtomicUsize::new(0),
            events: AtomicU64::new(0),
            started: Instant::now(),
            enabled,
            sink: None,
        }
    }

    /// Attach a JSONL heartbeat sink: one JSON object per completed job,
    /// appended and flushed per line. Independent of `enabled` — the
    /// stderr heartbeat is for humans, the sink for machines.
    pub fn with_sink(mut self, sink: std::fs::File) -> Self {
        self.sink = Some(Mutex::new(sink));
        self
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Trace events processed so far, across all completed jobs.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Record a completed job: print the heartbeat line (when enabled)
    /// and append the JSON heartbeat (when a sink is attached). `events`
    /// is the job's trace-event count, `wall` its wall-clock duration.
    pub fn job_finished(&self, label: &str, events: u64, wall: Duration) {
        self.job_finished_with(label, None, events, wall);
    }

    /// [`job_finished`](Self::job_finished) with the job's structured
    /// identity for the JSONL sink.
    pub fn job_finished_with(
        &self,
        label: &str,
        meta: Option<JobMeta<'_>>,
        events: u64,
        wall: Duration,
    ) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.events.fetch_add(events, Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        if self.enabled {
            eprintln!("{}", self.render_line(label, events, wall, done, elapsed));
        }
        if let Some(sink) = &self.sink {
            let line = self.render_json(label, meta, events, wall, done, elapsed);
            let mut f = sink.lock().expect("progress sink poisoned");
            // Ignore write errors: a dead sink must not kill a sweep
            // hours in; the stderr heartbeat still reports.
            let _ = f.write_all(line.as_bytes()).and_then(|()| f.flush());
        }
    }

    /// The heartbeat line for one completed job (separated from the
    /// printing so it is testable).
    fn render_line(
        &self,
        label: &str,
        events: u64,
        wall: Duration,
        done: usize,
        elapsed: Duration,
    ) -> String {
        let rate = if wall.as_secs_f64() > 0.0 {
            events as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let eta = if done > 0 && done < self.total {
            let per_job = elapsed.as_secs_f64() / done as f64;
            format!(", eta {:.0}s", per_job * (self.total - done) as f64)
        } else {
            String::new()
        };
        format!(
            "[sweep {done}/{}] {label}: {events} events in {:.2}s ({:.2}M ev/s{eta})",
            self.total,
            wall.as_secs_f64(),
            rate / 1e6,
        )
    }

    /// The JSONL heartbeat object for one completed job (one line,
    /// trailing newline included; testable like `render_line`).
    fn render_json(
        &self,
        label: &str,
        meta: Option<JobMeta<'_>>,
        events: u64,
        wall: Duration,
        done: usize,
        elapsed: Duration,
    ) -> String {
        use std::fmt::Write as _;
        let rate = if wall.as_secs_f64() > 0.0 {
            events as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        let mut out = String::new();
        let _ = write!(out, "{{\"job\":{done},\"total\":{}", self.total);
        if let Some(m) = meta {
            let _ = write!(
                out,
                ",\"case\":\"{}\",\"seed\":{}",
                json_escaped(m.case),
                m.seed
            );
        }
        let _ = write!(
            out,
            ",\"label\":\"{}\",\"events\":{events},\"wall_secs\":{:.6},\"ev_per_s\":{:.1}",
            json_escaped(label),
            wall.as_secs_f64(),
            rate
        );
        if done < self.total {
            let per_job = elapsed.as_secs_f64() / done.max(1) as f64;
            let _ = write!(
                out,
                ",\"eta_secs\":{:.1}",
                per_job * (self.total - done) as f64
            );
        } else {
            out.push_str(",\"eta_secs\":null");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_advance_even_when_disabled() {
        let p = SweepProgress::new(3, false);
        p.job_finished("a", 100, Duration::from_secs(1));
        p.job_finished("b", 200, Duration::from_secs(1));
        assert_eq!(p.completed(), 2);
        assert_eq!(p.events(), 300);
    }

    #[test]
    fn line_includes_rate_and_eta() {
        let p = SweepProgress::new(4, false);
        let line = p.render_line(
            "fig7/case-1",
            2_000_000,
            Duration::from_secs(2),
            1,
            Duration::from_secs(2),
        );
        assert!(line.contains("[sweep 1/4] fig7/case-1"), "{line}");
        assert!(line.contains("(1.00M ev/s"), "{line}");
        assert!(line.contains("eta 6s"), "{line}");
    }

    #[test]
    fn last_job_has_no_eta() {
        let p = SweepProgress::new(2, false);
        let line = p.render_line("x", 10, Duration::from_secs(1), 2, Duration::from_secs(2));
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = SweepProgress::new(1, false);
        let line = p.render_line("x", 10, Duration::ZERO, 1, Duration::ZERO);
        assert!(line.contains("0.00M ev/s"), "{line}");
        let json = p.render_json("x", None, 10, Duration::ZERO, 1, Duration::ZERO);
        assert!(json.contains("\"ev_per_s\":0.0"), "{json}");
    }

    #[test]
    fn json_heartbeat_carries_case_seed_rate_and_eta() {
        let p = SweepProgress::new(4, false);
        let json = p.render_json(
            "L21 Red seed 3",
            Some(JobMeta {
                case: "L21",
                seed: 3,
            }),
            2_000_000,
            Duration::from_secs(2),
            1,
            Duration::from_secs(2),
        );
        assert!(json.ends_with("}\n"), "one line per job: {json:?}");
        assert!(json.contains("\"job\":1,\"total\":4"), "{json}");
        assert!(json.contains("\"case\":\"L21\",\"seed\":3"), "{json}");
        assert!(json.contains("\"events\":2000000"), "{json}");
        assert!(json.contains("\"ev_per_s\":1000000.0"), "{json}");
        assert!(json.contains("\"eta_secs\":6.0"), "{json}");
        // Final job: eta is null, not a number.
        let last = p.render_json(
            "x",
            None,
            1,
            Duration::from_secs(1),
            4,
            Duration::from_secs(8),
        );
        assert!(last.contains("\"eta_secs\":null"), "{last}");
        assert!(
            !last.contains("\"case\""),
            "meta omitted when unknown: {last}"
        );
    }

    #[test]
    fn json_heartbeat_escapes_labels() {
        let p = SweepProgress::new(1, false);
        let json = p.render_json(
            "odd \"label\"\\x",
            None,
            1,
            Duration::from_secs(1),
            1,
            Duration::from_secs(1),
        );
        assert!(json.contains(r#""label":"odd \"label\"\\x""#), "{json}");
    }

    #[test]
    fn sink_receives_one_line_per_job() {
        let dir = std::env::temp_dir().join("rla_progress_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heartbeat.jsonl");
        let file = std::fs::File::create(&path).unwrap();
        let p = SweepProgress::new(2, false).with_sink(file);
        p.job_finished_with(
            "a Red seed 1",
            Some(JobMeta { case: "a", seed: 1 }),
            100,
            Duration::from_millis(10),
        );
        // Flushed per line: readable immediately, mid-sweep.
        let mid = std::fs::read_to_string(&path).unwrap();
        assert_eq!(mid.lines().count(), 1, "{mid:?}");
        p.job_finished("b", 200, Duration::from_millis(10));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text:?}");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        use std::sync::Arc;
        let p = Arc::new(SweepProgress::new(64, false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        p.job_finished("j", 5, Duration::from_millis(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.completed(), 64);
        assert_eq!(p.events(), 320);
    }
}
