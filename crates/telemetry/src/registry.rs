//! Counter/gauge registry with typed handles.
//!
//! A [`Registry`] owns a flat vector of named metrics. Registration
//! returns a typed handle ([`CounterId`] / [`GaugeId`]) — an index, not a
//! reference — so updates are a bounds-checked array write through plain
//! `&mut Registry`: no `RefCell`, no atomics, no locking. The registry is
//! meant to be owned by whoever drives the simulation (an experiment
//! binary, a scenario runner) and snapshotted into the run manifest at
//! the end ([`Registry::snapshot`]).
//!
//! The [`RegistryExport`] trait is the uniform export path: every
//! statistics block that wants to appear in a manifest implements it and
//! writes its numbers under a caller-chosen prefix, replacing per-binary
//! ad-hoc plumbing.

use netsim::time::SimTime;

/// Handle to a registered counter (monotone `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge (instantaneous `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// A metric's current value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// An instantaneous measurement.
    Gauge(f64),
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    value: MetricValue,
}

/// A registry of named counters and gauges. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    metrics: Vec<Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: String, value: MetricValue) -> usize {
        assert!(
            !self.metrics.iter().any(|m| m.name == name),
            "metric {name:?} registered twice"
        );
        self.metrics.push(Metric { name, value });
        self.metrics.len() - 1
    }

    /// Register a counter starting at zero. Panics on a duplicate name —
    /// two subsystems silently sharing a counter is always a bug.
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        CounterId(self.register(name.into(), MetricValue::Counter(0)))
    }

    /// Register a gauge starting at zero.
    pub fn gauge(&mut self, name: impl Into<String>) -> GaugeId {
        GaugeId(self.register(name.into(), MetricValue::Gauge(0.0)))
    }

    /// Increment a counter by `by`.
    pub fn add(&mut self, id: CounterId, by: u64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Counter(v) => *v += by,
            MetricValue::Gauge(_) => unreachable!("counter handle points at a gauge"),
        }
    }

    /// Increment a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Set a gauge to `v`.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        match &mut self.metrics[id.0].value {
            MetricValue::Gauge(g) => *g = v,
            MetricValue::Counter(_) => unreachable!("gauge handle points at a counter"),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        match self.metrics[id.0].value {
            MetricValue::Counter(v) => v,
            MetricValue::Gauge(_) => unreachable!("counter handle points at a gauge"),
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        match self.metrics[id.0].value {
            MetricValue::Gauge(v) => v,
            MetricValue::Counter(_) => unreachable!("gauge handle points at a counter"),
        }
    }

    /// Register-and-set in one step: a counter whose final value is
    /// already known (the common case when exporting a finished run's
    /// statistics block).
    pub fn record_count(&mut self, name: impl Into<String>, value: u64) {
        let id = self.counter(name);
        self.add(id, value);
    }

    /// Register-and-set in one step for gauges.
    pub fn record_gauge(&mut self, name: impl Into<String>, value: f64) {
        let id = self.gauge(name);
        self.set(id, value);
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// A point-in-time copy of every metric, sorted by name so manifests
    /// and diffs are stable regardless of registration order.
    ///
    /// Ordering contract: entries are sorted by byte-lexicographic
    /// comparison of the full metric name (so `tcp.10.x` precedes
    /// `tcp.2.x`), names are unique, and two registries holding the same
    /// metrics snapshot identically however registration was interleaved.
    /// The manifest `registry` sections and the `rla_diff` key alignment
    /// both rely on this.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<SnapshotEntry> = self
            .metrics
            .iter()
            .map(|m| SnapshotEntry {
                name: m.name.clone(),
                value: m.value,
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { entries }
    }
}

/// One metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The registered name (prefixed by the exporter, e.g. `rla.0.delivered`).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A sorted point-in-time copy of a [`Registry`] — the form that goes
/// into run manifests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold another snapshot into this one: counters sharing a name add,
    /// names unique to either side are kept, and the result preserves the
    /// byte-lexicographic ordering contract. This is how a partitioned
    /// run assembles its manifest blocks — one partial snapshot per
    /// domain, merged in domain order. Counter addition is associative
    /// and commutative, so the merged block is byte-identical to a
    /// single-pass export whatever the partition.
    ///
    /// # Panics
    /// If a shared name is not a counter on both sides: gauges (averages,
    /// utilizations) are not additive, so each must be exported by
    /// exactly one owner.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut mine = std::mem::take(&mut self.entries).into_iter().peekable();
        let mut theirs = other.entries.iter().peekable();
        loop {
            let take_mine = match (mine.peek(), theirs.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(b)) => match a.name.cmp(&b.name) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        let mut a = mine.next().expect("peeked");
                        let b = theirs.next().expect("peeked");
                        match (&mut a.value, b.value) {
                            (MetricValue::Counter(x), MetricValue::Counter(y)) => *x += y,
                            _ => panic!(
                                "metric {:?}: only counters merge across partial snapshots",
                                a.name
                            ),
                        }
                        merged.push(a);
                        continue;
                    }
                },
            };
            merged.push(if take_mine {
                mine.next().expect("peeked")
            } else {
                theirs.next().expect("peeked").clone()
            });
        }
        self.entries = merged;
    }
}

/// The uniform export path into a [`Registry`]: a statistics block writes
/// its counters and gauges under `prefix` (e.g. `tcp.3`), using `now` to
/// close any time-weighted accumulators.
pub trait RegistryExport {
    /// Export every reportable number under `prefix.<metric>`.
    fn export(&self, reg: &mut Registry, prefix: &str, now: SimTime);
}

/// Export a channel's [`ChannelStats`](netsim::stats::ChannelStats)
/// under `prefix` (lives here because `netsim` must not depend on this
/// crate).
pub fn export_channel_stats(
    reg: &mut Registry,
    prefix: &str,
    stats: &netsim::stats::ChannelStats,
    now: SimTime,
) {
    reg.record_count(format!("{prefix}.offered"), stats.offered);
    reg.record_count(format!("{prefix}.accepted"), stats.accepted);
    reg.record_count(format!("{prefix}.transmitted"), stats.transmitted);
    reg.record_count(
        format!("{prefix}.bytes_transmitted"),
        stats.bytes_transmitted,
    );
    reg.record_count(format!("{prefix}.overflow_drops"), stats.overflow_drops);
    reg.record_count(format!("{prefix}.early_drops"), stats.early_drops);
    reg.record_count(format!("{prefix}.forced_drops"), stats.forced_drops);
    reg.record_count(format!("{prefix}.fault_drops"), stats.fault_drops);
    reg.record_count(format!("{prefix}.max_qlen"), stats.max_qlen as u64);
    reg.record_gauge(format!("{prefix}.avg_qlen"), stats.avg_qlen(now));
    reg.record_gauge(format!("{prefix}.utilization"), stats.utilization(now));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_handles_update_and_read_back() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        let g = r.gauge("a.level");
        r.inc(c);
        r.add(c, 4);
        r.set(g, 2.5);
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_value(g), 2.5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let mut r = Registry::new();
        r.record_count("z.last", 9);
        r.record_gauge("a.first", 1.0);
        r.record_count("m.mid", 3);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        assert_eq!(s.get("m.mid"), Some(MetricValue::Counter(3)));
        assert_eq!(s.get("a.first"), Some(MetricValue::Gauge(1.0)));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn snapshot_order_is_a_stable_byte_lexicographic_contract() {
        // Same metrics, opposite registration orders: identical snapshots.
        let mut a = Registry::new();
        a.record_count("net.offered", 7);
        a.record_gauge("chan.L1.utilization", 0.5);
        a.record_count("engine.drops", 2);
        let mut b = Registry::new();
        b.record_count("engine.drops", 2);
        b.record_count("net.offered", 7);
        b.record_gauge("chan.L1.utilization", 0.5);
        assert_eq!(a.snapshot(), b.snapshot());

        // Byte order, not numeric order: tcp.10 sorts before tcp.2. The
        // manifest emitter and rla_diff both pin this exact order.
        let mut c = Registry::new();
        c.record_count("tcp.2.delivered", 0);
        c.record_count("tcp.10.delivered", 0);
        let snap = c.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["tcp.10.delivered", "tcp.2.delivered"]);

        // Snapshots are point-in-time: later updates don't leak in.
        let mut r = Registry::new();
        let id = r.counter("x");
        let before = r.snapshot();
        r.inc(id);
        assert_eq!(before.get("x"), Some(MetricValue::Counter(0)));
        assert_eq!(r.snapshot().get("x"), Some(MetricValue::Counter(1)));
    }

    #[test]
    fn merge_sums_counters_and_keeps_the_order_contract() {
        // Two per-domain partials with overlapping and disjoint names.
        let mut a = Registry::new();
        a.record_count("net.offered", 7);
        a.record_count("net.transmitted", 5);
        a.record_gauge("chan.L1.utilization", 0.5);
        let mut b = Registry::new();
        b.record_count("net.offered", 3);
        b.record_count("net.accepted", 9);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.get("net.offered"), Some(MetricValue::Counter(10)));
        assert_eq!(merged.get("net.accepted"), Some(MetricValue::Counter(9)));
        assert_eq!(merged.get("net.transmitted"), Some(MetricValue::Counter(5)));
        assert_eq!(
            merged.get("chan.L1.utilization"),
            Some(MetricValue::Gauge(0.5))
        );
        // Still sorted byte-lexicographically after the merge.
        let names: Vec<&str> = merged.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);

        // Merging in the opposite grouping gives the identical snapshot —
        // the associativity the partitioned manifest path relies on.
        let mut other_way = b.snapshot();
        other_way.merge(&a.snapshot());
        assert_eq!(merged, other_way);

        // Merging into an empty snapshot is a copy.
        let mut empty = Snapshot::default();
        empty.merge(&a.snapshot());
        assert_eq!(empty, a.snapshot());
    }

    #[test]
    #[should_panic(expected = "only counters merge")]
    fn merging_colliding_gauges_is_rejected() {
        let mut a = Registry::new();
        a.record_gauge("chan.util", 0.5);
        let mut b = Registry::new();
        b.record_gauge("chan.util", 0.7);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
    }

    #[test]
    fn channel_stats_export_covers_the_block() {
        use netsim::queue::DropReason;
        use netsim::stats::ChannelStats;

        let mut stats = ChannelStats::default();
        stats.offered = 10;
        stats.accepted = 8;
        stats.record_drop(DropReason::EarlyDrop);
        stats.record_drop(DropReason::BufferOverflow);
        let mut r = Registry::new();
        export_channel_stats(&mut r, "net", &stats, SimTime::from_secs(10));
        let s = r.snapshot();
        assert_eq!(s.get("net.offered"), Some(MetricValue::Counter(10)));
        assert_eq!(s.get("net.early_drops"), Some(MetricValue::Counter(1)));
        assert_eq!(s.get("net.overflow_drops"), Some(MetricValue::Counter(1)));
        assert!(matches!(
            s.get("net.utilization"),
            Some(MetricValue::Gauge(_))
        ));
    }
}
