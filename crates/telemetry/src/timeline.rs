//! Per-flow timeline recording: sampled time series of transport and
//! queue state.
//!
//! A [`TimelineRecorder`] holds one series per flow (cwnd / ssthresh /
//! awnd / smoothed RTT) and per watched channel (queue length / RED
//! average). The *driver* — the scenario runner — steps the simulation in
//! increments of the sampling period and pushes one sample per series per
//! tick; the recorder itself never touches the engine, so it cannot
//! perturb a trace digest.
//!
//! Export is line-oriented: JSONL (one self-describing object per
//! sample) or CSV (one wide row per sample, empty cells for fields a
//! series does not have). Both formats share the column set, so a plot
//! script can consume either.
//!
//! Two export modes:
//!
//! * buffered — [`TimelineRecorder::write_file`] renders everything at
//!   the end of the run;
//! * streaming — [`TimelineRecorder::stream_to`] opens the file up
//!   front and appends+flushes one line per recorded sample, so `tail
//!   -f` and the `rla_top` dashboard see samples as the run produces
//!   them. Samples recorded in chronological order stream byte-identical
//!   to the buffered render.
//!
//! [`QueueSeriesTracer`] bridges the engine's event stream into a
//! recorder: one channel sample per queue-length *change* (enqueue or
//! transmission start) rather than per sampling tick — the exact series
//! the §3.1 buffer-period analysis segments.

use std::cell::RefCell;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use netsim::id::ChannelId;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{TraceEvent, Tracer};

/// Export format for timeline files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineFormat {
    /// One JSON object per line (`.jsonl`).
    Jsonl,
    /// Comma-separated values with a header row (`.csv`).
    Csv,
}

impl TimelineFormat {
    /// The file extension for this format.
    pub fn extension(&self) -> &'static str {
        match self {
            TimelineFormat::Jsonl => "jsonl",
            TimelineFormat::Csv => "csv",
        }
    }
}

/// One sample of a transport flow's state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowSample {
    /// Congestion window, packets.
    pub cwnd: f64,
    /// Slow-start threshold, packets (window-based TCP only).
    pub ssthresh: Option<f64>,
    /// Moving average of the window (the RLA's forced-cut horizon).
    pub awnd: Option<f64>,
    /// Smoothed RTT estimate, seconds.
    pub rtt: Option<f64>,
}

/// One sample of a channel buffer's state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelSample {
    /// Instantaneous queue length, packets.
    pub qlen: usize,
    /// RED's average queue estimate, if the gateway runs RED.
    pub red_avg: Option<f64>,
}

/// A sampled value: either a flow or a channel observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    /// Transport-flow state.
    Flow(FlowSample),
    /// Channel-buffer state.
    Channel(ChannelSample),
}

/// The read surface a sampled transport sender exposes to the recorder.
/// Implemented by the TCP SACK, Reno and RLA senders.
pub trait FlowProbe {
    /// Short series-kind tag (`"tcp-sack"`, `"reno"`, `"rla"`).
    fn probe_kind(&self) -> &'static str;

    /// The flow's current state.
    fn flow_sample(&self) -> FlowSample;
}

/// One named time series.
#[derive(Debug, Clone)]
pub struct TimelineSeries {
    /// Series name (`rla.0`, `tcp.3`, `chan.L1`).
    pub name: String,
    /// Kind tag (`rla`, `tcp-sack`, `reno`, `channel`).
    pub kind: &'static str,
    /// `(time, sample)` pairs in sampling order.
    pub samples: Vec<(SimTime, Sample)>,
}

/// Handle to a series inside a [`TimelineRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// Live-export state of a streaming recorder (see
/// [`TimelineRecorder::stream_to`]).
#[derive(Debug)]
struct TimelineStream {
    out: std::fs::File,
    format: TimelineFormat,
    path: PathBuf,
    /// First I/O error, sticky — recording must not panic mid-run on a
    /// full disk; the error surfaces from `finish_stream`.
    error: Option<io::Error>,
}

/// Collects sampled series; see the module docs for the driving contract.
#[derive(Debug)]
pub struct TimelineRecorder {
    /// Sampling period (simulated time between ticks).
    pub period: SimDuration,
    series: Vec<TimelineSeries>,
    stream: Option<TimelineStream>,
}

impl TimelineRecorder {
    /// A recorder sampling every `period` of simulated time.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        TimelineRecorder {
            period,
            series: Vec::new(),
            stream: None,
        }
    }

    /// Switch the recorder to streaming export: open
    /// `<dir>/<stem>.timeline.<ext>` now (creating `dir`), write the CSV
    /// header if applicable, and from here on append+flush one line per
    /// recorded sample — so a live `tail -f` (or `rla_top`) sees samples
    /// as soon as they are recorded instead of at the end of the run.
    /// Returns the path opened.
    pub fn stream_to(
        &mut self,
        dir: &Path,
        stem: &str,
        format: TimelineFormat,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.timeline.{}", format.extension()));
        let mut out = std::fs::File::create(&path)?;
        if format == TimelineFormat::Csv {
            out.write_all(CSV_HEADER.as_bytes())?;
            out.flush()?;
        }
        self.stream = Some(TimelineStream {
            out,
            format,
            path: path.clone(),
            error: None,
        });
        Ok(path)
    }

    /// Where the streaming export writes, if streaming is active.
    pub fn stream_path(&self) -> Option<&Path> {
        self.stream.as_ref().map(|s| s.path.as_path())
    }

    /// Finish a streaming export: flush and close the file, surfacing
    /// any I/O error recording swallowed. `Ok(None)` when the recorder
    /// was not streaming. The in-memory series survive, so `render`
    /// still works afterwards.
    pub fn finish_stream(&mut self) -> io::Result<Option<PathBuf>> {
        let Some(mut s) = self.stream.take() else {
            return Ok(None);
        };
        if let Some(e) = s.error.take() {
            return Err(e);
        }
        s.out.flush()?;
        Ok(Some(s.path))
    }

    /// Append+flush one rendered sample line to the stream, if active.
    fn stream_sample(&mut self, series_index: usize, t: SimTime, sample: &Sample) {
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        if stream.error.is_some() {
            return;
        }
        let s = &self.series[series_index];
        let mut line = String::new();
        match stream.format {
            TimelineFormat::Jsonl => render_jsonl(&mut line, t, &s.name, s.kind, sample),
            TimelineFormat::Csv => render_csv(&mut line, t, &s.name, s.kind, sample),
        }
        // One write + flush per line: line-buffered semantics, so a
        // concurrent reader never sees a torn line tail.
        if let Err(e) = stream
            .out
            .write_all(line.as_bytes())
            .and_then(|()| stream.out.flush())
        {
            stream.error = Some(e);
        }
    }

    /// Register a flow series.
    pub fn add_flow(&mut self, name: impl Into<String>, kind: &'static str) -> SeriesId {
        self.series.push(TimelineSeries {
            name: name.into(),
            kind,
            samples: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Register a channel series.
    pub fn add_channel(&mut self, name: impl Into<String>) -> SeriesId {
        self.add_flow(name, "channel")
    }

    /// Record one flow sample.
    pub fn record_flow(&mut self, id: SeriesId, now: SimTime, sample: FlowSample) {
        let sample = Sample::Flow(sample);
        self.series[id.0].samples.push((now, sample));
        self.stream_sample(id.0, now, &sample);
    }

    /// Record one channel sample.
    pub fn record_channel(&mut self, id: SeriesId, now: SimTime, sample: ChannelSample) {
        let sample = Sample::Channel(sample);
        self.series[id.0].samples.push((now, sample));
        self.stream_sample(id.0, now, &sample);
    }

    /// The registered series.
    pub fn series(&self) -> &[TimelineSeries] {
        &self.series
    }

    /// Total samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.samples.len()).sum()
    }

    /// Render every series into one string in `format`, interleaved by
    /// time (series order breaks ties), so the file reads chronologically.
    pub fn render(&self, format: TimelineFormat) -> String {
        let mut rows: Vec<(SimTime, usize, usize)> = Vec::with_capacity(self.sample_count());
        for (si, s) in self.series.iter().enumerate() {
            for (pi, (t, _)) in s.samples.iter().enumerate() {
                rows.push((*t, si, pi));
            }
        }
        rows.sort_by_key(|&(t, si, pi)| (t, si, pi));

        let mut out = String::new();
        if format == TimelineFormat::Csv {
            out.push_str(CSV_HEADER);
        }
        for (t, si, pi) in rows {
            let s = &self.series[si];
            let (_, sample) = &s.samples[pi];
            match format {
                TimelineFormat::Jsonl => render_jsonl(&mut out, t, &s.name, s.kind, sample),
                TimelineFormat::Csv => render_csv(&mut out, t, &s.name, s.kind, sample),
            }
        }
        out
    }

    /// Write `<stem>.timeline.<ext>` under `dir`, creating the directory;
    /// returns the path written.
    pub fn write_file(
        &self,
        dir: &Path,
        stem: &str,
        format: TimelineFormat,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.timeline.{}", format.extension()));
        std::fs::write(&path, self.render(format))?;
        Ok(path)
    }
}

/// The CSV column header shared by buffered and streaming export.
const CSV_HEADER: &str = "t_secs,series,kind,cwnd,ssthresh,awnd,rtt_secs,qlen,red_avg\n";

/// Bridges the engine's [`Tracer`] event stream into a shared
/// [`TimelineRecorder`]: records one channel sample per queue-length
/// *change* at the watched channel (enqueue and transmission start, the
/// two transitions that alter occupancy) and keeps the `(time, uid)` of
/// every drop there. This is the event-driven replacement for the old
/// `netsim::trace::QueueLengthTracer` — the same series, but landing in
/// the standard timeline machinery so it exports/streams like any other
/// series.
#[derive(Debug)]
pub struct QueueSeriesTracer {
    channel: ChannelId,
    series: SeriesId,
    recorder: Rc<RefCell<TimelineRecorder>>,
    /// `(time, uid)` of every drop at the watched channel.
    pub drops: Vec<(SimTime, u64)>,
}

impl QueueSeriesTracer {
    /// Watch `channel`, registering a channel series named `name` in
    /// `recorder`.
    pub fn new(
        recorder: Rc<RefCell<TimelineRecorder>>,
        channel: ChannelId,
        name: impl Into<String>,
    ) -> Self {
        let series = recorder.borrow_mut().add_channel(name);
        QueueSeriesTracer {
            channel,
            series,
            recorder,
            drops: Vec::new(),
        }
    }

    /// The `(time, qlen)` change series recorded so far, extracted from
    /// the shared recorder.
    pub fn samples(&self) -> Vec<(SimTime, usize)> {
        let rec = self.recorder.borrow();
        rec.series()[self.series.0]
            .samples
            .iter()
            .filter_map(|(t, s)| match s {
                Sample::Channel(c) => Some((*t, c.qlen)),
                Sample::Flow(_) => None,
            })
            .collect()
    }
}

impl Tracer for QueueSeriesTracer {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        match event {
            TraceEvent::Enqueue { channel, qlen, .. }
            | TraceEvent::TxStart { channel, qlen, .. }
                if *channel == self.channel =>
            {
                self.recorder.borrow_mut().record_channel(
                    self.series,
                    now,
                    ChannelSample {
                        qlen: *qlen,
                        red_avg: None,
                    },
                );
            }
            TraceEvent::Drop {
                channel, packet, ..
            } if *channel == self.channel => {
                self.drops.push((now, packet.uid));
            }
            _ => {}
        }
    }
}

/// Render a finite float the shortest way that parses back exactly;
/// non-finite values become `null` (JSONL) — callers handle CSV.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// RFC-4180 CSV field: wrapped in double quotes with inner quotes doubled
/// when the value contains a comma, quote or line break; verbatim
/// otherwise. Series names come from topology labels, so they are not
/// guaranteed comma-free.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains([',', '"', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut quoted = String::with_capacity(s.len() + 2);
    quoted.push('"');
    for c in s.chars() {
        if c == '"' {
            quoted.push('"');
        }
        quoted.push(c);
    }
    quoted.push('"');
    std::borrow::Cow::Owned(quoted)
}

/// JSON string-escape the characters our series names could smuggle into
/// a JSONL record (quote, backslash, control characters). Shared with the
/// progress heartbeat sink, whose labels have the same provenance.
pub(crate) fn json_escaped(s: &str) -> std::borrow::Cow<'_, str> {
    use std::fmt::Write as _;
    if !s
        .chars()
        .any(|c| c == '"' || c == '\\' || (c as u32) < 0x20)
    {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

fn render_jsonl(out: &mut String, t: SimTime, name: &str, kind: &str, sample: &Sample) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t\":{},\"series\":\"{}\",\"kind\":\"{}\"",
        fmt_f64(t.as_secs_f64()),
        json_escaped(name),
        json_escaped(kind)
    );
    match sample {
        Sample::Flow(f) => {
            let _ = write!(out, ",\"cwnd\":{}", fmt_f64(f.cwnd));
            if let Some(v) = f.ssthresh {
                let _ = write!(out, ",\"ssthresh\":{}", fmt_f64(v));
            }
            if let Some(v) = f.awnd {
                let _ = write!(out, ",\"awnd\":{}", fmt_f64(v));
            }
            if let Some(v) = f.rtt {
                let _ = write!(out, ",\"rtt\":{}", fmt_f64(v));
            }
        }
        Sample::Channel(c) => {
            let _ = write!(out, ",\"qlen\":{}", c.qlen);
            if let Some(v) = c.red_avg {
                let _ = write!(out, ",\"red_avg\":{}", fmt_f64(v));
            }
        }
    }
    out.push_str("}\n");
}

fn render_csv(out: &mut String, t: SimTime, name: &str, kind: &str, sample: &Sample) {
    use std::fmt::Write as _;
    let opt = |v: Option<f64>| v.map(fmt_f64).unwrap_or_default();
    match sample {
        Sample::Flow(f) => {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},,",
                fmt_f64(t.as_secs_f64()),
                csv_field(name),
                csv_field(kind),
                fmt_f64(f.cwnd),
                opt(f.ssthresh),
                opt(f.awnd),
                opt(f.rtt),
            );
        }
        Sample::Channel(c) => {
            let _ = writeln!(
                out,
                "{},{},{},,,,,{},{}",
                fmt_f64(t.as_secs_f64()),
                csv_field(name),
                csv_field(kind),
                c.qlen,
                opt(c.red_avg),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with_data() -> TimelineRecorder {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let f = r.add_flow("rla.0", "rla");
        let c = r.add_channel("chan.L1");
        r.record_flow(
            f,
            SimTime::from_secs(1),
            FlowSample {
                cwnd: 10.5,
                ssthresh: None,
                awnd: Some(9.0),
                rtt: Some(0.25),
            },
        );
        r.record_channel(
            c,
            SimTime::from_secs(1),
            ChannelSample {
                qlen: 7,
                red_avg: Some(3.25),
            },
        );
        r.record_flow(
            f,
            SimTime::from_secs(2),
            FlowSample {
                cwnd: 11.5,
                ssthresh: Some(16.0),
                awnd: None,
                rtt: None,
            },
        );
        r
    }

    #[test]
    fn jsonl_renders_one_object_per_sample_in_time_order() {
        let r = recorder_with_data();
        let out = r.render(TimelineFormat::Jsonl);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"series\":\"rla.0\""), "{}", lines[0]);
        assert!(lines[0].contains("\"cwnd\":10.5"), "{}", lines[0]);
        assert!(lines[0].contains("\"awnd\":9"), "{}", lines[0]);
        assert!(!lines[0].contains("ssthresh"), "absent fields omitted");
        assert!(lines[1].contains("\"qlen\":7"), "{}", lines[1]);
        assert!(lines[1].contains("\"red_avg\":3.25"), "{}", lines[1]);
        assert!(lines[2].contains("\"ssthresh\":16"), "{}", lines[2]);
    }

    #[test]
    fn csv_has_header_and_stable_column_count() {
        let r = recorder_with_data();
        let out = r.render(TimelineFormat::Csv);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows");
        let cols = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(lines[2].ends_with("7,3.25"), "{}", lines[2]);
    }

    #[test]
    fn sample_count_sums_series() {
        assert_eq!(recorder_with_data().sample_count(), 3);
    }

    #[test]
    fn csv_quotes_series_names_per_rfc_4180() {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let c = r.add_channel("chan.\"left\",L1");
        r.record_channel(
            c,
            SimTime::from_secs(1),
            ChannelSample {
                qlen: 4,
                red_avg: None,
            },
        );
        let out = r.render(TimelineFormat::Csv);
        let row = out.lines().nth(1).expect("data row");
        // The name is quoted with inner quotes doubled, so the embedded
        // comma does not split the row.
        assert!(
            row.contains(r#""chan.""left"",L1""#),
            "unquoted series name: {row}"
        );
        // Outside quoted fields the row still has the 9-column shape.
        let unquoted_commas = {
            let mut depth_in_quotes = false;
            row.chars()
                .filter(|&ch| {
                    if ch == '"' {
                        depth_in_quotes = !depth_in_quotes;
                    }
                    ch == ',' && !depth_in_quotes
                })
                .count()
        };
        assert_eq!(unquoted_commas, 8, "{row}");
        // Plain names stay unquoted.
        assert_eq!(csv_field("chan.L1"), "chan.L1");
    }

    #[test]
    fn jsonl_escapes_series_names() {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let c = r.add_channel("chan.\"x\"\\y");
        r.record_channel(c, SimTime::from_secs(1), ChannelSample::default());
        let out = r.render(TimelineFormat::Jsonl);
        assert!(
            out.contains(r#""series":"chan.\"x\"\\y""#),
            "unescaped name: {out}"
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_is_rejected() {
        TimelineRecorder::new(SimDuration::ZERO);
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rla_timeline_tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn streaming_is_readable_mid_run_line_by_line() {
        let dir = temp_dir("midrun");
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let f = r.add_flow("rla.0", "rla");
        let path = r.stream_to(&dir, "live", TimelineFormat::Jsonl).unwrap();

        // Nothing recorded yet: file exists and is empty.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");

        r.record_flow(
            f,
            SimTime::from_secs(1),
            FlowSample {
                cwnd: 4.0,
                ..Default::default()
            },
        );
        // The defining property: the sample is on disk *now*, while the
        // recorder is still live and more samples are coming.
        let mid = std::fs::read_to_string(&path).unwrap();
        assert_eq!(mid.lines().count(), 1, "{mid:?}");
        assert!(mid.ends_with('\n'), "no torn line tail: {mid:?}");
        assert!(mid.contains("\"cwnd\":4"), "{mid}");

        r.record_flow(
            f,
            SimTime::from_secs(2),
            FlowSample {
                cwnd: 5.0,
                ..Default::default()
            },
        );
        let finished = r.finish_stream().unwrap().expect("was streaming");
        assert_eq!(finished, path);
        // Chronologically-recorded samples stream byte-identical to the
        // buffered render.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            r.render(TimelineFormat::Jsonl)
        );
    }

    #[test]
    fn streaming_csv_writes_header_up_front() {
        let dir = temp_dir("csvhdr");
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let c = r.add_channel("chan.L1");
        let path = r.stream_to(&dir, "live", TimelineFormat::Csv).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), CSV_HEADER);
        r.record_channel(
            c,
            SimTime::from_secs(1),
            ChannelSample {
                qlen: 3,
                red_avg: None,
            },
        );
        r.finish_stream().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            r.render(TimelineFormat::Csv)
        );
    }

    #[test]
    fn finish_stream_without_streaming_is_a_noop() {
        let mut r = recorder_with_data();
        assert!(r.stream_path().is_none());
        assert!(r.finish_stream().unwrap().is_none());
    }

    #[test]
    fn queue_series_tracer_records_changes_and_drops() {
        use netsim::id::AgentId;
        use netsim::packet::{Dest, Packet};
        use netsim::queue::DropReason;
        use netsim::wire::Segment;
        let p = Packet {
            uid: 9,
            src: AgentId(0),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 1000,
            segment: Segment::Raw,
            sent_at: SimTime::ZERO,
        };
        let rec = Rc::new(RefCell::new(TimelineRecorder::new(
            SimDuration::from_millis(500),
        )));
        let mut t = QueueSeriesTracer::new(Rc::clone(&rec), ChannelId(5), "chan.L1");
        t.trace(
            SimTime::from_secs(1),
            &TraceEvent::Enqueue {
                channel: ChannelId(5),
                packet: &p,
                qlen: 3,
            },
        );
        // Other channels are ignored.
        t.trace(
            SimTime::from_secs(2),
            &TraceEvent::Enqueue {
                channel: ChannelId(6),
                packet: &p,
                qlen: 9,
            },
        );
        t.trace(
            SimTime::from_secs(3),
            &TraceEvent::TxStart {
                channel: ChannelId(5),
                packet: &p,
                qlen: 2,
            },
        );
        t.trace(
            SimTime::from_secs(4),
            &TraceEvent::Drop {
                channel: ChannelId(5),
                packet: &p,
                reason: DropReason::BufferOverflow,
                qlen: 20,
            },
        );
        assert_eq!(
            t.samples(),
            vec![(SimTime::from_secs(1), 3), (SimTime::from_secs(3), 2)]
        );
        assert_eq!(t.drops, vec![(SimTime::from_secs(4), 9)]);
        assert_eq!(rec.borrow().sample_count(), 2, "drops are not samples");
    }
}
