//! Per-flow timeline recording: sampled time series of transport and
//! queue state.
//!
//! A [`TimelineRecorder`] holds one series per flow (cwnd / ssthresh /
//! awnd / smoothed RTT) and per watched channel (queue length / RED
//! average). The *driver* — the scenario runner — steps the simulation in
//! increments of the sampling period and pushes one sample per series per
//! tick; the recorder itself never touches the engine, so it cannot
//! perturb a trace digest.
//!
//! Export is line-oriented: JSONL (one self-describing object per
//! sample) or CSV (one wide row per sample, empty cells for fields a
//! series does not have). Both formats share the column set, so a plot
//! script can consume either.

use std::io;
use std::path::{Path, PathBuf};

use netsim::time::{SimDuration, SimTime};

/// Export format for timeline files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineFormat {
    /// One JSON object per line (`.jsonl`).
    Jsonl,
    /// Comma-separated values with a header row (`.csv`).
    Csv,
}

impl TimelineFormat {
    /// The file extension for this format.
    pub fn extension(&self) -> &'static str {
        match self {
            TimelineFormat::Jsonl => "jsonl",
            TimelineFormat::Csv => "csv",
        }
    }
}

/// One sample of a transport flow's state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowSample {
    /// Congestion window, packets.
    pub cwnd: f64,
    /// Slow-start threshold, packets (window-based TCP only).
    pub ssthresh: Option<f64>,
    /// Moving average of the window (the RLA's forced-cut horizon).
    pub awnd: Option<f64>,
    /// Smoothed RTT estimate, seconds.
    pub rtt: Option<f64>,
}

/// One sample of a channel buffer's state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelSample {
    /// Instantaneous queue length, packets.
    pub qlen: usize,
    /// RED's average queue estimate, if the gateway runs RED.
    pub red_avg: Option<f64>,
}

/// A sampled value: either a flow or a channel observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    /// Transport-flow state.
    Flow(FlowSample),
    /// Channel-buffer state.
    Channel(ChannelSample),
}

/// The read surface a sampled transport sender exposes to the recorder.
/// Implemented by the TCP SACK, Reno and RLA senders.
pub trait FlowProbe {
    /// Short series-kind tag (`"tcp-sack"`, `"reno"`, `"rla"`).
    fn probe_kind(&self) -> &'static str;

    /// The flow's current state.
    fn flow_sample(&self) -> FlowSample;
}

/// One named time series.
#[derive(Debug, Clone)]
pub struct TimelineSeries {
    /// Series name (`rla.0`, `tcp.3`, `chan.L1`).
    pub name: String,
    /// Kind tag (`rla`, `tcp-sack`, `reno`, `channel`).
    pub kind: &'static str,
    /// `(time, sample)` pairs in sampling order.
    pub samples: Vec<(SimTime, Sample)>,
}

/// Handle to a series inside a [`TimelineRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// Collects sampled series; see the module docs for the driving contract.
#[derive(Debug)]
pub struct TimelineRecorder {
    /// Sampling period (simulated time between ticks).
    pub period: SimDuration,
    series: Vec<TimelineSeries>,
}

impl TimelineRecorder {
    /// A recorder sampling every `period` of simulated time.
    pub fn new(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sampling period must be positive");
        TimelineRecorder {
            period,
            series: Vec::new(),
        }
    }

    /// Register a flow series.
    pub fn add_flow(&mut self, name: impl Into<String>, kind: &'static str) -> SeriesId {
        self.series.push(TimelineSeries {
            name: name.into(),
            kind,
            samples: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Register a channel series.
    pub fn add_channel(&mut self, name: impl Into<String>) -> SeriesId {
        self.add_flow(name, "channel")
    }

    /// Record one flow sample.
    pub fn record_flow(&mut self, id: SeriesId, now: SimTime, sample: FlowSample) {
        self.series[id.0].samples.push((now, Sample::Flow(sample)));
    }

    /// Record one channel sample.
    pub fn record_channel(&mut self, id: SeriesId, now: SimTime, sample: ChannelSample) {
        self.series[id.0]
            .samples
            .push((now, Sample::Channel(sample)));
    }

    /// The registered series.
    pub fn series(&self) -> &[TimelineSeries] {
        &self.series
    }

    /// Total samples across all series.
    pub fn sample_count(&self) -> usize {
        self.series.iter().map(|s| s.samples.len()).sum()
    }

    /// Render every series into one string in `format`, interleaved by
    /// time (series order breaks ties), so the file reads chronologically.
    pub fn render(&self, format: TimelineFormat) -> String {
        let mut rows: Vec<(SimTime, usize, usize)> = Vec::with_capacity(self.sample_count());
        for (si, s) in self.series.iter().enumerate() {
            for (pi, (t, _)) in s.samples.iter().enumerate() {
                rows.push((*t, si, pi));
            }
        }
        rows.sort_by_key(|&(t, si, pi)| (t, si, pi));

        let mut out = String::new();
        if format == TimelineFormat::Csv {
            out.push_str("t_secs,series,kind,cwnd,ssthresh,awnd,rtt_secs,qlen,red_avg\n");
        }
        for (t, si, pi) in rows {
            let s = &self.series[si];
            let (_, sample) = &s.samples[pi];
            match format {
                TimelineFormat::Jsonl => render_jsonl(&mut out, t, &s.name, s.kind, sample),
                TimelineFormat::Csv => render_csv(&mut out, t, &s.name, s.kind, sample),
            }
        }
        out
    }

    /// Write `<stem>.timeline.<ext>` under `dir`, creating the directory;
    /// returns the path written.
    pub fn write_file(
        &self,
        dir: &Path,
        stem: &str,
        format: TimelineFormat,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{stem}.timeline.{}", format.extension()));
        std::fs::write(&path, self.render(format))?;
        Ok(path)
    }
}

/// Render a finite float the shortest way that parses back exactly;
/// non-finite values become `null` (JSONL) — callers handle CSV.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// RFC-4180 CSV field: wrapped in double quotes with inner quotes doubled
/// when the value contains a comma, quote or line break; verbatim
/// otherwise. Series names come from topology labels, so they are not
/// guaranteed comma-free.
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains([',', '"', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut quoted = String::with_capacity(s.len() + 2);
    quoted.push('"');
    for c in s.chars() {
        if c == '"' {
            quoted.push('"');
        }
        quoted.push(c);
    }
    quoted.push('"');
    std::borrow::Cow::Owned(quoted)
}

/// JSON string-escape the characters our series names could smuggle into
/// a JSONL record (quote, backslash, control characters).
fn json_escaped(s: &str) -> std::borrow::Cow<'_, str> {
    use std::fmt::Write as _;
    if !s
        .chars()
        .any(|c| c == '"' || c == '\\' || (c as u32) < 0x20)
    {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

fn render_jsonl(out: &mut String, t: SimTime, name: &str, kind: &str, sample: &Sample) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t\":{},\"series\":\"{}\",\"kind\":\"{}\"",
        fmt_f64(t.as_secs_f64()),
        json_escaped(name),
        json_escaped(kind)
    );
    match sample {
        Sample::Flow(f) => {
            let _ = write!(out, ",\"cwnd\":{}", fmt_f64(f.cwnd));
            if let Some(v) = f.ssthresh {
                let _ = write!(out, ",\"ssthresh\":{}", fmt_f64(v));
            }
            if let Some(v) = f.awnd {
                let _ = write!(out, ",\"awnd\":{}", fmt_f64(v));
            }
            if let Some(v) = f.rtt {
                let _ = write!(out, ",\"rtt\":{}", fmt_f64(v));
            }
        }
        Sample::Channel(c) => {
            let _ = write!(out, ",\"qlen\":{}", c.qlen);
            if let Some(v) = c.red_avg {
                let _ = write!(out, ",\"red_avg\":{}", fmt_f64(v));
            }
        }
    }
    out.push_str("}\n");
}

fn render_csv(out: &mut String, t: SimTime, name: &str, kind: &str, sample: &Sample) {
    use std::fmt::Write as _;
    let opt = |v: Option<f64>| v.map(fmt_f64).unwrap_or_default();
    match sample {
        Sample::Flow(f) => {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},,",
                fmt_f64(t.as_secs_f64()),
                csv_field(name),
                csv_field(kind),
                fmt_f64(f.cwnd),
                opt(f.ssthresh),
                opt(f.awnd),
                opt(f.rtt),
            );
        }
        Sample::Channel(c) => {
            let _ = writeln!(
                out,
                "{},{},{},,,,,{},{}",
                fmt_f64(t.as_secs_f64()),
                csv_field(name),
                csv_field(kind),
                c.qlen,
                opt(c.red_avg),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder_with_data() -> TimelineRecorder {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let f = r.add_flow("rla.0", "rla");
        let c = r.add_channel("chan.L1");
        r.record_flow(
            f,
            SimTime::from_secs(1),
            FlowSample {
                cwnd: 10.5,
                ssthresh: None,
                awnd: Some(9.0),
                rtt: Some(0.25),
            },
        );
        r.record_channel(
            c,
            SimTime::from_secs(1),
            ChannelSample {
                qlen: 7,
                red_avg: Some(3.25),
            },
        );
        r.record_flow(
            f,
            SimTime::from_secs(2),
            FlowSample {
                cwnd: 11.5,
                ssthresh: Some(16.0),
                awnd: None,
                rtt: None,
            },
        );
        r
    }

    #[test]
    fn jsonl_renders_one_object_per_sample_in_time_order() {
        let r = recorder_with_data();
        let out = r.render(TimelineFormat::Jsonl);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"series\":\"rla.0\""), "{}", lines[0]);
        assert!(lines[0].contains("\"cwnd\":10.5"), "{}", lines[0]);
        assert!(lines[0].contains("\"awnd\":9"), "{}", lines[0]);
        assert!(!lines[0].contains("ssthresh"), "absent fields omitted");
        assert!(lines[1].contains("\"qlen\":7"), "{}", lines[1]);
        assert!(lines[1].contains("\"red_avg\":3.25"), "{}", lines[1]);
        assert!(lines[2].contains("\"ssthresh\":16"), "{}", lines[2]);
    }

    #[test]
    fn csv_has_header_and_stable_column_count() {
        let r = recorder_with_data();
        let out = r.render(TimelineFormat::Csv);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 rows");
        let cols = lines[0].split(',').count();
        for line in &lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        assert!(lines[2].ends_with("7,3.25"), "{}", lines[2]);
    }

    #[test]
    fn sample_count_sums_series() {
        assert_eq!(recorder_with_data().sample_count(), 3);
    }

    #[test]
    fn csv_quotes_series_names_per_rfc_4180() {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let c = r.add_channel("chan.\"left\",L1");
        r.record_channel(
            c,
            SimTime::from_secs(1),
            ChannelSample {
                qlen: 4,
                red_avg: None,
            },
        );
        let out = r.render(TimelineFormat::Csv);
        let row = out.lines().nth(1).expect("data row");
        // The name is quoted with inner quotes doubled, so the embedded
        // comma does not split the row.
        assert!(
            row.contains(r#""chan.""left"",L1""#),
            "unquoted series name: {row}"
        );
        // Outside quoted fields the row still has the 9-column shape.
        let unquoted_commas = {
            let mut depth_in_quotes = false;
            row.chars()
                .filter(|&ch| {
                    if ch == '"' {
                        depth_in_quotes = !depth_in_quotes;
                    }
                    ch == ',' && !depth_in_quotes
                })
                .count()
        };
        assert_eq!(unquoted_commas, 8, "{row}");
        // Plain names stay unquoted.
        assert_eq!(csv_field("chan.L1"), "chan.L1");
    }

    #[test]
    fn jsonl_escapes_series_names() {
        let mut r = TimelineRecorder::new(SimDuration::from_millis(500));
        let c = r.add_channel("chan.\"x\"\\y");
        r.record_channel(c, SimTime::from_secs(1), ChannelSample::default());
        let out = r.render(TimelineFormat::Jsonl);
        assert!(
            out.contains(r#""series":"chan.\"x\"\\y""#),
            "unescaped name: {out}"
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_is_rejected() {
        TimelineRecorder::new(SimDuration::ZERO);
    }
}
