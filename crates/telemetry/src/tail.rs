//! Incremental tailing of the observability JSONL artifacts.
//!
//! The `rla_top` dashboard follows two kinds of files while a run or
//! sweep is producing them: streamed `.timeline.jsonl` exports (one
//! sample object per line, see [`crate::timeline`]) and the sweep
//! heartbeat sink (one job object per line, see [`crate::progress`]).
//! [`JsonlTail`] is the `tail -f` half: it remembers a byte offset into
//! one file and, on every poll, returns the *complete* lines appended
//! since — a partial trailing line is buffered until its newline
//! arrives, so a record is never seen torn.
//!
//! [`parse_flat_object`] is the parsing half: a dependency-free reader
//! for one flat JSON object (string/number/bool/null values — exactly
//! what both producers emit; nested values are skipped, not errors).
//! The full hand-rolled JSON parser lives in `experiments::manifest`,
//! but this crate sits below `experiments` in the dependency order, so
//! the dashboard's narrow subset is implemented here.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A scalar value of a flat JSONL record.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
}

impl JsonScalar {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed record: the object's key/value pairs in file order.
pub type FlatRecord = Vec<(String, JsonScalar)>;

/// Look up a key in a [`FlatRecord`].
pub fn field<'a>(record: &'a FlatRecord, key: &str) -> Option<&'a JsonScalar> {
    record.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parse one line holding a flat JSON object. Returns `None` for blank
/// lines and anything that is not an object — a tailing consumer skips
/// rather than dies, since a foreign line in a watched file must not
/// take the dashboard down.
pub fn parse_flat_object(line: &str) -> Option<FlatRecord> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.eat(b'{') {
        return None;
    }
    let mut out = FlatRecord::new();
    p.skip_ws();
    if p.eat(b'}') {
        return p.at_end().then_some(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        if !p.eat(b':') {
            return None;
        }
        p.skip_ws();
        // A nested value parses but is skipped: the key is dropped.
        if let Some(v) = p.value()? {
            out.push((key, v));
        }
        p.skip_ws();
        if p.eat(b',') {
            continue;
        }
        if p.eat(b'}') {
            break;
        }
        return None;
    }
    p.at_end().then_some(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.bytes.len()
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    /// A scalar value; `Some(None)` for a (skipped) nested array/object.
    fn value(&mut self) -> Option<Option<JsonScalar>> {
        match self.peek()? {
            b'"' => self.string().map(|s| Some(JsonScalar::Str(s))),
            b'{' => self.skip_nested(b'{', b'}').then_some(None),
            b'[' => self.skip_nested(b'[', b']').then_some(None),
            b't' => self.literal("true").then_some(Some(JsonScalar::Bool(true))),
            b'f' => self
                .literal("false")
                .then_some(Some(JsonScalar::Bool(false))),
            b'n' => self.literal("null").then_some(Some(JsonScalar::Null)),
            _ => self.number().map(|v| Some(JsonScalar::Num(v))),
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Multi-byte UTF-8 passes through byte-wise; find the
                    // char boundary via the original str slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    /// Skip one balanced nested value (strings respected).
    fn skip_nested(&mut self, open: u8, close: u8) -> bool {
        let mut depth = 0usize;
        loop {
            let Some(b) = self.peek() else { return false };
            if b == b'"' {
                if self.string().is_none() {
                    return false;
                }
                continue;
            }
            self.pos += 1;
            if b == open {
                depth += 1;
            } else if b == close {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
        }
    }
}

/// Follows one JSONL file by byte offset, like `tail -f`. See the
/// module docs.
#[derive(Debug)]
pub struct JsonlTail {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
}

impl JsonlTail {
    /// Tail `path` from the beginning (existing content is returned by
    /// the first [`poll`](Self::poll)).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// The tailed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read everything appended since the last poll and return the
    /// complete lines (no trailing `\n`). A missing file is "no new
    /// lines", not an error — sweeps create their artifacts lazily. A
    /// file that shrank (truncated/recreated) is re-read from the start.
    pub fn poll(&mut self) -> std::io::Result<Vec<String>> {
        let mut f = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let len = f.metadata()?.len();
        if len < self.offset {
            self.offset = 0;
            self.partial.clear();
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        f.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        f.take(len - self.offset).read_to_end(&mut buf)?;
        self.offset += buf.len() as u64;

        let mut lines = Vec::new();
        for b in buf {
            if b == b'\n' {
                let line = std::mem::take(&mut self.partial);
                lines.push(String::from_utf8_lossy(&line).into_owned());
            } else {
                self.partial.push(b);
            }
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn parses_timeline_and_progress_lines() {
        let r =
            parse_flat_object(r#"{"t":12.5,"series":"rla.0","kind":"rla","cwnd":10.5,"rtt":0.25}"#)
                .unwrap();
        assert_eq!(field(&r, "t").unwrap().as_f64(), Some(12.5));
        assert_eq!(field(&r, "series").unwrap().as_str(), Some("rla.0"));
        assert_eq!(field(&r, "cwnd").unwrap().as_f64(), Some(10.5));

        let p = parse_flat_object(
            r#"{"job":3,"total":20,"case":"L21","seed":1,"ev_per_s":1950000.0,"eta_secs":null}"#,
        )
        .unwrap();
        assert_eq!(field(&p, "job").unwrap().as_f64(), Some(3.0));
        assert_eq!(field(&p, "eta_secs"), Some(&JsonScalar::Null));
    }

    #[test]
    fn tolerates_escapes_nesting_and_garbage() {
        let r = parse_flat_object(r#"{"label":"odd \"name\"\\x","flag":true}"#).unwrap();
        assert_eq!(
            field(&r, "label").unwrap().as_str(),
            Some("odd \"name\"\\x")
        );
        assert_eq!(field(&r, "flag"), Some(&JsonScalar::Bool(true)));
        // Nested values are skipped, the rest of the object survives.
        let n = parse_flat_object(r#"{"a":{"x":[1,2,"}"]},"b":7}"#).unwrap();
        assert_eq!(field(&n, "a"), None);
        assert_eq!(field(&n, "b").unwrap().as_f64(), Some(7.0));
        // Non-objects and torn lines return None instead of panicking.
        assert_eq!(parse_flat_object(""), None);
        assert_eq!(parse_flat_object("t_secs,series,kind"), None);
        assert_eq!(parse_flat_object(r#"{"a":1"#), None);
        assert_eq!(parse_flat_object("[1,2]"), None);
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rla_tail_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn tail_returns_only_complete_appended_lines() {
        let path = temp_file("grow.jsonl");
        let mut tail = JsonlTail::new(&path);
        assert!(tail.poll().unwrap().is_empty(), "missing file is quiet");

        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "{{\"a\":1}}").unwrap();
        write!(f, "{{\"b\":").unwrap(); // torn write: no newline yet
        f.flush().unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["{\"a\":1}".to_string()]);
        assert!(tail.poll().unwrap().is_empty(), "partial line held back");

        writeln!(f, "2}}").unwrap();
        f.flush().unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["{\"b\":2}".to_string()]);
    }

    #[test]
    fn tail_recovers_from_truncation() {
        let path = temp_file("trunc.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"a\":2}\n").unwrap();
        let mut tail = JsonlTail::new(&path);
        assert_eq!(tail.poll().unwrap().len(), 2);
        // File recreated shorter (a new run overwrote it): start over.
        std::fs::write(&path, "{\"a\":9}\n").unwrap();
        assert_eq!(tail.poll().unwrap(), vec!["{\"a\":9}".to_string()]);
    }
}
