//! # telemetry — the simulator's observability layer
//!
//! The paper's entire evaluation is read off instrumentation: cwnd
//! sawtooths (figures 4/5), queue-occupancy "buffer periods" (§3.1),
//! per-receiver congestion-signal counts (figure 8). This crate is the
//! one place that instrumentation lives, instead of each experiment
//! binary hand-rolling its own collection over raw
//! [`Tracer`](netsim::trace::Tracer) callbacks:
//!
//! * [`registry`] — a counter/gauge registry with typed handles
//!   ([`CounterId`], [`GaugeId`]) and plain `&mut` updates (no interior
//!   mutability, no atomics on the hot path). Snapshots
//!   ([`Snapshot`]) are sorted, ready for a run manifest.
//! * [`timeline`] — a per-flow time-series recorder
//!   ([`TimelineRecorder`]): sampled cwnd/ssthresh/awnd, smoothed RTT,
//!   queue length and RED average at a configurable period, exported as
//!   JSONL or CSV.
//! * [`flight`] — a crash [`FlightRecorder`]: a fixed-depth ring of the
//!   last N trace events per channel, dumped when a run panics or a
//!   golden-digest gate trips, so a divergence is debuggable instead of
//!   opaque.
//! * [`progress`] — a thread-safe sweep heartbeat ([`SweepProgress`])
//!   for worker pools: per-job event rate and an ETA, written line-wise
//!   to stderr so tables on stdout stay clean, with an optional JSONL
//!   sink for machine consumers (`RLA_PROGRESS_FILE`).
//! * [`pcap`] — a classic-libpcap exporter ([`PcapTracer`]): every
//!   `TxStart` trace event becomes a capture record with synthetic
//!   Ethernet/IPv4/TCP-or-UDP framing carrying the real sequence and
//!   ack numbers, so a simulated run opens in Wireshark/tcpdump. A
//!   hand-rolled [`PcapReader`] validates exports in tests.
//! * [`tail`] + [`dash`] — the pieces of the `rla_top` live dashboard:
//!   an incremental JSONL file tailer with a dependency-free flat-JSON
//!   parser, and a [`Dashboard`] model rendering sparkline frames
//!   painted by a diffing ANSI [`DiffScreen`].
//!
//! Everything here is strictly *observer-side*: nothing in this crate
//! feeds back into simulation behaviour, so enabling or disabling
//! telemetry can never change a trace digest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dash;
pub mod flight;
pub mod pcap;
pub mod progress;
pub mod registry;
pub mod tail;
pub mod timeline;

pub use dash::{Dashboard, DiffScreen};
pub use flight::{FlightDumpGuard, FlightEvent, FlightRecorder};
pub use pcap::{PcapReader, PcapTracer, PcapWriter};
pub use progress::{JobMeta, SweepProgress};
pub use registry::{CounterId, GaugeId, MetricValue, Registry, RegistryExport, Snapshot};
pub use tail::JsonlTail;
pub use timeline::{
    ChannelSample, FlowProbe, FlowSample, QueueSeriesTracer, TimelineFormat, TimelineRecorder,
    TimelineSeries,
};
