//! # telemetry — the simulator's observability layer
//!
//! The paper's entire evaluation is read off instrumentation: cwnd
//! sawtooths (figures 4/5), queue-occupancy "buffer periods" (§3.1),
//! per-receiver congestion-signal counts (figure 8). This crate is the
//! one place that instrumentation lives, instead of each experiment
//! binary hand-rolling its own collection over raw
//! [`Tracer`](netsim::trace::Tracer) callbacks:
//!
//! * [`registry`] — a counter/gauge registry with typed handles
//!   ([`CounterId`], [`GaugeId`]) and plain `&mut` updates (no interior
//!   mutability, no atomics on the hot path). Snapshots
//!   ([`Snapshot`]) are sorted, ready for a run manifest.
//! * [`timeline`] — a per-flow time-series recorder
//!   ([`TimelineRecorder`]): sampled cwnd/ssthresh/awnd, smoothed RTT,
//!   queue length and RED average at a configurable period, exported as
//!   JSONL or CSV.
//! * [`flight`] — a crash [`FlightRecorder`]: a fixed-depth ring of the
//!   last N trace events per channel, dumped when a run panics or a
//!   golden-digest gate trips, so a divergence is debuggable instead of
//!   opaque.
//! * [`progress`] — a thread-safe sweep heartbeat ([`SweepProgress`])
//!   for worker pools: per-job event rate and an ETA, written line-wise
//!   to stderr so tables on stdout stay clean.
//!
//! Everything here is strictly *observer-side*: nothing in this crate
//! feeds back into simulation behaviour, so enabling or disabling
//! telemetry can never change a trace digest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod progress;
pub mod registry;
pub mod timeline;

pub use flight::{FlightDumpGuard, FlightEvent, FlightRecorder};
pub use progress::SweepProgress;
pub use registry::{CounterId, GaugeId, MetricValue, Registry, RegistryExport, Snapshot};
pub use timeline::{
    ChannelSample, FlowProbe, FlowSample, TimelineFormat, TimelineRecorder, TimelineSeries,
};
