//! The `rla_top` dashboard: model + hand-rolled ANSI rendering.
//!
//! Deliberately dependency-free (no ratatui/crossterm — the repo vendors
//! nothing it can write in a few hundred lines): a [`Dashboard`] folds
//! tailed [`FlatRecord`]s into per-series state, [`Dashboard::render`]
//! produces one plain-text frame (what `--once` prints and what tests
//! assert on), and [`DiffScreen`] turns successive frames into minimal
//! ANSI escape output — clear once, then repaint only the lines that
//! changed (double-buffered diff redraw), so a 4 Hz refresh over a slow
//! terminal stays cheap and flicker-free.
//!
//! Two record shapes are understood, distinguished by their keys:
//!
//! * timeline samples (`series` key) from `.timeline.jsonl` — per-flow
//!   cwnd/ssthresh/srtt and per-channel qlen/red_avg, with a sparkline
//!   over the recent window of the headline value;
//! * sweep heartbeats (`job` + `total` keys) from the
//!   `RLA_PROGRESS_FILE` sink — per-job progress bar and ETA.

use std::collections::VecDeque;

use crate::tail::{field, FlatRecord, JsonScalar};

/// Unicode eighth-blocks, the classic sparkline ramp.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// How many recent samples each series keeps for its sparkline.
pub const HISTORY: usize = 48;

/// Render `values` as a sparkline scaled to the window's own `[min,max]`
/// range (a flat series renders as a flat low line).
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &finite {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    finite
        .iter()
        .map(|&v| {
            let idx = if hi > lo {
                (((v - lo) / (hi - lo)) * 7.0).round() as usize
            } else {
                0
            };
            SPARK[idx.min(7)]
        })
        .collect()
}

/// Rolling state of one timeline series.
#[derive(Debug)]
struct SeriesRow {
    name: String,
    kind: String,
    /// Latest sample time, seconds.
    t: f64,
    /// Latest field values in arrival order (cwnd/ssthresh/rtt or
    /// qlen/red_avg).
    last: Vec<(&'static str, f64)>,
    /// Recent headline values (cwnd for flows, qlen for channels).
    history: VecDeque<f64>,
}

/// Sweep heartbeat state (latest job record wins).
#[derive(Debug, Default)]
struct JobsRow {
    done: f64,
    total: f64,
    label: String,
    ev_per_s: f64,
    eta_secs: Option<f64>,
}

/// Folds tailed records into renderable state. See the module docs.
#[derive(Debug, Default)]
pub struct Dashboard {
    flows: Vec<SeriesRow>,
    channels: Vec<SeriesRow>,
    jobs: Option<JobsRow>,
    records: u64,
}

impl Dashboard {
    /// An empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records folded in so far (timeline + heartbeat).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Fold one parsed JSONL record in; unknown shapes are ignored.
    pub fn observe(&mut self, record: &FlatRecord) {
        if field(record, "series").is_some() {
            self.observe_timeline(record);
            self.records += 1;
        } else if field(record, "job").is_some() && field(record, "total").is_some() {
            self.observe_progress(record);
            self.records += 1;
        }
    }

    fn observe_timeline(&mut self, record: &FlatRecord) {
        let Some(name) = field(record, "series").and_then(JsonScalar::as_str) else {
            return;
        };
        let kind = field(record, "kind")
            .and_then(JsonScalar::as_str)
            .unwrap_or("?");
        let t = field(record, "t")
            .and_then(JsonScalar::as_f64)
            .unwrap_or(0.0);
        let is_channel = kind == "channel";
        let (rows, headline, fields): (_, _, &[&'static str]) = if is_channel {
            (&mut self.channels, "qlen", &["qlen", "red_avg"])
        } else {
            (
                &mut self.flows,
                "cwnd",
                &["cwnd", "ssthresh", "awnd", "rtt"],
            )
        };
        let row = match rows.iter_mut().position(|r| r.name == name) {
            Some(i) => &mut rows[i],
            None => {
                rows.push(SeriesRow {
                    name: name.to_string(),
                    kind: kind.to_string(),
                    t: 0.0,
                    last: Vec::new(),
                    history: VecDeque::with_capacity(HISTORY),
                });
                rows.last_mut().expect("just pushed")
            }
        };
        row.t = t;
        row.last.clear();
        for &f in fields {
            if let Some(v) = field(record, f).and_then(JsonScalar::as_f64) {
                row.last.push((f, v));
            }
        }
        if let Some(v) = field(record, headline).and_then(JsonScalar::as_f64) {
            if row.history.len() == HISTORY {
                row.history.pop_front();
            }
            row.history.push_back(v);
        }
    }

    fn observe_progress(&mut self, record: &FlatRecord) {
        let num = |k: &str| field(record, k).and_then(JsonScalar::as_f64);
        let jobs = self.jobs.get_or_insert_with(JobsRow::default);
        if let Some(v) = num("job") {
            // Out-of-order appends from racing workers: keep the max.
            jobs.done = jobs.done.max(v);
        }
        if let Some(v) = num("total") {
            jobs.total = v;
        }
        if let Some(l) = field(record, "label").and_then(JsonScalar::as_str) {
            jobs.label = l.to_string();
        }
        if let Some(v) = num("ev_per_s") {
            jobs.ev_per_s = v;
        }
        jobs.eta_secs = num("eta_secs");
    }

    /// Render one plain-text frame (no escape codes): what `--once`
    /// prints. Always non-empty — with no data yet it says so, so a CI
    /// smoke check has something to assert on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let t = self
            .flows
            .iter()
            .chain(&self.channels)
            .map(|r| r.t)
            .fold(0.0f64, f64::max);
        out.push_str(&format!(
            "rla_top — t={t:.1}s · {} flow(s), {} channel(s), {} record(s)\n",
            self.flows.len(),
            self.channels.len(),
            self.records,
        ));
        if self.flows.is_empty() && self.channels.is_empty() && self.jobs.is_none() {
            out.push_str("  (waiting for timeline/heartbeat data)\n");
            return out;
        }
        let name_w = self
            .flows
            .iter()
            .chain(&self.channels)
            .map(|r| r.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        if !self.flows.is_empty() {
            out.push_str("flows:\n");
            for r in &self.flows {
                out.push_str(&render_series(r, name_w));
            }
        }
        if !self.channels.is_empty() {
            out.push_str("channels:\n");
            for r in &self.channels {
                out.push_str(&render_series(r, name_w));
            }
        }
        if let Some(j) = &self.jobs {
            let eta = match j.eta_secs {
                Some(e) => format!(" · eta {e:.0}s"),
                None => String::new(),
            };
            out.push_str(&format!(
                "sweep: {} {:.0}/{:.0} · {:.2}M ev/s{} · last {}\n",
                progress_bar(j.done, j.total, 20),
                j.done,
                j.total,
                j.ev_per_s / 1e6,
                eta,
                j.label,
            ));
        }
        out
    }
}

/// One series line: name, kind, latest fields, sparkline.
fn render_series(r: &SeriesRow, name_w: usize) -> String {
    let mut line = format!("  {:<name_w$}  [{:<7}]", r.name, r.kind);
    for (k, v) in &r.last {
        let rendered = match *k {
            "rtt" => format!("{:.0}ms", v * 1e3),
            "qlen" => format!("{v:.0}"),
            _ => format!("{v:.2}"),
        };
        line.push_str(&format!(" {k} {rendered:>7}"));
    }
    let hist: Vec<f64> = r.history.iter().copied().collect();
    if !hist.is_empty() {
        line.push_str("  ");
        line.push_str(&sparkline(&hist));
    }
    line.push('\n');
    line
}

/// A fixed-width `[####----]` bar; safe for `total == 0`.
fn progress_bar(done: f64, total: f64, width: usize) -> String {
    let frac = if total > 0.0 {
        (done / total).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width + 2);
    s.push('[');
    for i in 0..width {
        s.push(if i < filled { '#' } else { '-' });
    }
    s.push(']');
    s
}

/// Double-buffered terminal painter: turns successive plain frames into
/// minimal ANSI output. The first frame clears the screen and homes the
/// cursor; every later frame repaints only the lines that differ from
/// the previous one (and blanks lines the new frame no longer has).
#[derive(Debug, Default)]
pub struct DiffScreen {
    prev: Vec<String>,
}

impl DiffScreen {
    /// A fresh painter (next paint clears the screen).
    pub fn new() -> Self {
        Self::default()
    }

    /// The ANSI byte string that brings the terminal from the previous
    /// frame to `frame`. Empty when nothing changed.
    pub fn paint(&mut self, frame: &str) -> String {
        let lines: Vec<String> = frame.lines().map(str::to_string).collect();
        let mut out = String::new();
        if self.prev.is_empty() {
            out.push_str("\x1b[2J\x1b[H\x1b[?25l"); // clear, home, hide cursor
            for (i, l) in lines.iter().enumerate() {
                out.push_str(&format!("\x1b[{};1H{l}", i + 1));
            }
        } else {
            for (i, l) in lines.iter().enumerate() {
                if self.prev.get(i) != Some(l) {
                    // Move, erase the stale line, write the new one.
                    out.push_str(&format!("\x1b[{};1H\x1b[2K{l}", i + 1));
                }
            }
            for i in lines.len()..self.prev.len() {
                out.push_str(&format!("\x1b[{};1H\x1b[2K", i + 1));
            }
        }
        self.prev = lines;
        out
    }

    /// The escape string restoring the cursor on exit.
    pub fn restore() -> &'static str {
        "\x1b[?25h\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tail::parse_flat_object;

    fn rec(line: &str) -> FlatRecord {
        parse_flat_object(line).expect("test record parses")
    }

    #[test]
    fn sparkline_scales_to_window() {
        assert_eq!(sparkline(&[0.0, 3.5, 7.0]), "▁▅█");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁", "flat series stays low");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN, 1.0]), "▁", "non-finite dropped");
    }

    #[test]
    fn empty_dashboard_renders_a_non_empty_frame() {
        let d = Dashboard::new();
        let frame = d.render();
        assert!(!frame.trim().is_empty());
        assert!(frame.contains("waiting"), "{frame}");
    }

    #[test]
    fn timeline_records_become_flow_and_channel_rows() {
        let mut d = Dashboard::new();
        d.observe(&rec(
            r#"{"t":10.5,"series":"rla.0","kind":"rla","cwnd":12.25,"awnd":11.0,"rtt":0.245}"#,
        ));
        d.observe(&rec(
            r#"{"t":10.5,"series":"chan.L21","kind":"channel","qlen":14,"red_avg":6.25}"#,
        ));
        d.observe(&rec(
            r#"{"t":11.0,"series":"rla.0","kind":"rla","cwnd":13.0,"awnd":11.5,"rtt":0.250}"#,
        ));
        let frame = d.render();
        assert!(frame.contains("t=11.0s"), "{frame}");
        assert!(frame.contains("flows:"), "{frame}");
        assert!(frame.contains("rla.0"), "{frame}");
        assert!(frame.contains("cwnd   13.00"), "{frame}");
        assert!(frame.contains("rtt   250ms"), "{frame}");
        assert!(frame.contains("channels:"), "{frame}");
        assert!(frame.contains("qlen      14"), "{frame}");
        assert!(
            frame.contains('▁') || frame.contains('█'),
            "sparkline: {frame}"
        );
        assert_eq!(d.records(), 3);
    }

    #[test]
    fn heartbeats_render_progress_and_eta() {
        let mut d = Dashboard::new();
        d.observe(&rec(
            r#"{"job":3,"total":20,"case":"L21","seed":1,"label":"L21 Red seed 1","events":100,"wall_secs":2.0,"ev_per_s":1950000.0,"eta_secs":42.5}"#,
        ));
        let frame = d.render();
        assert!(frame.contains("sweep: "), "{frame}");
        assert!(frame.contains("3/20"), "{frame}");
        assert!(frame.contains("1.95M ev/s"), "{frame}");
        assert!(
            frame.contains("eta 43s") || frame.contains("eta 42s"),
            "{frame}"
        );
        assert!(frame.contains("L21 Red seed 1"), "{frame}");
        // The final heartbeat has a null eta: line renders without one.
        d.observe(&rec(
            r#"{"job":20,"total":20,"label":"done","events":1,"wall_secs":1.0,"ev_per_s":1.0,"eta_secs":null}"#,
        ));
        assert!(!d.render().contains("eta"), "{}", d.render());
    }

    #[test]
    fn history_is_bounded() {
        let mut d = Dashboard::new();
        for i in 0..(HISTORY + 10) {
            d.observe(&rec(&format!(
                r#"{{"t":{i},"series":"rla.0","kind":"rla","cwnd":{i}}}"#
            )));
        }
        let spark_len = d.flows[0].history.len();
        assert_eq!(spark_len, HISTORY);
    }

    #[test]
    fn diff_screen_repaints_only_changed_lines() {
        let mut s = DiffScreen::new();
        let first = s.paint("a\nb\nc\n");
        assert!(first.starts_with("\x1b[2J"), "first frame clears");
        assert!(first.contains("\x1b[2;1Hb"), "absolute addressing");
        // Same frame: nothing to do.
        assert_eq!(s.paint("a\nb\nc\n"), "");
        // One line changed: exactly one repaint, with erase.
        let third = s.paint("a\nB\nc\n");
        assert_eq!(third, "\x1b[2;1H\x1b[2KB");
        // Shrinking frame blanks the orphaned line.
        let fourth = s.paint("a\nB\n");
        assert_eq!(fourth, "\x1b[3;1H\x1b[2K");
    }
}
