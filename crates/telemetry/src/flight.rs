//! Crash flight recorder: the last N trace events, kept per channel.
//!
//! A [`FlightRecorder`] is a [`Tracer`] that copies every event into a
//! fixed-depth ring — one ring per channel (enqueue/drop/tx-start) plus
//! one shared endpoint ring (arrive/deliver). Memory is bounded by
//! `depth × channels`, so it can stay installed for arbitrarily long
//! runs; when a run panics or a golden-digest gate trips, [`dump`]
//! renders the retained tail so the divergence is debuggable instead of
//! opaque.
//!
//! [`FlightDumpGuard`] automates the panic case: construct it after
//! installing the recorder, and its `Drop` impl writes the dump to
//! stderr if the thread is unwinding.
//!
//! [`dump`]: FlightRecorder::dump

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use netsim::id::ChannelId;
use netsim::packet::Packet;
use netsim::queue::DropReason;
use netsim::time::SimTime;
use netsim::trace::{TraceEvent, Tracer};

/// Default ring depth per channel.
pub const DEFAULT_FLIGHT_DEPTH: usize = 64;

/// What happened, for a retained event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Packet accepted into a channel buffer.
    Enqueue,
    /// Packet discarded at a channel.
    Drop(DropReason),
    /// Channel began serializing a packet.
    TxStart,
    /// Packet arrived at a node.
    Arrive,
    /// Packet handed to a transport endpoint.
    Deliver,
}

/// One owned record in a flight ring — a compact copy of a
/// [`TraceEvent`], with the packet reduced to its identifying fields.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// When the event happened.
    pub time: SimTime,
    /// What happened.
    pub kind: FlightKind,
    /// Uid of the packet involved.
    pub uid: u64,
    /// Segment kind tag (`data`, `ack`, `nack`, …).
    pub segment: &'static str,
    /// Index of the id the event happened at (channel, node or agent,
    /// depending on `kind`).
    pub at: u32,
    /// Buffer occupancy, for the channel-side kinds.
    pub qlen: Option<usize>,
}

impl FlightEvent {
    fn render(&self, out: &mut String) {
        let kind = match self.kind {
            FlightKind::Enqueue => "enqueue".to_string(),
            FlightKind::Drop(reason) => format!("DROP({reason:?})"),
            FlightKind::TxStart => "tx".to_string(),
            FlightKind::Arrive => "arrive".to_string(),
            FlightKind::Deliver => "deliver".to_string(),
        };
        let _ = write!(
            out,
            "{} {:<18} uid={} {}",
            self.time, kind, self.uid, self.segment
        );
        if let Some(q) = self.qlen {
            let _ = write!(out, " q={q}");
        }
        out.push('\n');
    }
}

/// Fixed-depth ring of [`FlightEvent`]s.
#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<FlightEvent>,
}

impl Ring {
    fn push(&mut self, depth: usize, ev: FlightEvent) {
        if self.events.len() == depth {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    /// Interleave another ring's events chronologically (this ring wins
    /// ties, so merging in domain order preserves the canonical order),
    /// keeping the newest `depth`.
    fn merge(&mut self, other: &Ring, depth: usize) {
        if other.events.is_empty() {
            self.events.truncate(depth);
            return;
        }
        let mut merged: VecDeque<FlightEvent> =
            VecDeque::with_capacity(self.events.len() + other.events.len());
        let mut mine = std::mem::take(&mut self.events).into_iter().peekable();
        let mut theirs = other.events.iter().peekable();
        loop {
            match (mine.peek(), theirs.peek()) {
                (None, None) => break,
                (Some(_), None) => merged.push_back(mine.next().expect("peeked")),
                (None, Some(_)) => merged.push_back(theirs.next().expect("peeked").clone()),
                (Some(a), Some(b)) => {
                    if a.time <= b.time {
                        merged.push_back(mine.next().expect("peeked"));
                    } else {
                        merged.push_back(theirs.next().expect("peeked").clone());
                    }
                }
            }
        }
        while merged.len() > depth {
            merged.pop_front();
        }
        self.events = merged;
    }
}

/// A [`Tracer`] retaining the last `depth` events per channel plus the
/// last `depth` endpoint events. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    depth: usize,
    /// Indexed by channel id; grown on demand.
    channels: Vec<Ring>,
    /// Arrive/Deliver events, all nodes and agents together.
    endpoints: Ring,
    /// Total events seen (not just retained).
    seen: u64,
}

impl FlightRecorder {
    /// A recorder keeping `depth` events per ring (`depth == 0` is
    /// coerced to 1 so a dump is never structurally empty).
    pub fn new(depth: usize) -> Self {
        FlightRecorder {
            depth: depth.max(1),
            channels: Vec::new(),
            endpoints: Ring::default(),
            seen: 0,
        }
    }

    /// The configured per-ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total events observed over the recorder's lifetime (retained or
    /// not).
    pub fn events_seen(&self) -> u64 {
        self.seen
    }

    fn channel_ring(&mut self, ch: ChannelId) -> &mut Ring {
        let idx = ch.index();
        if idx >= self.channels.len() {
            self.channels.resize_with(idx + 1, Ring::default);
        }
        &mut self.channels[idx]
    }

    fn record_channel(
        &mut self,
        ch: ChannelId,
        time: SimTime,
        kind: FlightKind,
        packet: &Packet,
        qlen: usize,
    ) {
        let depth = self.depth;
        let ev = FlightEvent {
            time,
            kind,
            uid: packet.uid,
            segment: packet.segment.kind_str(),
            at: ch.index() as u32,
            qlen: Some(qlen),
        };
        self.channel_ring(ch).push(depth, ev);
    }

    /// Fold another recorder's retained events into this one — the
    /// flight-recorder half of the per-domain snapshot merge. Channel
    /// rings are indexed by global channel id and a channel transmits in
    /// exactly one domain, so those rings never collide; the shared
    /// endpoint ring is interleaved chronologically (this recorder wins
    /// ties — merge in domain order to keep the canonical order),
    /// retaining the newest `depth` events. The seen-event total adds.
    pub fn merge(&mut self, other: &FlightRecorder) {
        self.seen += other.seen;
        let depth = self.depth;
        if other.channels.len() > self.channels.len() {
            self.channels
                .resize_with(other.channels.len(), Ring::default);
        }
        for (mine, theirs) in self.channels.iter_mut().zip(other.channels.iter()) {
            mine.merge(theirs, depth);
        }
        self.endpoints.merge(&other.endpoints, depth);
    }

    /// Render every non-empty ring, channels first (in id order), then
    /// the endpoint ring — each chronologically oldest-to-newest.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} events seen, depth {} per ring",
            self.seen, self.depth
        );
        for (idx, ring) in self.channels.iter().enumerate() {
            if ring.events.is_empty() {
                continue;
            }
            let _ = writeln!(out, "--- channel {idx} (last {}) ---", ring.events.len());
            for ev in &ring.events {
                ev.render(&mut out);
            }
        }
        if !self.endpoints.events.is_empty() {
            let _ = writeln!(
                out,
                "--- endpoints (last {}) ---",
                self.endpoints.events.len()
            );
            for ev in &self.endpoints.events {
                ev.render(&mut out);
            }
        }
        out
    }
}

impl Tracer for FlightRecorder {
    fn trace(&mut self, now: SimTime, event: &TraceEvent<'_>) {
        self.seen += 1;
        match event {
            TraceEvent::Enqueue {
                channel,
                packet,
                qlen,
            } => self.record_channel(*channel, now, FlightKind::Enqueue, packet, *qlen),
            TraceEvent::Drop {
                channel,
                packet,
                reason,
                qlen,
            } => self.record_channel(*channel, now, FlightKind::Drop(*reason), packet, *qlen),
            TraceEvent::TxStart {
                channel,
                packet,
                qlen,
            } => self.record_channel(*channel, now, FlightKind::TxStart, packet, *qlen),
            TraceEvent::Arrive { node, packet } => {
                let depth = self.depth;
                self.endpoints.push(
                    depth,
                    FlightEvent {
                        time: now,
                        kind: FlightKind::Arrive,
                        uid: packet.uid,
                        segment: packet.segment.kind_str(),
                        at: node.index() as u32,
                        qlen: None,
                    },
                );
            }
            TraceEvent::Deliver { agent, packet } => {
                let depth = self.depth;
                self.endpoints.push(
                    depth,
                    FlightEvent {
                        time: now,
                        kind: FlightKind::Deliver,
                        uid: packet.uid,
                        segment: packet.segment.kind_str(),
                        at: agent.index() as u32,
                        qlen: None,
                    },
                );
            }
        }
    }
}

/// Writes a [`FlightRecorder`] dump to stderr if the thread unwinds
/// while the guard is live. Construct it right after installing the
/// recorder as the engine tracer; on a clean exit it does nothing.
pub struct FlightDumpGuard {
    label: String,
    recorder: Rc<RefCell<FlightRecorder>>,
}

impl FlightDumpGuard {
    /// Guard `recorder`, tagging any dump with `label` (scenario name,
    /// seed — whatever identifies the run).
    pub fn new(label: impl Into<String>, recorder: Rc<RefCell<FlightRecorder>>) -> Self {
        FlightDumpGuard {
            label: label.into(),
            recorder,
        }
    }
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // try_borrow: the panic may have interrupted the recorder
            // mid-trace; a second panic here would abort the process.
            match self.recorder.try_borrow() {
                Ok(rec) => eprintln!(
                    "\n=== flight recorder dump [{}] ===\n{}",
                    self.label,
                    rec.dump()
                ),
                Err(_) => eprintln!(
                    "\n=== flight recorder [{}] busy during panic; no dump ===",
                    self.label
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::id::{AgentId, NodeId};
    use netsim::packet::Dest;
    use netsim::wire::Segment;

    fn pkt(uid: u64) -> Packet {
        Packet {
            uid,
            src: AgentId(0),
            dest: Dest::Agent(AgentId(1)),
            size_bytes: 1000,
            segment: Segment::Raw,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn rings_are_bounded_per_channel() {
        let mut rec = FlightRecorder::new(3);
        for uid in 0..10 {
            let p = pkt(uid);
            rec.trace(
                SimTime::from_secs(uid),
                &TraceEvent::Enqueue {
                    channel: ChannelId(0),
                    packet: &p,
                    qlen: uid as usize,
                },
            );
        }
        let p = pkt(99);
        rec.trace(
            SimTime::from_secs(99),
            &TraceEvent::Enqueue {
                channel: ChannelId(2),
                packet: &p,
                qlen: 1,
            },
        );
        assert_eq!(rec.events_seen(), 11);
        let dump = rec.dump();
        // Channel 0 keeps only the newest three uids.
        assert!(!dump.contains("uid=6"), "{dump}");
        assert!(dump.contains("uid=7"), "{dump}");
        assert!(dump.contains("uid=9"), "{dump}");
        assert!(dump.contains("--- channel 0 (last 3) ---"), "{dump}");
        assert!(dump.contains("--- channel 2 (last 1) ---"), "{dump}");
        // Channel 1 saw nothing and is omitted entirely.
        assert!(!dump.contains("channel 1"), "{dump}");
    }

    #[test]
    fn endpoint_events_share_one_ring() {
        let mut rec = FlightRecorder::new(2);
        let p = pkt(5);
        rec.trace(
            SimTime::from_secs(1),
            &TraceEvent::Arrive {
                node: NodeId(3),
                packet: &p,
            },
        );
        rec.trace(
            SimTime::from_secs(2),
            &TraceEvent::Deliver {
                agent: AgentId(4),
                packet: &p,
            },
        );
        let dump = rec.dump();
        assert!(dump.contains("--- endpoints (last 2) ---"), "{dump}");
        assert!(dump.contains("arrive"), "{dump}");
        assert!(dump.contains("deliver"), "{dump}");
    }

    #[test]
    fn drop_events_keep_their_reason() {
        let mut rec = FlightRecorder::new(4);
        let p = pkt(7);
        rec.trace(
            SimTime::from_secs(1),
            &TraceEvent::Drop {
                channel: ChannelId(0),
                packet: &p,
                reason: DropReason::EarlyDrop,
                qlen: 9,
            },
        );
        let dump = rec.dump();
        assert!(dump.contains("DROP(EarlyDrop)"), "{dump}");
        assert!(dump.contains("q=9"), "{dump}");
    }

    #[test]
    fn zero_depth_is_coerced() {
        assert_eq!(FlightRecorder::new(0).depth(), 1);
    }

    #[test]
    fn merge_interleaves_endpoints_and_keeps_channel_rings_apart() {
        // Domain 0 saw channel 0 and some endpoint events; domain 1 saw
        // channel 2 and its own endpoint events.
        let mut d0 = FlightRecorder::new(4);
        let mut d1 = FlightRecorder::new(4);
        for (rec, ch, t) in [(&mut d0, 0u32, 1u64), (&mut d1, 2, 2)] {
            let p = pkt(t);
            rec.trace(
                SimTime::from_secs(t),
                &TraceEvent::Enqueue {
                    channel: ChannelId(ch),
                    packet: &p,
                    qlen: 1,
                },
            );
        }
        let p = pkt(10);
        d1.trace(
            SimTime::from_secs(1),
            &TraceEvent::Arrive {
                node: NodeId(9),
                packet: &p,
            },
        );
        let p = pkt(11);
        d0.trace(
            SimTime::from_secs(3),
            &TraceEvent::Arrive {
                node: NodeId(1),
                packet: &p,
            },
        );
        d0.merge(&d1);
        assert_eq!(d0.events_seen(), 4);
        let dump = d0.dump();
        assert!(dump.contains("--- channel 0 (last 1) ---"), "{dump}");
        assert!(dump.contains("--- channel 2 (last 1) ---"), "{dump}");
        // Endpoint events interleave chronologically: d1's t=1 arrival
        // precedes d0's t=3 arrival.
        let uid10 = dump.find("uid=10").expect("d1 endpoint retained");
        let uid11 = dump.find("uid=11").expect("d0 endpoint retained");
        assert!(uid10 < uid11, "endpoint merge lost chronological order");
    }

    #[test]
    fn merge_bounds_the_endpoint_ring_at_depth() {
        let mut a = FlightRecorder::new(3);
        let mut b = FlightRecorder::new(3);
        for t in 0..3 {
            let p = pkt(t);
            a.trace(
                SimTime::from_secs(2 * t),
                &TraceEvent::Arrive {
                    node: NodeId(0),
                    packet: &p,
                },
            );
            let p = pkt(100 + t);
            b.trace(
                SimTime::from_secs(2 * t + 1),
                &TraceEvent::Arrive {
                    node: NodeId(1),
                    packet: &p,
                },
            );
        }
        a.merge(&b);
        let dump = a.dump();
        assert!(dump.contains("--- endpoints (last 3) ---"), "{dump}");
        // Only the newest three of the six interleaved events survive.
        assert!(!dump.contains("uid=0\n"), "{dump}");
        assert!(dump.contains("uid=102"), "{dump}");
    }
}
