//! Protocol-level benchmarks: how much wall-clock time one simulated
//! second of each transport costs (TCP, RLA, and the rate baselines).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use baselines::{Ltrc, LtrcConfig, RateConfig, RateReceiver, RateSender};
use netsim::prelude::*;
use rla::{McastReceiver, RlaConfig, RlaSender};
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};

/// One TCP over a 100 pkt/s bottleneck for `secs` simulated seconds.
fn tcp_flow(secs: u64) -> u64 {
    let mut e = Engine::new(1);
    let a = e.add_node("a");
    let b = e.add_node("b");
    e.add_link(
        a,
        b,
        800_000,
        SimDuration::from_millis(50),
        &QueueConfig::paper_droptail(),
    );
    let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
    let tx = e.add_agent(a, Box::new(TcpSender::new(rx, TcpConfig::default())));
    e.compute_routes();
    e.start_agent_at(tx, SimTime::ZERO);
    e.run_until(SimTime::from_secs(secs));
    e.agent_as::<TcpReceiver>(rx).expect("rx").stats.delivered
}

/// A 9-receiver RLA session over congested branches.
fn rla_session(secs: u64) -> u64 {
    let mut e = Engine::new(1);
    let q = QueueConfig::paper_droptail();
    let root = e.add_node("S");
    let group = e.new_group();
    for i in 0..9 {
        let leaf = e.add_node(format!("R{i}"));
        e.add_link(root, leaf, 1_600_000, SimDuration::from_millis(40), &q);
        let rx = e.add_agent(leaf, Box::new(McastReceiver::new(40)));
        e.set_send_overhead(rx, SimDuration::from_millis(2));
        e.join_group(group, rx);
    }
    let tx = e.add_agent(root, Box::new(RlaSender::new(group, RlaConfig::default())));
    e.compute_routes();
    e.build_group_tree(group, root);
    e.start_agent_at(tx, SimTime::ZERO);
    e.run_until(SimTime::from_secs(secs));
    e.agent_as::<RlaSender>(tx).expect("tx").stats.delivered
}

/// An LTRC rate-controlled session over the same star.
fn ltrc_session(secs: u64) -> u64 {
    let mut e = Engine::new(1);
    let q = QueueConfig::paper_droptail();
    let root = e.add_node("S");
    let group = e.new_group();
    let mut rx0 = None;
    for i in 0..9 {
        let leaf = e.add_node(format!("R{i}"));
        e.add_link(root, leaf, 1_600_000, SimDuration::from_millis(40), &q);
        let rx = e.add_agent(
            leaf,
            Box::new(RateReceiver::new(SimDuration::from_millis(500), 0.25)),
        );
        e.join_group(group, rx);
        rx0.get_or_insert(rx);
    }
    let tx = e.add_agent(
        root,
        Box::new(RateSender::new(
            group,
            RateConfig::default(),
            Ltrc::new(LtrcConfig::default()),
        )),
    );
    e.compute_routes();
    e.build_group_tree(group, root);
    e.start_agent_at(tx, SimTime::ZERO);
    e.run_until(SimTime::from_secs(secs));
    e.agent_as::<RateReceiver>(rx0.expect("rx"))
        .expect("rx")
        .stats
        .received
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    g.sample_size(10);
    g.bench_function("tcp_30_sim_seconds", |b| b.iter(|| black_box(tcp_flow(30))));
    g.bench_function("rla_9rcvr_30_sim_seconds", |b| {
        b.iter(|| black_box(rla_session(30)))
    });
    g.bench_function("ltrc_9rcvr_30_sim_seconds", |b| {
        b.iter(|| black_box(ltrc_session(30)))
    });
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
