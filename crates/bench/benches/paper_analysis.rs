//! Benchmarks of the analytic artifacts: figure 4's drift field, figure
//! 5's particle density, the equation (1)/(3) Monte-Carlo processes, and
//! the theorem bound checks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use analysis::{
    drift_field, pa_window, proposition_bounds, rla_window_independent, simulate_particle,
    simulate_rla_window, simulate_tcp_window, FairnessBounds,
};

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_analysis");

    g.bench_function("fig4_drift_field", |b| {
        b.iter(|| black_box(drift_field(3, 10.0, 16.0, 1.0)))
    });

    g.bench_function("fig5_particle_100k_steps", |b| {
        b.iter(|| black_box(simulate_particle(27, 40.0, 100_000, 5, 60)))
    });

    g.bench_function("eq1_monte_carlo_1m_steps", |b| {
        b.iter(|| black_box(simulate_tcp_window(0.01, 1_000_000, 10_000, 42)))
    });

    g.bench_function("eq3_monte_carlo_1m_steps", |b| {
        b.iter(|| {
            black_box(simulate_rla_window(
                &[0.02, 0.01],
                false,
                1_000_000,
                10_000,
                7,
            ))
        })
    });

    g.bench_function("eq3_closed_forms_27_receivers", |b| {
        let p = vec![0.02; 27];
        b.iter(|| black_box(rla_window_independent(&p)))
    });

    g.bench_function("theorem_bound_checks", |b| {
        b.iter(|| {
            let mut ok = true;
            for n in 1..=27 {
                let t1 = FairnessBounds::theorem1_red(n);
                let t2 = FairnessBounds::theorem2_droptail(n);
                ok &= t1.contains(100.0, 90.0) && t2.contains(100.0, 90.0);
                ok &= proposition_bounds(0.02, n).lower <= pa_window(0.02);
            }
            black_box(ok)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
