//! One benchmark per simulation table/figure of the paper: scaled-down
//! (30 simulated seconds) versions of each regenerator, so `cargo bench`
//! exercises every experiment path and tracks its cost. The full-length
//! tables come from the `experiments` binaries (`cargo run --release -p
//! experiments --bin fig7`, etc.).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use experiments::{CongestionCase, GatewayKind, TreeScenario};
use netsim::time::SimDuration;

fn quick(case: CongestionCase, gateway: GatewayKind, sessions: usize) -> f64 {
    let mut s = TreeScenario::paper(case, gateway).with_duration(SimDuration::from_secs(30));
    s.warmup = SimDuration::from_secs(10);
    s.rla_sessions = sessions;
    let r = s.run();
    r.rla[0].throughput_pps
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_tables");
    g.sample_size(10);

    // Figure 7 (drop-tail): one representative column per correlation
    // regime — fully correlated, independent, unbalanced.
    g.bench_function("fig7_case1_droptail", |b| {
        b.iter(|| {
            black_box(quick(
                CongestionCase::Case1RootLink,
                GatewayKind::DropTail,
                1,
            ))
        })
    });
    g.bench_function("fig7_case3_droptail", |b| {
        b.iter(|| {
            black_box(quick(
                CongestionCase::Case3AllLeaves,
                GatewayKind::DropTail,
                1,
            ))
        })
    });
    g.bench_function("fig7_case5_droptail", |b| {
        b.iter(|| {
            black_box(quick(
                CongestionCase::Case5OneLevel2,
                GatewayKind::DropTail,
                1,
            ))
        })
    });

    // Figure 8 shares figure 7's runs; bench the per-branch aggregation
    // on top of a case-2 run.
    g.bench_function("fig8_signal_stats_case2", |b| {
        b.iter(|| {
            let mut s = TreeScenario::paper(CongestionCase::Case2AllLevel3, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(30));
            s.warmup = SimDuration::from_secs(10);
            let r = s.run();
            black_box(experiments::tables::render_signal_table(
                std::slice::from_ref(&r),
            ))
        })
    });

    // Figure 9 (RED).
    g.bench_function("fig9_case1_red", |b| {
        b.iter(|| black_box(quick(CongestionCase::Case1RootLink, GatewayKind::Red, 1)))
    });

    // Figure 10 (unequal RTTs, generalized RLA).
    g.bench_function("fig10_level3", |b| {
        b.iter(|| {
            black_box(quick(
                CongestionCase::Fig10AllLevel3,
                GatewayKind::DropTail,
                1,
            ))
        })
    });

    // §5.2 (two overlapping sessions).
    g.bench_function("sec52_two_sessions", |b| {
        b.iter(|| {
            black_box(quick(
                CongestionCase::Case3AllLeaves,
                GatewayKind::DropTail,
                2,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
