//! Microbenchmarks of the simulation substrate: the event calendar (timer
//! wheel vs the reference binary heap), the two queue disciplines, and raw
//! end-to-end packet throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use netsim::agent::Sink;
use netsim::arena::PacketArena;
use netsim::event::{Calendar, EventKind, HeapCalendar};
use netsim::id::AgentId;
use netsim::packet::Dest;
use netsim::prelude::*;
use netsim::queue::{DropTail, QueueDiscipline, Red, RedConfig};
use netsim::wire::Segment;

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("calendar");
    g.throughput(Throughput::Elements(10_000));
    // Same workload on the production wheel and the retired heap, so the
    // tentpole speedup stays visible in one report.
    g.bench_function("wheel_push_pop_10k", |b| {
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u64 {
                // Pseudo-random firing times without Instant/rand overhead.
                let t = (i * 2654435761) % 1_000_000;
                cal.schedule(
                    SimTime::from_nanos(t),
                    EventKind::Timer {
                        agent: AgentId(0),
                        token: i,
                    },
                );
            }
            let mut last = SimTime::ZERO;
            while let Some(e) = cal.pop() {
                assert!(e.at >= last);
                last = e.at;
            }
            black_box(last)
        })
    });
    g.bench_function("heap_push_pop_10k", |b| {
        b.iter(|| {
            let mut cal = HeapCalendar::new();
            for i in 0..10_000u64 {
                let t = (i * 2654435761) % 1_000_000;
                cal.schedule(
                    SimTime::from_nanos(t),
                    EventKind::Timer {
                        agent: AgentId(0),
                        token: i,
                    },
                );
            }
            let mut last = SimTime::ZERO;
            while let Some(e) = cal.pop() {
                assert!(e.at >= last);
                last = e.at;
            }
            black_box(last)
        })
    });
    g.finish();
}

fn packet(uid: u64) -> Packet {
    Packet {
        uid,
        src: AgentId(0),
        dest: Dest::Agent(AgentId(1)),
        size_bytes: 1000,
        segment: Segment::Raw,
        sent_at: SimTime::ZERO,
    }
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("droptail_enq_deq_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut arena = PacketArena::new();
            let mut q = DropTail::new(64);
            for i in 0..1000u64 {
                match q.enqueue(arena.insert(packet(i)), SimTime::from_nanos(i), &mut rng) {
                    netsim::queue::Enqueue::Dropped(h, _) => {
                        arena.remove(h);
                    }
                    netsim::queue::Enqueue::Accepted => {}
                }
                if i % 2 == 0 {
                    if let Some(h) = q.dequeue(SimTime::from_nanos(i)) {
                        black_box(arena.remove(h));
                    }
                }
            }
        })
    });
    g.bench_function("red_enq_deq_1k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut arena = PacketArena::new();
            let mut q = Red::new(RedConfig::paper());
            for i in 0..1000u64 {
                match q.enqueue(
                    arena.insert(packet(i)),
                    SimTime::from_nanos(i * 1000),
                    &mut rng,
                ) {
                    netsim::queue::Enqueue::Dropped(h, _) => {
                        arena.remove(h);
                    }
                    netsim::queue::Enqueue::Accepted => {}
                }
                if i % 2 == 0 {
                    if let Some(h) = q.dequeue(SimTime::from_nanos(i * 1000)) {
                        black_box(arena.remove(h));
                    }
                }
            }
        })
    });
    g.finish();
}

/// Raw engine throughput: saturated 2-hop forwarding path, measured in
/// simulated packets per wall-clock second.
fn bench_forwarding(c: &mut Criterion) {
    struct Blaster {
        dest: Dest,
        count: u32,
    }
    impl netsim::agent::Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.dest, 1000, Segment::Raw);
            }
        }
        fn on_packet(&mut self, _p: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("two_hop_forward_10k_packets", |b| {
        b.iter(|| {
            let mut e = Engine::new(1);
            let a = e.add_node("a");
            let m = e.add_node("m");
            let z = e.add_node("z");
            let q = QueueConfig::DropTail { limit: 20_000 };
            e.add_link(a, m, 1_000_000_000, SimDuration::from_millis(1), &q);
            e.add_link(m, z, 1_000_000_000, SimDuration::from_millis(1), &q);
            let sink = e.add_agent(z, Box::new(Sink::default()));
            let tx = e.add_agent(
                a,
                Box::new(Blaster {
                    dest: Dest::Agent(sink),
                    count: 10_000,
                }),
            );
            e.compute_routes();
            e.start_agent_at(tx, SimTime::ZERO);
            e.run_until(SimTime::from_secs(10));
            let s: &Sink = e.agent_as(sink).expect("sink");
            assert_eq!(s.received, 10_000);
            black_box(s.received)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_calendar, bench_queues, bench_forwarding);
criterion_main!(benches);
