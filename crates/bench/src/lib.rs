//! Criterion benchmark suite; see the `benches/` directory.
