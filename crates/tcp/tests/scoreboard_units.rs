//! Scoreboard edge cases the property suite doesn't pin down:
//! duplicate/overlapping SACK blocks, receiver reneging, and holes at the
//! left edge of the window.

use netsim::time::SimTime;
use netsim::wire::SackBlock;
use tcp_sack::Scoreboard;

fn sb_with_sent(n: u64) -> Scoreboard {
    let mut sb = Scoreboard::new();
    for seq in 0..n {
        sb.on_send(seq, SimTime::from_secs(seq));
    }
    sb
}

fn block(start: u64, end: u64) -> SackBlock {
    SackBlock { start, end }
}

#[test]
fn duplicate_sack_blocks_are_idempotent() {
    // RFC 2018 receivers repeat the most recent block first; the same
    // range arriving twice in one ack must count once.
    let mut a = sb_with_sent(8);
    let dup = a.on_ack(0, &[block(1, 5), block(1, 5), block(2, 4)], 3);
    let mut b = sb_with_sent(8);
    let single = b.on_ack(0, &[block(1, 5)], 3);
    assert_eq!(dup, single, "duplicate blocks changed the loss count");
    assert_eq!(a.in_flight(), b.in_flight());
    assert_eq!(a.lost_unretransmitted(), b.lost_unretransmitted());
}

#[test]
fn repeated_identical_acks_declare_loss_once() {
    let mut sb = sb_with_sent(6);
    assert_eq!(sb.on_ack(0, &[block(1, 5)], 3), 1);
    // The network duplicates the ack: no *new* losses may be declared.
    assert_eq!(sb.on_ack(0, &[block(1, 5)], 3), 0);
    assert_eq!(sb.on_ack(0, &[block(1, 5)], 3), 0);
    assert_eq!(sb.lost_unretransmitted(), vec![0]);
}

#[test]
fn overlapping_blocks_union_correctly() {
    let mut sb = sb_with_sent(10);
    // Three overlapping blocks covering 1..8 with a hole at 0.
    let lost = sb.on_ack(0, &[block(1, 4), block(3, 6), block(5, 8)], 3);
    assert_eq!(lost, 1);
    for seq in 1..8 {
        assert!(sb.is_received(seq), "seq {seq} must be sacked");
    }
    assert!(!sb.is_received(8));
    assert_eq!(sb.in_flight(), 2); // 8 and 9
}

#[test]
fn reneging_receiver_does_not_unsack() {
    // RFC 2018 allows a receiver to discard sacked-but-not-delivered data
    // ("reneging"). The conservative sender behaviour the paper's SACK
    // model follows: once sacked, a packet stays sacked — only the
    // retransmission timeout recovers from an actual renege.
    let mut sb = sb_with_sent(6);
    // SACKs for 2..5 also declare the left-edge holes 0 and 1 lost
    // (three sacked packets sit above each).
    assert_eq!(sb.on_ack(0, &[block(2, 5)], 3), 2);
    assert!(sb.is_received(3));
    // Later ack carries *no* SACK info for 2..5 (the renege): state must
    // not regress.
    sb.on_ack(1, &[], 3);
    assert!(sb.is_received(3), "sacked state must survive a renege");
    assert_eq!(sb.in_flight(), 1); // only 5 (1 is lost, 2..5 sacked)
                                   // The timeout path still covers the reneged data: every unsacked
                                   // packet (the lost hole at 1 and the tail at 5) is marked, and the
                                   // sacked range keeps being trusted as delivered.
    let marked = sb.mark_all_lost();
    assert_eq!(marked, 2);
    assert_eq!(sb.next_lost(), Some(1));
}

#[test]
fn left_edge_hole_declared_lost_with_enough_evidence() {
    // The hole sits exactly at the cumulative ack (the left edge of the
    // window) — the common fast-retransmit case.
    let mut sb = sb_with_sent(5);
    sb.on_ack(1, &[block(2, 5)], 3);
    assert!(sb.is_lost(1), "left-edge hole with 3 SACKs above");
    let (seq, _, evidence, retransmitted) = sb.head_hole().expect("hole exists");
    assert_eq!(seq, 1);
    assert!(evidence);
    assert!(!retransmitted);
}

#[test]
fn left_edge_hole_without_evidence_is_not_lost() {
    let mut sb = sb_with_sent(4);
    // Only two SACKs above the hole: below the dup threshold.
    sb.on_ack(1, &[block(2, 4)], 3);
    assert!(!sb.is_lost(1));
    assert_eq!(sb.lost_unretransmitted(), Vec::<u64>::new());
    // head_hole still reports the gap so the early-retransmit timer can
    // cover it.
    let (seq, _, evidence, _) = sb.head_hole().expect("hole exists");
    assert_eq!(seq, 1);
    assert!(evidence);
}

#[test]
fn left_edge_advances_past_filled_hole() {
    let mut sb = sb_with_sent(6);
    sb.on_ack(1, &[block(2, 6)], 3);
    assert_eq!(sb.next_lost(), Some(1));
    sb.on_send(1, SimTime::from_secs(50)); // retransmit the hole
                                           // The retransmission arrives: cumulative ack jumps the whole window.
    sb.on_ack(6, &[], 3);
    assert!(sb.is_empty());
    assert_eq!(sb.cum_ack(), 6);
    assert_eq!(sb.head_hole(), None);
}

#[test]
fn mark_head_lost_targets_left_edge_only() {
    let mut sb = sb_with_sent(5);
    sb.on_ack(0, &[block(1, 2)], 3); // hole at 0, then 2..5 unsacked
    assert_eq!(sb.mark_head_lost(), Some(0));
    assert!(sb.is_lost(0));
    assert!(!sb.is_lost(2), "only the head may be marked");
    assert_eq!(sb.lost_unretransmitted(), vec![0]);
}

#[test]
fn sack_block_clipped_at_cum_ack() {
    let mut sb = sb_with_sent(6);
    sb.on_ack(3, &[], 3);
    // A block straddling the cumulative ack: only the part above counts.
    let lost = sb.on_ack(3, &[block(1, 5)], 3);
    assert_eq!(lost, 0, "3 and 4 sacked leaves no hole below them");
    assert!(sb.is_received(2), "below cum ack");
    assert!(sb.is_received(4), "sacked part of the block");
    assert!(!sb.is_received(5), "still in flight");
    assert_eq!(sb.cum_ack(), 3);
    assert_eq!(sb.in_flight(), 1);
}
