//! Property-based tests of the SACK scoreboard — the data structure both
//! TCP and the RLA build their loss detection on.

use proptest::prelude::*;

use netsim::time::SimTime;
use netsim::wire::SackBlock;
use tcp_sack::Scoreboard;

/// A random but *coherent* receiver: it holds some subset of the sent
/// packets; the cumulative ack is the first missing one, the SACK blocks
/// describe the rest.
fn receiver_view(sent: u64, held: &[bool]) -> (u64, Vec<SackBlock>) {
    let mut cum = 0u64;
    while (cum as usize) < held.len() && held[cum as usize] {
        cum += 1;
    }
    let mut blocks = Vec::new();
    let mut i = cum as usize;
    while i < held.len().min(sent as usize) {
        if held[i] {
            let start = i as u64;
            while i < held.len() && held[i] {
                i += 1;
            }
            blocks.push(SackBlock {
                start,
                end: i as u64,
            });
        } else {
            i += 1;
        }
    }
    (cum, blocks)
}

proptest! {
    /// The scoreboard never "receives" a packet the receiver doesn't hold,
    /// and everything below the cumulative ack is received.
    #[test]
    fn reception_tracking_is_exact(
        held in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let sent = held.len() as u64;
        let mut sb = Scoreboard::new();
        for seq in 0..sent {
            sb.on_send(seq, SimTime::from_nanos(seq));
        }
        let (cum, blocks) = receiver_view(sent, &held);
        sb.on_ack(cum, &blocks, 3);
        for seq in 0..sent {
            prop_assert_eq!(
                sb.is_received(seq),
                held[seq as usize],
                "seq {} tracked wrong", seq
            );
        }
        prop_assert_eq!(sb.cum_ack(), cum);
    }

    /// A packet declared lost always has at least `thresh` held packets
    /// above it, and is itself missing at the receiver.
    #[test]
    fn loss_declarations_are_justified(
        held in proptest::collection::vec(any::<bool>(), 4..64),
        thresh in 1u64..5,
    ) {
        let sent = held.len() as u64;
        let mut sb = Scoreboard::new();
        for seq in 0..sent {
            sb.on_send(seq, SimTime::from_nanos(seq));
        }
        let (cum, blocks) = receiver_view(sent, &held);
        sb.on_ack(cum, &blocks, thresh);
        for seq in cum..sent {
            if sb.is_lost(seq) {
                prop_assert!(!held[seq as usize], "lost but held");
                let above = held[(seq as usize + 1)..]
                    .iter()
                    .filter(|&&h| h)
                    .count() as u64;
                prop_assert!(above >= thresh, "lost with only {} sacked above", above);
            }
        }
    }

    /// Monotonicity: acks can arrive in any order; the cumulative ack
    /// never regresses and counts never go negative.
    #[test]
    fn out_of_order_acks_never_regress(
        acks in proptest::collection::vec((0u64..40, any::<bool>()), 1..40),
    ) {
        let mut sb = Scoreboard::new();
        for seq in 0..40u64 {
            sb.on_send(seq, SimTime::from_nanos(seq));
        }
        let mut best = 0u64;
        for &(cum, with_sack) in &acks {
            let blocks = if with_sack && cum + 3 < 40 {
                vec![SackBlock { start: cum + 1, end: cum + 3 }]
            } else {
                vec![]
            };
            sb.on_ack(cum, &blocks, 3);
            best = best.max(cum);
            prop_assert_eq!(sb.cum_ack(), best);
            prop_assert!(sb.in_flight() <= sb.outstanding());
        }
    }

    /// in_flight + sacked + lost partition the outstanding set.
    #[test]
    fn flight_accounting_partitions(
        held in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let sent = held.len() as u64;
        let mut sb = Scoreboard::new();
        for seq in 0..sent {
            sb.on_send(seq, SimTime::from_nanos(seq));
        }
        let (cum, blocks) = receiver_view(sent, &held);
        sb.on_ack(cum, &blocks, 3);
        let outstanding = sb.outstanding();
        let in_flight = sb.in_flight();
        let lost = sb.lost_unretransmitted().len() as u64;
        let sacked = (cum..sent).filter(|&s| sb.is_received(s)).count() as u64;
        prop_assert_eq!(outstanding, in_flight + lost + sacked);
    }

    /// Retransmitting every declared loss empties the lost set and puts
    /// the packets back in flight.
    #[test]
    fn retransmission_restores_flight(
        held in proptest::collection::vec(any::<bool>(), 4..64),
    ) {
        let sent = held.len() as u64;
        let mut sb = Scoreboard::new();
        for seq in 0..sent {
            sb.on_send(seq, SimTime::from_nanos(seq));
        }
        let (cum, blocks) = receiver_view(sent, &held);
        sb.on_ack(cum, &blocks, 3);
        let before_flight = sb.in_flight();
        let lost = sb.lost_unretransmitted();
        for &seq in &lost {
            sb.on_send(seq, SimTime::from_nanos(1_000_000 + seq));
        }
        prop_assert!(sb.lost_unretransmitted().is_empty());
        prop_assert_eq!(sb.in_flight(), before_flight + lost.len() as u64);
    }
}
