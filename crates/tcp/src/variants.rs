//! The congestion-controller registry: one string-keyed factory table.
//!
//! Earlier revisions selected a controller through a closed enum in the
//! experiment layer, which meant every new algorithm touched a match in
//! `spec.rs`, another in `cli.rs`, and a hand-maintained error string.
//! The registry inverts that: [`CC_REGISTRY`] is the single table, a
//! [`CcVariant`] is a handle into it, and registering a new algorithm is
//! one new [`CcEntry`] row — parsing, listing, error messages and sender
//! construction all derive from the table.
//!
//! The factory builds a complete *sender* (an [`Agent`]), not just a
//! policy: SACK-scoreboard policies ride [`TcpSender::with_cc`], while
//! scoreboard-free Reno needs its own sender loop.

use netsim::agent::Agent;
use netsim::id::AgentId;

use transport::{BbrV1Cc, CubicCc, SackCc};

use crate::config::TcpConfig;
use crate::reno::RenoSender;
use crate::sender::TcpSender;

/// One row of the registry: a named congestion-controller factory.
pub struct CcEntry {
    /// The variant's short name, as written into manifests and accepted
    /// by `RLA_TCP_CC`.
    pub name: &'static str,
    /// One-line description for tables and error messages.
    pub summary: &'static str,
    /// Build a sender streaming to the given receiver.
    build: fn(AgentId, TcpConfig) -> Box<dyn Agent>,
}

fn build_sack(rx: AgentId, cfg: TcpConfig) -> Box<dyn Agent> {
    Box::new(TcpSender::with_cc(rx, cfg, Box::new(SackCc::new())))
}

fn build_reno(rx: AgentId, cfg: TcpConfig) -> Box<dyn Agent> {
    Box::new(RenoSender::new(rx, cfg))
}

fn build_cubic(rx: AgentId, cfg: TcpConfig) -> Box<dyn Agent> {
    Box::new(TcpSender::with_cc(rx, cfg, Box::new(CubicCc::new())))
}

fn build_bbr(rx: AgentId, cfg: TcpConfig) -> Box<dyn Agent> {
    Box::new(TcpSender::with_cc(rx, cfg, Box::new(BbrV1Cc::new())))
}

/// Every registered congestion controller. Adding an algorithm is one
/// row here (plus its policy implementation in `transport`).
pub static CC_REGISTRY: &[CcEntry] = &[
    CcEntry {
        name: "sack",
        summary: "TCP SACK (paper's Sack1): scoreboard loss detection, one halving per loss window",
        build: build_sack,
    },
    CcEntry {
        name: "reno",
        summary: "TCP Reno: dup-ack counting, NewReno recovery, go-back-N on timeout",
        build: build_reno,
    },
    CcEntry {
        name: "cubic",
        summary: "CUBIC (RFC 8312): cubic window growth, fast convergence, TCP-friendly region",
        build: build_cubic,
    },
    CcEntry {
        name: "bbr",
        summary: "BBRv1: delivery-rate model, startup/drain/probe-bw/probe-rtt, paced sending",
        build: build_bbr,
    },
];

/// A handle to one registry row — the declarative controller selector
/// the experiment layer threads through `ScenarioSpec`.
#[derive(Clone, Copy)]
pub struct CcVariant(&'static CcEntry);

impl CcVariant {
    /// The default variant (the paper's TCP SACK).
    pub fn sack() -> Self {
        Self::parse("sack").expect("sack is always registered")
    }

    /// Look up a variant by name; `None` lists nothing — callers wanting
    /// an error message should cite [`CcVariant::names`].
    pub fn parse(s: &str) -> Option<Self> {
        CC_REGISTRY.iter().find(|e| e.name == s).map(CcVariant)
    }

    /// Every registered variant, in registry order.
    pub fn all() -> impl Iterator<Item = CcVariant> {
        CC_REGISTRY.iter().map(CcVariant)
    }

    /// Every registered name, in registry order (for error messages and
    /// option listings).
    pub fn names() -> Vec<&'static str> {
        CC_REGISTRY.iter().map(|e| e.name).collect()
    }

    /// The variant's short name, as written into manifests.
    pub fn name(&self) -> &'static str {
        self.0.name
    }

    /// The variant's one-line description.
    pub fn summary(&self) -> &'static str {
        self.0.summary
    }

    /// Build this variant's sender, streaming to `receiver`.
    pub fn build_sender(&self, receiver: AgentId, cfg: TcpConfig) -> Box<dyn Agent> {
        (self.0.build)(receiver, cfg)
    }
}

impl PartialEq for CcVariant {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for CcVariant {}

impl std::fmt::Debug for CcVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CcVariant").field(&self.0.name).finish()
    }
}

impl std::fmt::Display for CcVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for v in CcVariant::all() {
            let back = CcVariant::parse(v.name()).expect("registered name must parse");
            assert_eq!(back, v);
            assert_eq!(back.name(), v.name());
        }
        assert_eq!(CcVariant::parse("vegas"), None);
        assert_eq!(CcVariant::parse(""), None);
    }

    #[test]
    fn registry_holds_the_expected_zoo() {
        assert_eq!(CcVariant::names(), vec!["sack", "reno", "cubic", "bbr"]);
        assert_eq!(CcVariant::sack().name(), "sack");
    }

    #[test]
    fn names_are_unique() {
        let mut names = CcVariant::names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CC_REGISTRY.len(), "duplicate registry name");
    }

    #[test]
    fn summaries_are_nonempty() {
        for v in CcVariant::all() {
            assert!(!v.summary().is_empty(), "{} needs a summary", v.name());
        }
    }

    #[test]
    fn every_variant_builds_a_sender() {
        // Smoke: the factories must construct without panicking (a bad
        // TcpConfig would trip `validate`).
        for v in CcVariant::all() {
            let _agent = v.build_sender(AgentId(0), TcpConfig::default());
        }
    }
}
