//! The TCP SACK sender: slow start, congestion avoidance, fast
//! retransmit/recovery driven by the SACK scoreboard, and timeout recovery.
//!
//! This models the NS2 `Sack1` agent the paper simulated against, at the
//! level of detail its analysis uses (§4.1): window +1 per RTT without
//! loss, one halving per loss window, cwnd = 1 on timeout.

use std::any::Any;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::stats::{Running, TimeWeighted};
use netsim::time::SimTime;
use netsim::wire::{Segment, TcpAck, TcpData};

use crate::config::TcpConfig;
use crate::rto::RttEstimator;
use crate::scoreboard::Scoreboard;

/// Sender-side statistics for the paper's tables.
#[derive(Debug, Clone)]
pub struct SenderStats {
    /// Packets newly delivered (cumulative-ack progress) since the last
    /// reset — the throughput numerator.
    pub delivered: u64,
    /// Data packets transmitted (including retransmissions).
    pub data_sent: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Fast-recovery window cuts (the paper's "# wnd cut" less timeouts).
    pub window_cuts: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Time-weighted average congestion window.
    pub cwnd_avg: TimeWeighted,
    /// RTT samples.
    pub rtt: Running,
    /// When the statistics window began.
    pub since: SimTime,
}

impl SenderStats {
    fn new(now: SimTime, cwnd: f64) -> Self {
        SenderStats {
            delivered: 0,
            data_sent: 0,
            retransmits: 0,
            window_cuts: 0,
            timeouts: 0,
            cwnd_avg: TimeWeighted::new(now, cwnd),
            rtt: Running::new(),
            since: now,
        }
    }

    /// All congestion-window reductions (fast recovery plus timeouts).
    pub fn total_cuts(&self) -> u64 {
        self.window_cuts + self.timeouts
    }

    /// Throughput in packets per second over `[since, now]`.
    pub fn throughput_pps(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.since).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.delivered as f64 / span
        }
    }
}

/// A TCP SACK sender with infinite data (the paper's persistent source).
pub struct TcpSender {
    cfg: TcpConfig,
    receiver: AgentId,
    cwnd: f64,
    ssthresh: f64,
    /// Next new sequence number.
    high_seq: u64,
    scoreboard: Scoreboard,
    rtt: RttEstimator,
    /// While `Some(p)`: in fast recovery until the cumulative ack reaches
    /// `p`; further losses inside the window are the same congestion
    /// signal (one cut per loss window).
    recovery_point: Option<u64>,
    /// Timer generation; stale timer tokens are ignored.
    timer_gen: u64,
    /// Collected statistics.
    pub stats: SenderStats,
}

impl TcpSender {
    /// A sender that will stream to `receiver`.
    pub fn new(receiver: AgentId, cfg: TcpConfig) -> Self {
        cfg.validate();
        let cwnd = cfg.initial_cwnd;
        let ssthresh = cfg.initial_ssthresh;
        TcpSender {
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            cfg,
            receiver,
            cwnd,
            ssthresh,
            high_seq: 0,
            scoreboard: Scoreboard::new(),
            recovery_point: None,
            timer_gen: 0,
            stats: SenderStats::new(SimTime::ZERO, cwnd),
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold, packets.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<netsim::time::SimDuration> {
        self.rtt.srtt()
    }

    /// Discard statistics collected so far and start a fresh window at
    /// `now` (end-of-warmup reset; the paper discards the first 100 s).
    pub fn reset_stats(&mut self, now: SimTime) {
        let cwnd = self.cwnd;
        self.stats = SenderStats::new(now, cwnd);
    }

    fn set_cwnd(&mut self, now: SimTime, cwnd: f64) {
        self.cwnd = cwnd.clamp(1.0, self.cfg.max_cwnd);
        self.stats.cwnd_avg.set(now, self.cwnd);
    }

    /// Window growth on a newly acknowledged packet.
    fn open_cwnd(&mut self, now: SimTime) {
        let next = if self.cwnd < self.ssthresh {
            self.cwnd + 1.0 // slow start
        } else {
            self.cwnd + 1.0 / self.cwnd // congestion avoidance
        };
        self.set_cwnd(now, next);
    }

    /// One congestion signal: halve the window and enter fast recovery.
    fn cut_window(&mut self, now: SimTime) {
        let half = (self.cwnd / 2.0).max(1.0);
        self.ssthresh = half.max(2.0);
        self.set_cwnd(now, half);
        self.recovery_point = Some(self.high_seq);
        self.stats.window_cuts += 1;
    }

    /// Transmit whatever the window currently allows: retransmissions of
    /// declared-lost packets first, then new data.
    fn try_send(&mut self, ctx: &mut Context<'_>) {
        let allowed = (self.cwnd as u64).max(1);
        loop {
            if self.scoreboard.in_flight() >= allowed {
                break;
            }
            if let Some(seq) = self.scoreboard.next_lost() {
                self.transmit(ctx, seq, true);
                continue;
            }
            // Receiver-buffer bound (§3.3 rule 5 analogue for TCP): don't
            // run more than max_cwnd past the cumulative ack.
            if self.high_seq >= self.scoreboard.cum_ack() + self.cfg.max_cwnd as u64 {
                break;
            }
            let seq = self.high_seq;
            self.high_seq += 1;
            self.transmit(ctx, seq, false);
        }
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, seq: u64, retransmit: bool) {
        let now = ctx.now();
        self.scoreboard.on_send(seq, now);
        self.stats.data_sent += 1;
        if retransmit {
            self.stats.retransmits += 1;
        }
        ctx.send(
            Dest::Agent(self.receiver),
            self.cfg.packet_size,
            Segment::TcpData(TcpData {
                seq,
                retransmit,
                timestamp: now,
            }),
        );
    }

    /// (Re)arm the retransmission timer for one RTO from now.
    fn arm_timer(&mut self, ctx: &mut Context<'_>) {
        self.timer_gen += 1;
        ctx.set_timer(self.rtt.rto(), self.timer_gen);
    }

    fn on_ack(&mut self, ack: &TcpAck, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.stats
            .rtt
            .push(now.saturating_since(ack.echo_timestamp).as_secs_f64());
        self.rtt.sample(now.saturating_since(ack.echo_timestamp));

        let before = self.scoreboard.cum_ack();
        let newly_lost = self
            .scoreboard
            .on_ack(ack.cum_ack, &ack.sack, self.cfg.dupack_threshold);
        let advanced = self.scoreboard.cum_ack().saturating_sub(before);
        self.stats.delivered += advanced;

        if let Some(point) = self.recovery_point {
            if self.scoreboard.cum_ack() >= point {
                self.recovery_point = None;
            }
        }

        if self.recovery_point.is_none() {
            if newly_lost > 0 {
                // A fresh loss window: one congestion signal, one cut.
                self.cut_window(now);
            } else {
                for _ in 0..advanced {
                    self.open_cwnd(now);
                }
            }
        }

        if advanced > 0 {
            // Forward progress: restart the timer.
            self.arm_timer(ctx);
        }
        self.try_send(ctx);
    }

    fn on_timeout(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.scoreboard.is_empty() {
            return; // nothing outstanding; idle
        }
        self.rtt.on_timeout();
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.set_cwnd(now, 1.0);
        self.recovery_point = None;
        self.scoreboard.mark_all_lost();
        self.stats.timeouts += 1;
        self.arm_timer(ctx);
        self.try_send(ctx);
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.stats = SenderStats::new(ctx.now(), self.cwnd);
        self.try_send(ctx);
        self.arm_timer(ctx);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match packet.segment {
            Segment::TcpAck(ack) => self.on_ack(&ack, ctx),
            other => debug_assert!(false, "TCP sender got {}", other.kind_str()),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token != self.timer_gen {
            return; // superseded timer
        }
        self.on_timeout(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::queue::QueueConfig;
    use netsim::time::SimDuration;

    use crate::receiver::TcpReceiver;

    /// One TCP flow over a 2-node link; returns (engine, sender id,
    /// receiver id).
    fn one_flow(
        bandwidth_bps: u64,
        delay: SimDuration,
        qcfg: &QueueConfig,
    ) -> (Engine, AgentId, AgentId) {
        let mut e = Engine::new(3);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(a, b, bandwidth_bps, delay, qcfg);
        let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let tx = e.add_agent(a, Box::new(TcpSender::new(rx, TcpConfig::default())));
        e.compute_routes();
        e.start_agent_at(tx, SimTime::ZERO);
        (e, tx, rx)
    }

    #[test]
    fn fills_an_uncongested_pipe() {
        // 8 Mbps, 10 ms: BDP = 20 packets; TCP should saturate the link.
        let (mut e, tx, rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 100 },
        );
        e.run_until(SimTime::from_secs(30));
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        // Capacity is 1000 pkt/s; expect > 95% utilization over 30 s.
        assert!(
            rx.stats.delivered > 28_000,
            "delivered {}",
            rx.stats.delivered
        );
        let tx: &TcpSender = e.agent_as(tx).unwrap();
        assert_eq!(tx.stats.timeouts, 0, "no timeouts on a clean path");
    }

    #[test]
    fn congestion_causes_cuts_not_collapse() {
        // Tight buffer: overflow losses must trigger fast recovery, and
        // the connection must keep running (sawtooth, not stall).
        let (mut e, tx, rx) = one_flow(
            800_000, // 100 pkt/s
            SimDuration::from_millis(50),
            &QueueConfig::DropTail { limit: 10 },
        );
        e.run_until(SimTime::from_secs(60));
        let txs: &TcpSender = e.agent_as(tx).unwrap();
        assert!(txs.stats.window_cuts > 5, "cuts: {}", txs.stats.window_cuts);
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        let rate = rx.stats.delivered as f64 / 60.0;
        assert!(
            rate > 80.0 && rate <= 101.0,
            "goodput {rate} pkt/s should stay near 100"
        );
    }

    #[test]
    fn recovers_from_total_blackout_via_timeout() {
        use netsim::fault::FaultInjector;
        let (mut e, tx, _rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        // Black out the forward channel for a while.
        let ch = e.world().node(netsim::id::NodeId(0)).out_channels[0];
        e.run_until(SimTime::from_secs(2));
        e.set_fault(ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(6));
        let cuts_mid = {
            let t: &TcpSender = e.agent_as(tx).unwrap();
            t.stats.timeouts
        };
        assert!(cuts_mid >= 1, "blackout must cause timeouts");
        // Heal the path; the flow must resume.
        e.world_mut().channel_mut(ch).fault = None;
        let before = {
            let t: &TcpSender = e.agent_as(tx).unwrap();
            t.stats.delivered
        };
        e.run_until(SimTime::from_secs(12));
        let t: &TcpSender = e.agent_as(tx).unwrap();
        assert!(
            t.stats.delivered > before + 1000,
            "flow must resume after the path heals ({} -> {})",
            before,
            t.stats.delivered
        );
    }

    #[test]
    fn window_halves_once_per_loss_window() {
        // Statistical sanity: with sustained congestion, window cuts must
        // be far fewer than retransmissions grouped into loss windows.
        let (mut e, tx, _) = one_flow(
            800_000,
            SimDuration::from_millis(20),
            &QueueConfig::DropTail { limit: 5 },
        );
        e.run_until(SimTime::from_secs(60));
        let t: &TcpSender = e.agent_as(tx).unwrap();
        assert!(t.stats.retransmits > 0);
        assert!(
            t.stats.total_cuts() <= t.stats.retransmits,
            "cuts {} must not exceed loss events {}",
            t.stats.total_cuts(),
            t.stats.retransmits
        );
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_equally() {
        let mut e = Engine::new(11);
        let a = e.add_node("a");
        let b = e.add_node("b");
        // 200 pkt/s bottleneck shared by two identical flows.
        e.add_link(
            a,
            b,
            1_600_000,
            SimDuration::from_millis(20),
            &QueueConfig::paper_droptail(),
        );
        let rx1 = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let rx2 = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let tx1 = e.add_agent(a, Box::new(TcpSender::new(rx1, TcpConfig::default())));
        let tx2 = e.add_agent(a, Box::new(TcpSender::new(rx2, TcpConfig::default())));
        e.compute_routes();
        e.start_agent_at(tx1, SimTime::ZERO);
        e.start_agent_at(tx2, SimTime::from_millis(37));
        e.run_until(SimTime::from_secs(120));
        let d1 = e.agent_as::<TcpReceiver>(rx1).unwrap().stats.delivered as f64;
        let d2 = e.agent_as::<TcpReceiver>(rx2).unwrap().stats.delivered as f64;
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(
            ratio < 2.0,
            "equal flows should share within 2x ({d1} vs {d2})"
        );
        assert!(d1 + d2 > 0.85 * 200.0 * 120.0, "link underutilized");
    }
}
