//! The TCP SACK sender: slow start, congestion avoidance, fast
//! retransmit/recovery driven by the SACK scoreboard, and timeout recovery.
//!
//! This models the NS2 `Sack1` agent the paper simulated against, at the
//! level of detail its analysis uses (§4.1): window +1 per RTT without
//! loss, one halving per loss window, cwnd = 1 on timeout.
//!
//! The window arithmetic, recovery policy, RTT estimation and timer
//! management live in the shared `transport` crate: the sender owns loss
//! *detection* (the scoreboard) and transmission, and feeds its
//! [`CongestionControl`] policy one [`AckEvent`] per acknowledgment. The
//! default policy is [`transport::SackCc`]; the golden trace digests
//! certify this wiring bit-for-bit against the pre-refactor sender.
//!
//! ## Rate signals and pacing (CC API v2)
//!
//! Alongside the scoreboard the sender keeps BBR-style delivery-rate
//! bookkeeping: every transmission records its send time and the value of
//! the delivered counter at that moment, and every cumulative-ack advance
//! turns that into a [`transport::RateSample`] folded (with the RTT
//! sample) into the connection's [`CcSignals`]. Policies that ignore the
//! signals (SACK, Reno) behave exactly as before — the bookkeeping emits
//! no events.
//!
//! When the policy returns a pacing rate ([`CongestionControl::pacing_rate`],
//! BBR), the send loop stops releasing back-to-back packets: each
//! transmission pushes `next_send_at` one inter-packet gap into the
//! future, and when the gate is closed the loop parks a
//! [`PacingTimer`] instead of sending. Unpaced policies never arm it, so
//! their event streams are untouched.

use std::any::Any;
use std::collections::BTreeMap;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::time::{SimDuration, SimTime};
use netsim::wire::{Segment, TcpAck, TcpData};

use transport::{
    AckEvent, CcSignals, CongestionControl, PacingTimer, RateSample, RexmitTimer, RttEstimator,
    SackCc, WindowState,
};

use crate::config::TcpConfig;
use crate::scoreboard::Scoreboard;

pub use transport::stats::SenderStats;

/// Per-packet delivery-rate bookkeeping recorded at transmit time.
#[derive(Debug, Clone, Copy)]
struct SendMeta {
    /// When the packet (or its latest retransmission) left.
    sent_at: SimTime,
    /// The sender's delivered counter at that moment.
    delivered_at_send: u64,
}

/// A TCP sender with infinite data (the paper's persistent source).
pub struct TcpSender {
    cfg: TcpConfig,
    receiver: AgentId,
    win: WindowState,
    /// The pluggable reaction policy (SACK by default).
    cc: Box<dyn CongestionControl>,
    /// Next new sequence number.
    high_seq: u64,
    scoreboard: Scoreboard,
    rtt: RttEstimator,
    timer: RexmitTimer,
    /// Path signals (windowed min-RTT, bandwidth filter, delivered count)
    /// accumulated for the policy.
    signals: CcSignals,
    /// Delivery-rate bookkeeping for in-flight sequences (pruned at the
    /// cumulative ack; retransmissions overwrite their entry).
    meta: BTreeMap<u64, SendMeta>,
    /// Pacing release timer and gate (only armed by pacing policies).
    pacer: PacingTimer,
    next_send_at: SimTime,
    /// Collected statistics.
    pub stats: SenderStats,
}

impl TcpSender {
    /// A sender that will stream to `receiver` under the paper's SACK
    /// policy.
    pub fn new(receiver: AgentId, cfg: TcpConfig) -> Self {
        Self::with_cc(receiver, cfg, Box::new(SackCc::new()))
    }

    /// A sender with an explicit congestion-control policy. The policy
    /// reacts to scoreboard-declared losses; policies that do their own
    /// dup-ack loss detection belong in a scoreboard-free sender (see
    /// `reno::RenoSender`).
    pub fn with_cc(receiver: AgentId, cfg: TcpConfig, cc: Box<dyn CongestionControl>) -> Self {
        cfg.validate();
        let win = WindowState::new(cfg.initial_cwnd, cfg.initial_ssthresh, cfg.max_cwnd);
        let cwnd = win.cwnd();
        TcpSender {
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            cfg,
            receiver,
            win,
            cc,
            high_seq: 0,
            scoreboard: Scoreboard::new(),
            timer: RexmitTimer::new(),
            signals: CcSignals::new(),
            meta: BTreeMap::new(),
            pacer: PacingTimer::new(),
            next_send_at: SimTime::ZERO,
            stats: SenderStats::new(SimTime::ZERO, cwnd),
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    /// Current slow-start threshold, packets.
    pub fn ssthresh(&self) -> f64 {
        self.win.ssthresh()
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<netsim::time::SimDuration> {
        self.rtt.srtt()
    }

    /// Discard statistics collected so far and start a fresh window at
    /// `now` (end-of-warmup reset; the paper discards the first 100 s).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.stats = SenderStats::new(now, self.win.cwnd());
    }

    /// Transmit whatever the window (and, for pacing policies, the
    /// pacing gate) currently allows: retransmissions of declared-lost
    /// packets first, then new data.
    fn try_send(&mut self, ctx: &mut Context<'_>) {
        let allowed = self.cc.allowed_window(&self.win, &self.signals);
        let pace = self.cc.pacing_rate(&self.signals).filter(|r| *r > 0.0);
        loop {
            if self.scoreboard.in_flight() >= allowed {
                break;
            }
            let lost = self.scoreboard.next_lost();
            // Receiver-buffer bound (§3.3 rule 5 analogue for TCP): don't
            // run more than max_cwnd past the cumulative ack.
            if lost.is_none()
                && self.high_seq >= self.scoreboard.cum_ack() + self.cfg.max_cwnd as u64
            {
                break;
            }
            if let Some(rate) = pace {
                // The gate is closed: park the pacing timer and let it
                // call back instead of bursting.
                let now = ctx.now();
                if now < self.next_send_at {
                    self.pacer.arm_at(ctx, self.next_send_at);
                    break;
                }
                // Charge one inter-packet gap, carrying over any credit
                // (ack clocks may lag the ideal schedule).
                let gap = SimDuration::from_secs_f64(1.0 / rate);
                self.next_send_at = self.next_send_at.max(now) + gap;
            }
            match lost {
                Some(seq) => self.transmit(ctx, seq, true),
                None => {
                    let seq = self.high_seq;
                    self.high_seq += 1;
                    self.transmit(ctx, seq, false);
                }
            }
        }
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, seq: u64, retransmit: bool) {
        let now = ctx.now();
        self.scoreboard.on_send(seq, now);
        // Delivery-rate bookkeeping: a retransmission overwrites its
        // entry, so the eventual sample measures the copy that was acked.
        self.meta.insert(
            seq,
            SendMeta {
                sent_at: now,
                delivered_at_send: self.signals.delivered(),
            },
        );
        self.stats.data_sent += 1;
        if retransmit {
            self.stats.retransmits += 1;
        }
        ctx.send(
            Dest::Agent(self.receiver),
            self.cfg.packet_size,
            Segment::TcpData(TcpData {
                seq,
                retransmit,
                timestamp: now,
            }),
        );
    }

    fn on_ack(&mut self, ack: &TcpAck, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.stats
            .rtt
            .push(now.saturating_since(ack.echo_timestamp).as_secs_f64());
        self.rtt.sample(now.saturating_since(ack.echo_timestamp));

        let before = self.scoreboard.cum_ack();
        let sacked_before = self.scoreboard.sacked();
        let newly_lost = self
            .scoreboard
            .on_ack(ack.cum_ack, &ack.sack, self.cfg.dupack_threshold);
        let advanced = self.scoreboard.cum_ack().saturating_sub(before);
        // First-time delivery reports: the cumulative advance net of
        // packets an earlier SACK already reported, plus newly SACKed
        // ones (cum + sacked is monotone, so this never underflows).
        let newly_delivered = (advanced + self.scoreboard.sacked()).saturating_sub(sacked_before);
        self.stats.delivered += advanced;

        // Delivery-rate sample off the last packet of the acked range
        // (the persistent source is never application-limited), then
        // prune the bookkeeping below the new cumulative ack.
        let cum = self.scoreboard.cum_ack();
        let rate = if advanced > 0 {
            self.meta.get(&(cum - 1)).map(|m| RateSample {
                newly_acked_bytes: advanced * self.cfg.packet_size as u64,
                sent_at: m.sent_at,
                delivered_at_send: m.delivered_at_send,
                app_limited: false,
            })
        } else {
            None
        };
        if advanced > 0 {
            self.meta = self.meta.split_off(&cum);
        }

        let ev = AckEvent {
            cum_ack: cum,
            newly_acked: advanced,
            newly_delivered,
            newly_lost: newly_lost as u64,
            high_seq: self.high_seq,
            ack_time: now,
            rtt_sample: Some(now.saturating_since(ack.echo_timestamp)),
            in_flight: self.scoreboard.in_flight(),
            rate,
        };
        self.signals.on_ack(&ev);
        let out = self.cc.on_ack(&mut self.win, &ev, &self.signals);
        self.stats.window_cuts += out.cuts;
        self.stats.cwnd_avg.set(now, self.win.cwnd());
        debug_assert!(
            out.retransmit.is_none(),
            "scoreboard-driven senders retransmit from the scoreboard"
        );

        if advanced > 0 {
            // Forward progress: restart the timer.
            self.timer.arm(ctx, self.rtt.rto());
        }
        self.try_send(ctx);
    }

    fn on_timeout(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.scoreboard.is_empty() {
            return; // nothing outstanding; idle
        }
        self.rtt.on_timeout();
        self.cc.on_timeout(&mut self.win, now);
        self.stats.cwnd_avg.set(now, self.win.cwnd());
        self.scoreboard.mark_all_lost();
        self.stats.timeouts += 1;
        self.timer.arm(ctx, self.rtt.rto());
        self.try_send(ctx);
    }
}

impl telemetry::FlowProbe for TcpSender {
    fn probe_kind(&self) -> &'static str {
        "tcp-sack"
    }

    fn flow_sample(&self) -> telemetry::FlowSample {
        telemetry::FlowSample {
            cwnd: self.cwnd(),
            ssthresh: Some(self.ssthresh()),
            awnd: None,
            rtt: self.srtt().map(|d| d.as_secs_f64()),
        }
    }
}

impl Agent for TcpSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.stats = SenderStats::new(ctx.now(), self.win.cwnd());
        self.try_send(ctx);
        self.timer.arm(ctx, self.rtt.rto());
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match packet.segment {
            Segment::TcpAck(ack) => self.on_ack(&ack, ctx),
            other => debug_assert!(false, "TCP sender got {}", other.kind_str()),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if PacingTimer::matches(token) {
            // The pacing gate re-opened: resume the send loop.
            if self.pacer.is_current(token) {
                self.try_send(ctx);
            }
            return;
        }
        if !self.timer.is_current(token) {
            return; // superseded timer
        }
        self.on_timeout(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::queue::QueueConfig;
    use netsim::time::SimDuration;

    use crate::receiver::TcpReceiver;

    /// One TCP flow over a 2-node link; returns (engine, sender id,
    /// receiver id).
    fn one_flow(
        bandwidth_bps: u64,
        delay: SimDuration,
        qcfg: &QueueConfig,
    ) -> (Engine, AgentId, AgentId) {
        let mut e = Engine::new(3);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(a, b, bandwidth_bps, delay, qcfg);
        let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let tx = e.add_agent(a, Box::new(TcpSender::new(rx, TcpConfig::default())));
        e.compute_routes();
        e.start_agent_at(tx, SimTime::ZERO);
        (e, tx, rx)
    }

    #[test]
    fn fills_an_uncongested_pipe() {
        // 8 Mbps, 10 ms: BDP = 20 packets; TCP should saturate the link.
        let (mut e, tx, rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 100 },
        );
        e.run_until(SimTime::from_secs(30));
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        // Capacity is 1000 pkt/s; expect > 95% utilization over 30 s.
        assert!(
            rx.stats.delivered > 28_000,
            "delivered {}",
            rx.stats.delivered
        );
        let tx: &TcpSender = e.agent_as(tx).unwrap();
        assert_eq!(tx.stats.timeouts, 0, "no timeouts on a clean path");
    }

    #[test]
    fn congestion_causes_cuts_not_collapse() {
        // Tight buffer: overflow losses must trigger fast recovery, and
        // the connection must keep running (sawtooth, not stall).
        let (mut e, tx, rx) = one_flow(
            800_000, // 100 pkt/s
            SimDuration::from_millis(50),
            &QueueConfig::DropTail { limit: 10 },
        );
        e.run_until(SimTime::from_secs(60));
        let txs: &TcpSender = e.agent_as(tx).unwrap();
        assert!(txs.stats.window_cuts > 5, "cuts: {}", txs.stats.window_cuts);
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        let rate = rx.stats.delivered as f64 / 60.0;
        assert!(
            rate > 80.0 && rate <= 101.0,
            "goodput {rate} pkt/s should stay near 100"
        );
    }

    #[test]
    fn recovers_from_total_blackout_via_timeout() {
        use netsim::fault::FaultInjector;
        let (mut e, tx, _rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        // Black out the forward channel for a while.
        let ch = e.world().node(netsim::id::NodeId(0)).out_channels[0];
        e.run_until(SimTime::from_secs(2));
        e.set_fault(ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(6));
        let cuts_mid = {
            let t: &TcpSender = e.agent_as(tx).unwrap();
            t.stats.timeouts
        };
        assert!(cuts_mid >= 1, "blackout must cause timeouts");
        // Heal the path; the flow must resume.
        e.world_mut().channel_mut(ch).fault = None;
        let before = {
            let t: &TcpSender = e.agent_as(tx).unwrap();
            t.stats.delivered
        };
        e.run_until(SimTime::from_secs(12));
        let t: &TcpSender = e.agent_as(tx).unwrap();
        assert!(
            t.stats.delivered > before + 1000,
            "flow must resume after the path heals ({} -> {})",
            before,
            t.stats.delivered
        );
    }

    #[test]
    fn window_halves_once_per_loss_window() {
        // Statistical sanity: with sustained congestion, window cuts must
        // be far fewer than retransmissions grouped into loss windows.
        let (mut e, tx, _) = one_flow(
            800_000,
            SimDuration::from_millis(20),
            &QueueConfig::DropTail { limit: 5 },
        );
        e.run_until(SimTime::from_secs(60));
        let t: &TcpSender = e.agent_as(tx).unwrap();
        assert!(t.stats.retransmits > 0);
        assert!(
            t.stats.total_cuts() <= t.stats.retransmits,
            "cuts {} must not exceed loss events {}",
            t.stats.total_cuts(),
            t.stats.retransmits
        );
    }

    #[test]
    fn cubic_fills_an_uncongested_pipe() {
        use crate::variants::CcVariant;
        let mut e = Engine::new(3);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 100 },
        );
        let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let cc = CcVariant::parse("cubic").unwrap();
        let tx = e.add_agent(a, cc.build_sender(rx, TcpConfig::default()));
        e.compute_routes();
        e.start_agent_at(tx, SimTime::ZERO);
        e.run_until(SimTime::from_secs(30));
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        assert!(
            rx.stats.delivered > 27_000,
            "cubic delivered {}",
            rx.stats.delivered
        );
    }

    #[test]
    fn bbr_paces_near_the_bottleneck_rate() {
        use crate::variants::CcVariant;
        let mut e = Engine::new(3);
        let a = e.add_node("a");
        let b = e.add_node("b");
        // 1000 pkt/s bottleneck; BBR must model it and pace close to it
        // without collapsing into timeouts.
        e.add_link(
            a,
            b,
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 100 },
        );
        let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let cc = CcVariant::parse("bbr").unwrap();
        let tx = e.add_agent(a, cc.build_sender(rx, TcpConfig::default()));
        e.compute_routes();
        e.start_agent_at(tx, SimTime::ZERO);
        e.run_until(SimTime::from_secs(30));
        let rxs: &TcpReceiver = e.agent_as(rx).unwrap();
        let rate = rxs.stats.delivered as f64 / 30.0;
        assert!(
            rate > 600.0 && rate <= 1_001.0,
            "bbr goodput {rate} pkt/s should track the 1000 pkt/s bottleneck"
        );
        let txs: &TcpSender = e.agent_as(tx).unwrap();
        assert_eq!(txs.stats.timeouts, 0, "bbr must not stall on a clean path");
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_equally() {
        let mut e = Engine::new(11);
        let a = e.add_node("a");
        let b = e.add_node("b");
        // 200 pkt/s bottleneck shared by two identical flows.
        e.add_link(
            a,
            b,
            1_600_000,
            SimDuration::from_millis(20),
            &QueueConfig::paper_droptail(),
        );
        let rx1 = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let rx2 = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let tx1 = e.add_agent(a, Box::new(TcpSender::new(rx1, TcpConfig::default())));
        let tx2 = e.add_agent(a, Box::new(TcpSender::new(rx2, TcpConfig::default())));
        e.compute_routes();
        e.start_agent_at(tx1, SimTime::ZERO);
        e.start_agent_at(tx2, SimTime::from_millis(37));
        e.run_until(SimTime::from_secs(120));
        let d1 = e.agent_as::<TcpReceiver>(rx1).unwrap().stats.delivered as f64;
        let d2 = e.agent_as::<TcpReceiver>(rx2).unwrap().stats.delivered as f64;
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(
            ratio < 2.0,
            "equal flows should share within 2x ({d1} vs {d2})"
        );
        assert!(d1 + d2 > 0.85 * 200.0 * 120.0, "link underutilized");
    }
}
