//! # tcp-sack — TCP SACK agents for the `netsim` simulator
//!
//! The unicast baseline of the reproduction: the paper measures the Random
//! Listening Algorithm's fairness *against TCP SACK connections*, so every
//! experiment runs these agents as background traffic.
//!
//! The sender ([`TcpSender`]) implements the congestion-control behaviour
//! the paper's §4.1 analysis assumes:
//!
//! * slow start (+1 per ack below `ssthresh`),
//! * congestion avoidance (+1/cwnd per ack),
//! * SACK-scoreboard loss detection (a hole is lost once three higher
//!   packets are SACKed),
//! * **one window halving per loss window** (fast recovery), and
//! * `cwnd = 1` with exponential backoff on a retransmission timeout.
//!
//! The receiver ([`TcpReceiver`]) acknowledges every data packet with a
//! cumulative ack plus up to three RFC 2018 SACK blocks.
//!
//! Beyond the paper's SACK baseline the crate carries a small zoo of
//! alternative senders — Reno ([`RenoSender`]), CUBIC and BBRv1 (riding
//! [`TcpSender::with_cc`] with the `transport` policies) — selected
//! declaratively through the string-keyed registry in [`variants`]
//! ([`CcVariant`]), so fairness sweeps can pit the RLA against modern
//! competitors without new wiring per algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod receiver;
pub mod reno;
pub mod rto;
pub mod scoreboard;
pub mod sender;
pub mod variants;

pub use config::TcpConfig;
pub use receiver::{ReceiverStats, TcpReceiver};
pub use reno::RenoSender;
pub use rto::RttEstimator;
pub use scoreboard::Scoreboard;
pub use sender::{SenderStats, TcpSender};
pub use variants::{CcEntry, CcVariant, CC_REGISTRY};
