//! TCP agent configuration.

use netsim::time::SimDuration;
use transport::defaults;

/// Parameters of a TCP SACK connection.
///
/// Defaults mirror the paper's simulation setup: 1000-byte data packets,
/// 40-byte ACKs, and NS2-era timer constants.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Data packet size on the wire, bytes.
    pub packet_size: u32,
    /// Acknowledgment size on the wire, bytes.
    pub ack_size: u32,
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, packets.
    pub initial_ssthresh: f64,
    /// Maximum congestion window (the advertised receiver window), packets.
    pub max_cwnd: f64,
    /// Number of SACKed packets above a hole that declares it lost
    /// (the fast-retransmit dup-threshold; 3 in the paper and RFC).
    pub dupack_threshold: u64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            packet_size: defaults::PACKET_SIZE,
            ack_size: defaults::ACK_SIZE,
            initial_cwnd: defaults::INITIAL_CWND,
            initial_ssthresh: defaults::INITIAL_SSTHRESH,
            max_cwnd: defaults::MAX_CWND,
            dupack_threshold: defaults::DUPACK_THRESHOLD,
            min_rto: defaults::MIN_RTO,
            max_rto: defaults::MAX_RTO,
        }
    }
}

impl TcpConfig {
    /// Validate invariants; called by the sender constructor.
    pub fn validate(&self) {
        assert!(self.packet_size > 0, "packet size must be positive");
        assert!(self.ack_size > 0, "ack size must be positive");
        assert!(self.initial_cwnd >= 1.0, "initial cwnd below one packet");
        assert!(self.max_cwnd >= self.initial_cwnd, "max cwnd below initial");
        assert!(self.dupack_threshold >= 1, "dup threshold must be positive");
        assert!(self.min_rto <= self.max_rto, "min RTO above max RTO");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        TcpConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "cwnd")]
    fn bad_window_rejected() {
        TcpConfig {
            initial_cwnd: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
