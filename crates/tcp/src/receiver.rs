//! The TCP SACK receiver: acknowledges every data packet with a cumulative
//! ack plus up to [`MAX_SACK_BLOCKS`](netsim::wire::MAX_SACK_BLOCKS)
//! selective-acknowledgment blocks (RFC 2018 format).

use std::any::Any;
use std::collections::BTreeSet;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::packet::{Dest, Packet};
use netsim::wire::{SackList, Segment, TcpAck};

/// Receiver-side statistics.
#[derive(Debug, Default, Clone)]
pub struct ReceiverStats {
    /// Data packets that arrived (including duplicates).
    pub arrivals: u64,
    /// Distinct packets delivered in order (cumulative-ack progress).
    pub delivered: u64,
    /// Duplicate arrivals (already delivered or already buffered).
    pub duplicates: u64,
}

/// A TCP SACK receiver endpoint.
#[derive(Debug, Default)]
pub struct TcpReceiver {
    /// Next expected in-order sequence number (== cumulative ack).
    cum_ack: u64,
    /// Out-of-order packets held above the cumulative ack.
    ooo: BTreeSet<u64>,
    /// ACK packet size on the wire, bytes.
    ack_size: u32,
    /// Running statistics.
    pub stats: ReceiverStats,
}

impl TcpReceiver {
    /// A receiver producing `ack_size`-byte acknowledgments.
    pub fn new(ack_size: u32) -> Self {
        TcpReceiver {
            ack_size,
            ..Default::default()
        }
    }

    /// Current cumulative acknowledgment.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Zero the statistics (end-of-warmup reset).
    pub fn reset_stats(&mut self) {
        self.stats = ReceiverStats::default();
    }

    /// Fold `seq` into the receive state; returns `true` if it was new.
    fn accept(&mut self, seq: u64) -> bool {
        if seq < self.cum_ack || self.ooo.contains(&seq) {
            self.stats.duplicates += 1;
            return false;
        }
        if seq == self.cum_ack {
            self.cum_ack += 1;
            self.stats.delivered += 1;
            // Drain the out-of-order buffer as far as it now reaches.
            while self.ooo.remove(&self.cum_ack) {
                self.cum_ack += 1;
                self.stats.delivered += 1;
            }
        } else {
            self.ooo.insert(seq);
        }
        true
    }

    /// Build the SACK blocks: the block containing `latest` first, then the
    /// remaining blocks from highest to lowest, up to the wire limit.
    /// Allocation-free — the blocks live inline in the returned
    /// [`SackList`].
    fn sack_blocks(&self, latest: u64) -> SackList {
        SackList::from_ascending_seqs(self.ooo.iter().copied(), latest)
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let Segment::TcpData(data) = packet.segment else {
            debug_assert!(false, "TCP receiver got {}", packet.segment.kind_str());
            return;
        };
        self.stats.arrivals += 1;
        self.accept(data.seq);
        let ack = TcpAck {
            cum_ack: self.cum_ack,
            sack: self.sack_blocks(data.seq),
            echo_timestamp: data.timestamp,
        };
        ctx.send(Dest::Agent(packet.src), self.ack_size, Segment::TcpAck(ack));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::wire::{SackBlock, MAX_SACK_BLOCKS};

    #[test]
    fn in_order_advances_cum_ack() {
        let mut r = TcpReceiver::new(40);
        assert!(r.accept(0));
        assert!(r.accept(1));
        assert_eq!(r.cum_ack(), 2);
        assert_eq!(r.stats.delivered, 2);
        assert!(r.sack_blocks(1).is_empty());
    }

    #[test]
    fn hole_generates_sack_block() {
        let mut r = TcpReceiver::new(40);
        r.accept(0);
        r.accept(2);
        r.accept(3);
        assert_eq!(r.cum_ack(), 1);
        assert_eq!(
            r.sack_blocks(3).as_slice(),
            [SackBlock { start: 2, end: 4 }]
        );
    }

    #[test]
    fn fill_drains_out_of_order_buffer() {
        let mut r = TcpReceiver::new(40);
        r.accept(0);
        r.accept(2);
        r.accept(3);
        r.accept(1); // fills the hole
        assert_eq!(r.cum_ack(), 4);
        assert!(r.sack_blocks(1).is_empty());
        assert_eq!(r.stats.delivered, 4);
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let mut r = TcpReceiver::new(40);
        r.accept(0);
        assert!(!r.accept(0));
        r.accept(2);
        assert!(!r.accept(2));
        assert_eq!(r.stats.duplicates, 2);
        assert_eq!(r.cum_ack(), 1);
    }

    #[test]
    fn most_recent_block_listed_first() {
        let mut r = TcpReceiver::new(40);
        // Holes at 1 and 4: blocks {2,3} and {5} and {7}.
        for seq in [0, 2, 3, 5, 7] {
            r.accept(seq);
        }
        // Most recent receipt is 5: its block must come first.
        let blocks = r.sack_blocks(5);
        assert_eq!(blocks[0], SackBlock { start: 5, end: 6 });
        assert_eq!(blocks.len(), 3);
    }

    #[test]
    fn block_count_capped_at_wire_limit() {
        let mut r = TcpReceiver::new(40);
        // Every even seq from 2..20: nine isolated blocks.
        for seq in (2..20).step_by(2) {
            r.accept(seq);
        }
        assert_eq!(r.sack_blocks(18).len(), MAX_SACK_BLOCKS);
    }
}
