//! The sender-side SACK scoreboard.
//!
//! Tracks the fate of every packet between the cumulative ACK and the
//! highest sequence sent, and implements the paper's loss-declaration rule
//! (§3.3 rule 1): *a packet is considered lost if a packet with a sequence
//! number at least `dupack_threshold` higher has been selectively ACKed.*

use std::collections::VecDeque;

use netsim::time::SimTime;
use netsim::wire::SackBlock;

/// Sender-side state of one in-flight packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentPacket {
    /// When the packet (or its latest retransmission) was sent.
    pub sent_at: SimTime,
    /// The receiver has selectively acknowledged it.
    pub sacked: bool,
    /// Declared lost (hole with enough SACKed packets above it).
    pub lost: bool,
    /// A retransmission of it is in flight.
    pub retransmitted: bool,
}

/// The scoreboard: per-packet state for `[cum_ack, high_seq)`.
///
/// The tracked window is a contiguous run of sequence numbers, so storage
/// is a flat ring of slots anchored at `base` rather than an ordered map:
/// every per-sequence operation is an index, the cumulative-ack advance is
/// a run of `pop_front`s, and the aggregate queries TCP asks on every ack
/// (`in_flight`, `next_lost` when nothing is lost) come from counters
/// maintained incrementally — this structure sits on the simulator's
/// hottest path (one `on_ack` per acknowledgment for TCP *and* per
/// receiver for the RLA sender). Slots are `Option` so a sparse `on_send`
/// (never produced by the in-tree senders) still behaves exactly like the
/// old map: untracked sequences answer no queries.
#[derive(Debug, Default)]
pub struct Scoreboard {
    /// Slot `i` holds the state of sequence `base + i`.
    packets: VecDeque<Option<SentPacket>>,
    /// Sequence number of slot 0.
    base: u64,
    cum_ack: u64,
    /// Highest sequence number SACKed so far (None if nothing SACKed).
    high_sacked: Option<u64>,
    /// Tracked (`Some`) slots.
    n_tracked: u64,
    /// Tracked slots with `sacked` set. Disjoint from `n_lost`: sacking
    /// clears `lost`, and loss declaration skips sacked slots.
    n_sacked: u64,
    /// Tracked slots with `lost` set.
    n_lost: u64,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cumulative acknowledgment (all `seq <` this are delivered).
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// The slot for `seq`, if tracked.
    fn slot(&self, seq: u64) -> Option<&SentPacket> {
        if seq < self.base {
            return None;
        }
        self.packets.get((seq - self.base) as usize)?.as_ref()
    }

    /// Record that `seq` was (re)transmitted at `now`.
    pub fn on_send(&mut self, seq: u64, now: SimTime) {
        debug_assert!(seq >= self.cum_ack, "sending an already-acked packet");
        if self.packets.is_empty() {
            self.base = seq.max(self.cum_ack);
        }
        if seq < self.base {
            for _ in 0..(self.base - seq) {
                self.packets.push_front(None);
            }
            self.base = seq;
        }
        let idx = (seq - self.base) as usize;
        while self.packets.len() <= idx {
            self.packets.push_back(None);
        }
        match &mut self.packets[idx] {
            Some(p) => {
                if p.lost {
                    p.retransmitted = true;
                    p.lost = false;
                    self.n_lost -= 1;
                }
                p.sent_at = now;
            }
            slot @ None => {
                *slot = Some(SentPacket {
                    sent_at: now,
                    sacked: false,
                    lost: false,
                    retransmitted: false,
                });
                self.n_tracked += 1;
            }
        }
    }

    /// Apply an acknowledgment. Returns the number of packets *newly*
    /// declared lost by this ack (0 if none).
    pub fn on_ack(&mut self, cum_ack: u64, sack: &[SackBlock], dup_threshold: u64) -> usize {
        if cum_ack > self.cum_ack {
            self.cum_ack = cum_ack;
            // Everything below the cumulative ack is delivered.
            while self.base < cum_ack {
                match self.packets.pop_front() {
                    Some(slot) => {
                        if let Some(p) = slot {
                            self.n_tracked -= 1;
                            if p.sacked {
                                self.n_sacked -= 1;
                            }
                            if p.lost {
                                self.n_lost -= 1;
                            }
                        }
                        self.base += 1;
                    }
                    None => {
                        self.base = cum_ack;
                        break;
                    }
                }
            }
        }
        for block in sack {
            // Clamp to the tracked window; sequences outside it (stale or
            // never sent) are ignored, as the old map lookup did.
            let lo = block.start.max(self.base).max(self.cum_ack);
            let hi = block.end.min(self.base + self.packets.len() as u64);
            for seq in lo..hi {
                if let Some(p) = &mut self.packets[(seq - self.base) as usize] {
                    if !p.sacked {
                        p.sacked = true;
                        if p.lost {
                            self.n_lost -= 1;
                        }
                        p.lost = false;
                        self.n_sacked += 1;
                        self.high_sacked = Some(self.high_sacked.map_or(seq, |h| h.max(seq)));
                    }
                }
            }
        }
        self.detect_losses(dup_threshold)
    }

    /// Declare holes lost per the dup-threshold rule. Returns newly lost.
    fn detect_losses(&mut self, dup_threshold: u64) -> usize {
        let Some(high) = self.high_sacked else {
            return 0;
        };
        if self.packets.is_empty() || high < self.base {
            return 0;
        }
        // Count, for each hole, the SACKed packets strictly above it.
        // Walk from the top: maintain a running count of sacked packets seen.
        let hi_idx = ((high - self.base) as usize).min(self.packets.len() - 1);
        let mut newly_lost = 0;
        let mut sacked_above = 0u64;
        for idx in (0..=hi_idx).rev() {
            if let Some(p) = &mut self.packets[idx] {
                if p.sacked {
                    sacked_above += 1;
                } else if !p.lost && !p.retransmitted && sacked_above >= dup_threshold {
                    p.lost = true;
                    self.n_lost += 1;
                    newly_lost += 1;
                }
            }
        }
        newly_lost
    }

    /// The oldest unsacked packet: `(seq, last_sent_at, evidence,
    /// retransmitted)`, where `evidence` is true when some higher packet
    /// has been SACKed (the hole is a real gap, not just the newest data).
    /// Drives early retransmission at the window edge.
    pub fn head_hole(&self) -> Option<(u64, SimTime, bool, bool)> {
        for (i, slot) in self.packets.iter().enumerate() {
            if let Some(p) = slot {
                if !p.sacked {
                    let seq = self.base + i as u64;
                    let evidence = self.high_sacked.is_some_and(|h| h > seq);
                    return Some((seq, p.sent_at, evidence, p.retransmitted));
                }
            }
        }
        None
    }

    /// Mark only the oldest unsacked packet as lost (one-per-RTO pacing,
    /// as TCP effectively does when it retransmits the head of the window
    /// on timeout). Returns the marked sequence, if any.
    pub fn mark_head_lost(&mut self) -> Option<u64> {
        for (i, slot) in self.packets.iter_mut().enumerate() {
            if let Some(p) = slot {
                if !p.sacked {
                    if !p.lost {
                        self.n_lost += 1;
                    }
                    p.lost = true;
                    p.retransmitted = false;
                    return Some(self.base + i as u64);
                }
            }
        }
        None
    }

    /// Mark everything outstanding as lost (retransmission timeout).
    /// Returns the number of packets so marked.
    pub fn mark_all_lost(&mut self) -> usize {
        let mut n = 0;
        for p in self.packets.iter_mut().flatten() {
            if !p.sacked {
                if !p.lost {
                    self.n_lost += 1;
                }
                p.lost = true;
                p.retransmitted = false;
                n += 1;
            }
        }
        n
    }

    /// All packets currently marked lost and not yet retransmitted, in
    /// sequence order. (The RLA sender feeds these into its retransmission
    /// queue; TCP itself only needs [`Scoreboard::next_lost`].)
    pub fn lost_unretransmitted(&self) -> Vec<u64> {
        if self.n_lost == 0 {
            return Vec::new();
        }
        self.packets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|p| p.lost && !p.retransmitted))
            .map(|(i, _)| self.base + i as u64)
            .collect()
    }

    /// `true` if the receiver is known to hold `seq` (cumulatively acked or
    /// selectively acked).
    pub fn is_received(&self, seq: u64) -> bool {
        seq < self.cum_ack || self.slot(seq).is_some_and(|p| p.sacked)
    }

    /// `true` if `seq` is currently declared lost.
    pub fn is_lost(&self, seq: u64) -> bool {
        self.slot(seq).is_some_and(|p| p.lost)
    }

    /// The lowest packet currently marked lost and not yet retransmitted.
    pub fn next_lost(&self) -> Option<u64> {
        if self.n_lost == 0 {
            return None;
        }
        self.packets
            .iter()
            .enumerate()
            .find(|(_, s)| s.as_ref().is_some_and(|p| p.lost && !p.retransmitted))
            .map(|(i, _)| self.base + i as u64)
    }

    /// Packets "in the pipe": sent, not cumulatively acked, not SACKed, and
    /// not declared lost (lost ones are assumed gone from the network).
    pub fn in_flight(&self) -> u64 {
        self.n_tracked - self.n_sacked - self.n_lost
    }

    /// Outstanding packets currently SACKed (received above a hole).
    /// `cum_ack() + sacked()` is the sender's known-delivered count, the
    /// basis for delivery-rate samples: it advances when a packet is
    /// *first* reported received, so a hole-fill's cumulative jump does
    /// not re-count packets SACKed round trips ago.
    pub fn sacked(&self) -> u64 {
        self.n_sacked
    }

    /// Number of tracked (outstanding) packets.
    pub fn outstanding(&self) -> u64 {
        self.n_tracked
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.n_tracked == 0
    }

    /// State of a specific packet, if tracked.
    pub fn get(&self, seq: u64) -> Option<&SentPacket> {
        self.slot(seq)
    }

    /// Time the oldest outstanding packet was last (re)sent — drives the
    /// retransmission timer.
    pub fn oldest_sent_at(&self) -> Option<SimTime> {
        self.packets
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|p| !p.sacked)
            .map(|p| p.sent_at)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb_with_sent(n: u64) -> Scoreboard {
        let mut sb = Scoreboard::new();
        for seq in 0..n {
            sb.on_send(seq, SimTime::from_secs(seq));
        }
        sb
    }

    fn block(start: u64, end: u64) -> SackBlock {
        SackBlock { start, end }
    }

    #[test]
    fn cum_ack_clears_delivered_packets() {
        let mut sb = sb_with_sent(5);
        assert_eq!(sb.outstanding(), 5);
        let lost = sb.on_ack(3, &[], 3);
        assert_eq!(lost, 0);
        assert_eq!(sb.cum_ack(), 3);
        assert_eq!(sb.outstanding(), 2);
        assert_eq!(sb.in_flight(), 2);
    }

    #[test]
    fn loss_declared_after_three_sacks_above() {
        let mut sb = sb_with_sent(6);
        // Packet 0 lost; 1, 2 SACKed: not enough evidence yet.
        assert_eq!(sb.on_ack(0, &[block(1, 3)], 3), 0);
        assert!(!sb.get(0).unwrap().lost);
        // Third SACK above seals it.
        assert_eq!(sb.on_ack(0, &[block(1, 4)], 3), 1);
        assert!(sb.get(0).unwrap().lost);
        assert_eq!(sb.next_lost(), Some(0));
        // In flight excludes both the lost packet and the SACKed ones.
        assert_eq!(sb.in_flight(), 2); // packets 4, 5
    }

    #[test]
    fn multiple_holes_all_declared() {
        let mut sb = sb_with_sent(10);
        // Holes at 0 and 2; SACKs at 1 and 3..=8.
        let lost = sb.on_ack(0, &[block(1, 2), block(3, 9)], 3);
        assert_eq!(lost, 2);
        assert_eq!(sb.next_lost(), Some(0));
    }

    #[test]
    fn retransmission_clears_lost_flag() {
        let mut sb = sb_with_sent(5);
        sb.on_ack(0, &[block(1, 5)], 3);
        assert_eq!(sb.next_lost(), Some(0));
        sb.on_send(0, SimTime::from_secs(99));
        assert_eq!(sb.next_lost(), None);
        let p = sb.get(0).unwrap();
        assert!(p.retransmitted && !p.lost);
        // A retransmitted hole is back in flight.
        assert_eq!(sb.in_flight(), 1);
    }

    #[test]
    fn retransmitted_hole_not_redeclared() {
        let mut sb = sb_with_sent(6);
        sb.on_ack(0, &[block(1, 5)], 3);
        sb.on_send(0, SimTime::from_secs(99));
        // More SACKs arrive; packet 0 is retransmitted, must not be lost
        // again by the same evidence.
        assert_eq!(sb.on_ack(0, &[block(1, 6)], 3), 0);
        assert_eq!(sb.next_lost(), None);
    }

    #[test]
    fn timeout_marks_everything_unsacked() {
        let mut sb = sb_with_sent(4);
        sb.on_ack(0, &[block(2, 3)], 3);
        let n = sb.mark_all_lost();
        assert_eq!(n, 3); // 0, 1, 3 (2 is SACKed)
        assert_eq!(sb.in_flight(), 0);
        assert_eq!(sb.next_lost(), Some(0));
    }

    #[test]
    fn cum_ack_supersedes_sack_state() {
        let mut sb = sb_with_sent(6);
        sb.on_ack(0, &[block(1, 5)], 3); // 0 lost
        sb.on_send(0, SimTime::from_secs(9));
        // Retransmission delivered: cum ack jumps over everything sacked.
        sb.on_ack(5, &[], 3);
        assert_eq!(sb.outstanding(), 1); // only packet 5
        assert_eq!(sb.cum_ack(), 5);
    }

    #[test]
    fn oldest_sent_time_tracks_unsacked_only() {
        let mut sb = sb_with_sent(3); // sent at t=0,1,2
        sb.on_ack(0, &[block(0, 1)], 3); // SACK packet 0 (degenerate but legal)
        assert_eq!(sb.oldest_sent_at(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn reception_and_loss_queries() {
        let mut sb = sb_with_sent(6);
        sb.on_ack(1, &[block(2, 5)], 3); // hole at 1? no: cum=1, hole at 1.., sacked 2..5
        assert!(sb.is_received(0), "below cum ack");
        assert!(sb.is_received(3), "sacked");
        assert!(!sb.is_received(1), "the hole");
        assert!(!sb.is_received(5), "in flight");
        assert!(sb.is_lost(1), "three sacks above the hole");
        assert_eq!(sb.lost_unretransmitted(), vec![1]);
        sb.on_send(1, SimTime::from_secs(9));
        assert!(sb.lost_unretransmitted().is_empty());
    }

    #[test]
    fn stale_sack_below_cum_ack_ignored() {
        let mut sb = sb_with_sent(5);
        sb.on_ack(4, &[], 3);
        // A reordered ack with old SACK info must not resurrect state.
        let lost = sb.on_ack(2, &[block(0, 2)], 3);
        assert_eq!(lost, 0);
        assert_eq!(sb.cum_ack(), 4);
        assert_eq!(sb.outstanding(), 1);
    }
}
