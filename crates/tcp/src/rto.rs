//! Retransmission-timeout estimation.
//!
//! The estimator now lives in the shared [`transport`] crate (the RLA's
//! per-receiver estimators and the baselines use the same code); this
//! module re-exports it under its historical path.

pub use transport::rtt::RttEstimator;
