//! Round-trip time estimation and the retransmission timeout.
//!
//! Jacobson's estimator (`srtt`, `rttvar`) with exponential backoff, as in
//! RFC 6298 and the NS2 agents the paper simulated against.

use netsim::time::SimDuration;

/// RTT estimator and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    /// Current backoff multiplier (doubles per timeout, resets on new ack).
    backoff: u32,
}

impl RttEstimator {
    /// A fresh estimator with the given RTO clamp.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Fold in a new RTT sample (and clear any timeout backoff, since a
    /// sample implies forward progress).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                // rttvar <- 3/4 rttvar + 1/4 |err| ; srtt <- 7/8 srtt + 1/8 rtt
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() / 4) * 3 + err.as_nanos() / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() / 8) * 7 + rtt.as_nanos() / 8,
                ));
            }
        }
        self.backoff = 0;
    }

    /// The smoothed round-trip time, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The current retransmission timeout (backoff included, clamped).
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => SimDuration::from_secs(3), // RFC 6298 initial RTO
            Some(srtt) => srtt.saturating_add(self.rttvar * 4),
        };
        let factor = 1u64 << self.backoff.min(16);
        let backed = SimDuration::from_nanos(base.as_nanos().saturating_mul(factor));
        backed.clamp(self.min_rto, self.max_rto)
    }

    /// A retransmission timer expired: double the RTO.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimDuration::from_millis(200), SimDuration::from_secs(64))
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = est();
        assert_eq!(e.srtt(), None);
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges_to_constant_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap().as_secs_f64();
        assert!((srtt - 0.080).abs() < 0.001, "srtt = {srtt}");
        // With zero variance the RTO pins at the minimum.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 2);
        e.on_timeout();
        assert_eq!(e.rto().as_nanos(), base.as_nanos() * 4);
        e.sample(SimDuration::from_millis(100));
        assert!(e.rto() <= base, "backoff must clear on a new sample");
    }

    #[test]
    fn rto_clamped_at_max() {
        let mut e = est();
        e.sample(SimDuration::from_secs(1));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(64));
    }

    #[test]
    fn initial_rto_without_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(3));
    }
}
