//! A TCP Reno sender: duplicate-ack loss detection, no SACK scoreboard.
//!
//! The first alternative [`CongestionControl`] policy riding on the shared
//! transport layer. Where [`crate::TcpSender`] detects losses with the
//! RFC 2018 scoreboard and retransmits every declared hole, Reno infers a
//! single loss from the third duplicate cumulative ack, fast-retransmits
//! that one packet, and continues NewReno-style on partial acks; a
//! retransmission timeout falls back to go-back-N from the cumulative
//! ack. It talks to the ordinary [`crate::TcpReceiver`] and simply
//! ignores the SACK blocks in its acknowledgments.
//!
//! RTT samples follow Karn's algorithm: acks covering a retransmitted
//! segment are ambiguous and never update the estimator
//! ([`RttEstimator::karn_sample`]); the scoreboard sender has no such
//! guard because its per-segment send times make samples unambiguous.

use std::any::Any;
use std::collections::BTreeSet;

use netsim::agent::Agent;
use netsim::engine::Context;
use netsim::id::AgentId;
use netsim::packet::{Dest, Packet};
use netsim::time::SimTime;
use netsim::wire::{Segment, TcpAck, TcpData};

use transport::{
    AckEvent, CcSignals, CongestionControl, RenoCc, RexmitTimer, RttEstimator, WindowState,
};

use crate::config::TcpConfig;
use crate::sender::SenderStats;

/// A TCP Reno sender with infinite data.
pub struct RenoSender {
    cfg: TcpConfig,
    receiver: AgentId,
    win: WindowState,
    cc: RenoCc,
    /// Highest cumulative ack heard.
    cum_ack: u64,
    /// Next sequence the window will release (rewinds on timeout).
    high_seq: u64,
    /// Next never-before-sent sequence; anything below it is a
    /// retransmission when sent again.
    high_water: u64,
    rtt: RttEstimator,
    timer: RexmitTimer,
    /// Unacked sequences that have been retransmitted (Karn's ambiguity
    /// set; pruned as the cumulative ack advances).
    retransmitted: BTreeSet<u64>,
    /// Path signals for the policy (RenoCc is signal-blind, but the v2
    /// seam feeds every policy the same view).
    signals: CcSignals,
    /// Collected statistics.
    pub stats: SenderStats,
}

impl RenoSender {
    /// A Reno sender that will stream to `receiver`.
    pub fn new(receiver: AgentId, cfg: TcpConfig) -> Self {
        cfg.validate();
        let win = WindowState::new(cfg.initial_cwnd, cfg.initial_ssthresh, cfg.max_cwnd);
        let cwnd = win.cwnd();
        RenoSender {
            rtt: RttEstimator::new(cfg.min_rto, cfg.max_rto),
            cc: RenoCc::new(cfg.dupack_threshold),
            cfg,
            receiver,
            win,
            cum_ack: 0,
            high_seq: 0,
            high_water: 0,
            timer: RexmitTimer::new(),
            retransmitted: BTreeSet::new(),
            signals: CcSignals::new(),
            stats: SenderStats::new(SimTime::ZERO, cwnd),
        }
    }

    /// Current congestion window, packets.
    pub fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    /// Current slow-start threshold, packets.
    pub fn ssthresh(&self) -> f64 {
        self.win.ssthresh()
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<netsim::time::SimDuration> {
        self.rtt.srtt()
    }

    /// Discard statistics collected so far and start a fresh window at
    /// `now` (end-of-warmup reset).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.stats = SenderStats::new(now, self.win.cwnd());
    }

    fn try_send(&mut self, ctx: &mut Context<'_>) {
        loop {
            let in_flight = self.high_seq.saturating_sub(self.cum_ack);
            if in_flight >= self.cc.allowed_window(&self.win, &self.signals) {
                break;
            }
            // Receiver-buffer bound, as in the SACK sender.
            if self.high_seq >= self.cum_ack + self.cfg.max_cwnd as u64 {
                break;
            }
            let seq = self.high_seq;
            self.high_seq += 1;
            self.transmit(ctx, seq);
        }
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, seq: u64) {
        let now = ctx.now();
        let retransmit = seq < self.high_water;
        if retransmit {
            self.retransmitted.insert(seq);
            self.stats.retransmits += 1;
        }
        self.high_water = self.high_water.max(seq + 1);
        self.stats.data_sent += 1;
        ctx.send(
            Dest::Agent(self.receiver),
            self.cfg.packet_size,
            Segment::TcpData(TcpData {
                seq,
                retransmit,
                timestamp: now,
            }),
        );
    }

    fn on_ack(&mut self, ack: &TcpAck, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let advanced = ack.cum_ack.saturating_sub(self.cum_ack);
        // Karn: the sample is ambiguous if the newly covered range holds
        // any retransmitted segment (the echoed timestamp may answer
        // either copy).
        let ambiguous = advanced == 0
            || self
                .retransmitted
                .range(self.cum_ack..ack.cum_ack)
                .next()
                .is_some();
        let sample_taken = self
            .rtt
            .karn_sample(now.saturating_since(ack.echo_timestamp), ambiguous);
        if sample_taken {
            self.stats
                .rtt
                .push(now.saturating_since(ack.echo_timestamp).as_secs_f64());
        }

        if advanced > 0 {
            self.retransmitted = self.retransmitted.split_off(&ack.cum_ack);
            self.stats.delivered += advanced;
            self.cum_ack = ack.cum_ack;
            self.high_seq = self.high_seq.max(self.cum_ack);
        }

        let ev = AckEvent {
            cum_ack: self.cum_ack,
            newly_acked: advanced,
            newly_delivered: advanced, // no selective acks to report early
            newly_lost: 0,             // no scoreboard: RenoCc counts duplicates itself
            high_seq: self.high_seq,
            ack_time: now,
            // Only unambiguous (Karn-accepted) samples feed the filters.
            rtt_sample: sample_taken.then(|| now.saturating_since(ack.echo_timestamp)),
            in_flight: self.high_seq.saturating_sub(self.cum_ack),
            // No per-segment send state without a scoreboard: the
            // delivery-rate sample stays absent (RenoCc never reads it).
            rate: None,
        };
        self.signals.on_ack(&ev);
        let out = self.cc.on_ack(&mut self.win, &ev, &self.signals);
        self.stats.window_cuts += out.cuts;
        self.stats.cwnd_avg.set(now, self.win.cwnd());
        if let Some(seq) = out.retransmit {
            self.transmit(ctx, seq);
        }

        if advanced > 0 {
            self.timer.arm(ctx, self.rtt.rto());
        }
        self.try_send(ctx);
    }

    fn on_timeout(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        if self.high_seq == self.cum_ack {
            return; // nothing outstanding; idle
        }
        self.rtt.on_timeout();
        self.cc.on_timeout(&mut self.win, now);
        self.stats.cwnd_avg.set(now, self.win.cwnd());
        self.stats.timeouts += 1;
        // Go-back-N: without per-segment state, resume from the hole. The
        // receiver's buffered out-of-order data turns the resent prefix
        // into fast cumulative jumps.
        self.high_seq = self.cum_ack;
        self.timer.arm(ctx, self.rtt.rto());
        self.try_send(ctx);
    }
}

impl telemetry::FlowProbe for RenoSender {
    fn probe_kind(&self) -> &'static str {
        "reno"
    }

    fn flow_sample(&self) -> telemetry::FlowSample {
        telemetry::FlowSample {
            cwnd: self.cwnd(),
            ssthresh: Some(self.ssthresh()),
            awnd: None,
            rtt: self.srtt().map(|d| d.as_secs_f64()),
        }
    }
}

impl Agent for RenoSender {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.stats = SenderStats::new(ctx.now(), self.win.cwnd());
        self.try_send(ctx);
        self.timer.arm(ctx, self.rtt.rto());
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match packet.segment {
            Segment::TcpAck(ack) => self.on_ack(&ack, ctx),
            other => debug_assert!(false, "Reno sender got {}", other.kind_str()),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if !self.timer.is_current(token) {
            return; // superseded timer
        }
        self.on_timeout(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::engine::Engine;
    use netsim::queue::QueueConfig;
    use netsim::time::SimDuration;

    use crate::receiver::TcpReceiver;

    fn one_flow(
        bandwidth_bps: u64,
        delay: SimDuration,
        qcfg: &QueueConfig,
    ) -> (Engine, AgentId, AgentId) {
        let mut e = Engine::new(3);
        let a = e.add_node("a");
        let b = e.add_node("b");
        e.add_link(a, b, bandwidth_bps, delay, qcfg);
        let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
        let tx = e.add_agent(a, Box::new(RenoSender::new(rx, TcpConfig::default())));
        e.compute_routes();
        e.start_agent_at(tx, SimTime::ZERO);
        (e, tx, rx)
    }

    #[test]
    fn fills_an_uncongested_pipe() {
        let (mut e, tx, rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::DropTail { limit: 100 },
        );
        e.run_until(SimTime::from_secs(30));
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        assert!(
            rx.stats.delivered > 28_000,
            "delivered {}",
            rx.stats.delivered
        );
        let tx: &RenoSender = e.agent_as(tx).unwrap();
        assert_eq!(tx.stats.timeouts, 0, "no timeouts on a clean path");
    }

    #[test]
    fn congestion_causes_fast_retransmits_not_stalls() {
        let (mut e, tx, rx) = one_flow(
            800_000, // 100 pkt/s
            SimDuration::from_millis(50),
            &QueueConfig::DropTail { limit: 10 },
        );
        e.run_until(SimTime::from_secs(60));
        let txs: &RenoSender = e.agent_as(tx).unwrap();
        assert!(txs.stats.window_cuts > 5, "cuts: {}", txs.stats.window_cuts);
        assert!(
            txs.stats.window_cuts > txs.stats.timeouts,
            "losses should mostly be repaired by fast retransmit \
             ({} cuts vs {} timeouts)",
            txs.stats.window_cuts,
            txs.stats.timeouts
        );
        let rx: &TcpReceiver = e.agent_as(rx).unwrap();
        let rate = rx.stats.delivered as f64 / 60.0;
        assert!(
            rate > 70.0 && rate <= 101.0,
            "goodput {rate} pkt/s should stay near 100"
        );
    }

    #[test]
    fn recovers_from_total_blackout_via_timeout() {
        use netsim::fault::FaultInjector;
        let (mut e, tx, _rx) = one_flow(
            8_000_000,
            SimDuration::from_millis(10),
            &QueueConfig::paper_droptail(),
        );
        let ch = e.world().node(netsim::id::NodeId(0)).out_channels[0];
        e.run_until(SimTime::from_secs(2));
        e.set_fault(ch, FaultInjector::new(1.0));
        e.run_until(SimTime::from_secs(6));
        let timeouts_mid = {
            let t: &RenoSender = e.agent_as(tx).unwrap();
            t.stats.timeouts
        };
        assert!(timeouts_mid >= 1, "blackout must cause timeouts");
        e.world_mut().channel_mut(ch).fault = None;
        let before = {
            let t: &RenoSender = e.agent_as(tx).unwrap();
            t.stats.delivered
        };
        e.run_until(SimTime::from_secs(12));
        let t: &RenoSender = e.agent_as(tx).unwrap();
        assert!(
            t.stats.delivered > before + 1000,
            "flow must resume after the path heals ({} -> {})",
            before,
            t.stats.delivered
        );
    }

    #[test]
    fn reno_and_sack_reach_comparable_goodput() {
        // Reno can only repair one loss per round trip where SACK repairs
        // a whole burst, but on a mild single-loss-dominated path the two
        // must land in the same ballpark: large divergence either way
        // means one of them is ignoring losses or stalling.
        use crate::sender::TcpSender;
        let run_sack = || {
            let mut e = Engine::new(3);
            let a = e.add_node("a");
            let b = e.add_node("b");
            e.add_link(
                a,
                b,
                800_000,
                SimDuration::from_millis(50),
                &QueueConfig::DropTail { limit: 5 },
            );
            let rx = e.add_agent(b, Box::new(TcpReceiver::new(40)));
            let tx = e.add_agent(a, Box::new(TcpSender::new(rx, TcpConfig::default())));
            e.compute_routes();
            e.start_agent_at(tx, SimTime::ZERO);
            e.run_until(SimTime::from_secs(60));
            e.agent_as::<TcpReceiver>(rx).unwrap().stats.delivered
        };
        let (mut e, _tx, rx) = one_flow(
            800_000,
            SimDuration::from_millis(50),
            &QueueConfig::DropTail { limit: 5 },
        );
        e.run_until(SimTime::from_secs(60));
        let reno = e.agent_as::<TcpReceiver>(rx).unwrap().stats.delivered;
        let sack = run_sack();
        assert!(reno > 2_000, "Reno must keep moving (delivered {reno})");
        let ratio = (reno as f64 / sack as f64).max(sack as f64 / reno as f64);
        assert!(
            ratio < 1.5,
            "Reno ({reno}) and SACK ({sack}) should be comparable"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut e, tx, _) = one_flow(
                800_000,
                SimDuration::from_millis(20),
                &QueueConfig::DropTail { limit: 8 },
            );
            e.run_until(SimTime::from_secs(30));
            let t: &RenoSender = e.agent_as(tx).unwrap();
            (t.stats.delivered, t.stats.window_cuts, t.stats.timeouts)
        };
        assert_eq!(run(), run());
    }
}
