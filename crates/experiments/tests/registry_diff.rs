//! End-to-end test of the `rla_diff` binary against the committed golden
//! manifests: a copy with exactly one perturbed metric must be flagged as
//! drift naming exactly that key, identical manifests must exit 0, and
//! usage errors must exit 2.

use std::path::{Path, PathBuf};
use std::process::Command;

use experiments::manifest::Json;

fn golden() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden/case5_droptail_60s.manifest.json")
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rla_diff_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn rla_diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rla_diff"))
        .args(args)
        // The test must not inherit a threshold from the caller's shell.
        .env_remove("RLA_DIFF_THRESHOLD_PCT")
        .output()
        .expect("run rla_diff")
}

/// Double `key` in the first run's registry, returning the old value.
fn perturb(manifest: &mut Json, key: &str) -> f64 {
    let Json::Obj(fields) = manifest else {
        panic!("manifest is not an object")
    };
    let runs = &mut fields
        .iter_mut()
        .find(|(k, _)| k == "runs")
        .expect("runs field")
        .1;
    let Json::Arr(runs) = runs else {
        panic!("runs is not an array")
    };
    let Json::Obj(run) = &mut runs[0] else {
        panic!("run is not an object")
    };
    let registry = &mut run
        .iter_mut()
        .find(|(k, _)| k == "registry")
        .expect("registry field")
        .1;
    let Json::Obj(entries) = registry else {
        panic!("registry is not an object")
    };
    let value = &mut entries
        .iter_mut()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("no {key} in golden registry"))
        .1;
    match value {
        Json::Int(v) => {
            let old = *v;
            *v *= 2;
            old as f64
        }
        Json::Num(v) => {
            let old = *v;
            *v *= 2.0;
            old
        }
        other => panic!("{key} is not numeric: {other:?}"),
    }
}

#[test]
fn identical_manifests_exit_zero() {
    let golden = golden();
    let golden = golden.to_str().expect("utf-8 path");
    let out = rla_diff(&[golden, golden]);
    assert!(
        out.status.success(),
        "self-diff should exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("registries match"), "{stdout}");
}

#[test]
fn a_perturbed_metric_is_flagged_by_name() {
    let text = std::fs::read_to_string(golden()).expect("read golden");
    let mut manifest = Json::parse(&text).expect("parse golden");
    let old = perturb(&mut manifest, "net.offered");
    assert!(old > 0.0, "net.offered should be a busy counter");
    let perturbed = scratch_dir().join("perturbed.manifest.json");
    std::fs::write(&perturbed, manifest.pretty()).expect("write perturbed copy");

    let golden = golden();
    let out = rla_diff(&[
        golden.to_str().unwrap(),
        perturbed.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(1), "doubling a counter is drift");

    let report = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("parse --json output");
    assert_eq!(report.get("drift"), Some(&Json::Bool(true)));
    let runs = report.get("runs").and_then(Json::as_arr).expect("runs");
    assert_eq!(runs.len(), 1);
    let drifted = runs[0]
        .get("drifted")
        .and_then(Json::as_arr)
        .expect("drifted");
    assert_eq!(drifted.len(), 1, "exactly the perturbed key must drift");
    assert_eq!(
        drifted[0].get("key").and_then(Json::as_str),
        Some("net.offered")
    );
    assert_eq!(
        drifted[0].get("rel_pct").and_then(Json::as_f64),
        Some(100.0)
    );
    assert_eq!(
        runs[0]
            .get("added")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert_eq!(
        runs[0]
            .get("removed")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );

    // The human table names the key too, and still exits 1.
    let out = rla_diff(&[golden.to_str().unwrap(), perturbed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let table = String::from_utf8_lossy(&out.stdout);
    assert!(table.contains("net.offered"), "{table}");
    assert!(table.contains("+100.00%"), "{table}");

    std::fs::remove_file(&perturbed).ok();
}

#[test]
fn a_generous_threshold_silences_the_drift() {
    let text = std::fs::read_to_string(golden()).expect("read golden");
    let mut manifest = Json::parse(&text).expect("parse golden");
    perturb(&mut manifest, "net.offered");
    let perturbed = scratch_dir().join("perturbed_threshold.manifest.json");
    std::fs::write(&perturbed, manifest.pretty()).expect("write perturbed copy");

    let golden = golden();
    let out = rla_diff(&[
        golden.to_str().unwrap(),
        perturbed.to_str().unwrap(),
        "--threshold",
        "150",
    ]);
    assert!(
        out.status.success(),
        "+100% is under a 150% threshold: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_file(&perturbed).ok();
}

#[test]
fn usage_and_parse_errors_exit_two() {
    let out = rla_diff(&[]);
    assert_eq!(out.status.code(), Some(2), "no paths is a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let golden = golden();
    let out = rla_diff(&[golden.to_str().unwrap(), "/nonexistent/manifest.json"]);
    assert_eq!(out.status.code(), Some(2), "missing file is an error");

    let garbage = scratch_dir().join("garbage.manifest.json");
    std::fs::write(&garbage, "not json {").expect("write garbage");
    let out = rla_diff(&[golden.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "parse error is an error");
    std::fs::remove_file(&garbage).ok();

    let out = rla_diff(&[
        golden.to_str().unwrap(),
        golden.to_str().unwrap(),
        "--frobnicate",
    ]);
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");
}
