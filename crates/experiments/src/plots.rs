//! ASCII rendering of the paper's figures (4, 5 and the §3.1 time
//! series) plus CSV emission for external plotting.

use analysis::particle::{DriftVector, ParticleStats};
use netsim::time::SimTime;

/// Render the drift field of figure 4 as a grid of arrows. Each cell shows
/// the dominant drift direction of `(W₁, W₂)` at that point.
pub fn render_drift_field(field: &[DriftVector], w_max: f64, step: f64) -> String {
    let cells = (w_max / step).round() as usize;
    let mut grid = vec![vec![' '; cells]; cells];
    for v in field {
        let x = ((v.w1 / step).round() as usize).saturating_sub(1);
        let y = ((v.w2 / step).round() as usize).saturating_sub(1);
        if x >= cells || y >= cells {
            continue;
        }
        grid[y][x] = arrow(v.dx, v.dy);
    }
    let mut out = String::new();
    out.push_str("w2\n");
    for (row_idx, row) in grid.iter().enumerate().rev() {
        out.push_str(&format!("{:>5.0} |", (row_idx + 1) as f64 * step));
        for &c in row {
            out.push(' ');
            out.push(c);
        }
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"--".repeat(cells));
    out.push_str("  w1\n");
    out
}

fn arrow(dx: f64, dy: f64) -> char {
    let eps = 1e-9;
    match (dx > eps, dx < -eps, dy > eps, dy < -eps) {
        (true, _, true, _) => '7',  // up-right (NE)
        (_, true, _, true) => 'L',  // down-left (SW)
        (true, _, _, true) => '\\', // right-down
        (_, true, true, _) => '/',  // left-up
        (true, _, _, _) => '>',
        (_, true, _, _) => '<',
        (_, _, true, _) => '^',
        (_, _, _, true) => 'v',
        _ => 'o',
    }
}

/// Render the occupancy histogram of figure 5 as an ASCII density map
/// (darker characters = more probability mass), downsampled into
/// `bins x bins` cells over `[0, grid_max]²`.
pub fn render_density(stats: &ParticleStats, grid_max: usize, bins: usize) -> String {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let cell = (grid_max + bins - 1) / bins.max(1);
    let mut density = vec![vec![0u64; bins]; bins];
    for (x, row) in stats.histogram.iter().enumerate() {
        for (y, &c) in row.iter().enumerate() {
            let bx = (x / cell.max(1)).min(bins - 1);
            let by = (y / cell.max(1)).min(bins - 1);
            density[by][bx] += c;
        }
    }
    let max = density
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    out.push_str("cwnd2\n");
    for (by, row) in density.iter().enumerate().rev() {
        out.push_str(&format!("{:>5} |", by * cell));
        for &c in row {
            // Log-ish scaling so the tails stay visible.
            let frac = (c as f64 / max as f64).sqrt();
            let idx = ((frac * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            out.push(shades[idx]);
            out.push(shades[idx]);
        }
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"--".repeat(bins));
    out.push_str("  cwnd1\n");
    out
}

/// Emit a queue-occupancy time series (the §3.1 buffer-period trace) as
/// CSV: `time_secs,qlen`.
pub fn queue_series_csv(samples: &[(SimTime, usize)]) -> String {
    let mut out = String::from("time_secs,qlen\n");
    for &(t, q) in samples {
        out.push_str(&format!("{:.6},{}\n", t.as_secs_f64(), q));
    }
    out
}

/// Render a queue-occupancy time series as a small ASCII strip chart:
/// one column per sample bucket, height proportional to the mean queue
/// length in the bucket.
pub fn render_queue_series(
    samples: &[(SimTime, usize)],
    buckets: usize,
    height: usize,
    capacity: usize,
) -> String {
    if samples.is_empty() {
        return String::from("(no samples)\n");
    }
    let t0 = samples.first().expect("nonempty").0.as_secs_f64();
    let t1 = samples.last().expect("nonempty").0.as_secs_f64();
    let span = (t1 - t0).max(1e-9);
    let mut sums = vec![0.0f64; buckets];
    let mut counts = vec![0u64; buckets];
    for &(t, q) in samples {
        let b = (((t.as_secs_f64() - t0) / span) * buckets as f64) as usize;
        let b = b.min(buckets - 1);
        sums[b] += q as f64;
        counts[b] += 1;
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let mut out = String::new();
    for level in (1..=height).rev() {
        let threshold = capacity as f64 * level as f64 / height as f64;
        out.push_str(&format!("{threshold:>5.1} |"));
        for &m in &means {
            out.push(if m >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(buckets));
    out.push_str(&format!("  ({t0:.1}s .. {t1:.1}s)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::particle::{drift_field, simulate_particle};

    #[test]
    fn drift_field_renders_every_cell() {
        let field = drift_field(3, 10.0, 20.0, 2.0);
        let s = render_drift_field(&field, 20.0, 2.0);
        assert!(s.contains("w1"));
        // Below the pipe the drift is up-right.
        assert!(s.contains('7'));
    }

    #[test]
    fn density_marks_the_fair_point_darkest() {
        let stats = simulate_particle(3, 40.0, 100_000, 5, 80);
        let s = render_density(&stats, 80, 20);
        assert!(s.contains('@') || s.contains('%') || s.contains('#'));
    }

    #[test]
    fn queue_series_outputs() {
        let samples = vec![
            (SimTime::from_secs(1), 0),
            (SimTime::from_secs(2), 10),
            (SimTime::from_secs(3), 20),
        ];
        let csv = queue_series_csv(&samples);
        assert!(csv.starts_with("time_secs,qlen"));
        assert_eq!(csv.lines().count(), 4);
        let strip = render_queue_series(&samples, 10, 5, 20);
        assert!(strip.contains('#'));
    }

    #[test]
    fn empty_queue_series_is_handled() {
        assert_eq!(render_queue_series(&[], 10, 5, 20), "(no samples)\n");
    }
}
