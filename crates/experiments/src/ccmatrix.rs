//! The CC-pairing fairness sweep behind `cc_matrix` (and, reduced to two
//! variants and two cases, `reno_cmp`).
//!
//! The paper's tables fix the background TCP flavor at SACK; with the
//! controller pluggable (`tcp_sack::CcVariant`), the natural regression
//! surface is the full grid: every registered congestion controller ×
//! every §5 congestion case, each cell measuring how fairly the RLA and
//! the competing TCP flows share the soft bottleneck. This module runs
//! the grid, summarizes each cell with Jain's index and the worst
//! pairwise ratio (`analysis::fairness`), and renders one manifest whose
//! runs carry a `tcp_cc` field — `rla_diff` aligns on it (see
//! [`crate::diff`]), so a committed matrix manifest regression-gates the
//! fairness ratios of every pairing at once.

use netsim::time::SimDuration;
use tcp_sack::CcVariant;

use crate::manifest::{scenario_entry, Json};
use crate::metrics::ScenarioResult;
use crate::runner::run_parallel;
use crate::spec::ScenarioSpec;
use crate::tree::CongestionCase;

/// The sweep grid: which cases and controllers, how long, which seed.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Congestion cases, one row group each.
    pub cases: Vec<CongestionCase>,
    /// Controllers, one row per case.
    pub variants: Vec<CcVariant>,
    /// Simulated length of every cell.
    pub duration: SimDuration,
    /// RNG seed shared by every cell (same network, different CC).
    pub seed: u64,
}

impl MatrixConfig {
    /// The full grid: every registered controller × the five §5 cases.
    pub fn full(duration: SimDuration, seed: u64) -> Self {
        MatrixConfig {
            cases: CongestionCase::FIGURE7_CASES.to_vec(),
            variants: CcVariant::all().collect(),
            duration,
            seed,
        }
    }
}

/// One completed cell of the grid.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The congestion case this cell ran.
    pub case: CongestionCase,
    /// The background TCP controller it ran against.
    pub cc: CcVariant,
    /// The measured run.
    pub result: ScenarioResult,
}

impl MatrixCell {
    /// Throughputs of every flow crossing the cell's soft bottleneck:
    /// the RLA session(s) first, then the bottleneck TCP flows — the
    /// population the fairness summaries describe.
    pub fn bottleneck_throughputs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self.result.rla.iter().map(|r| r.throughput_pps).collect();
        xs.extend(
            self.result
                .bottleneck_tcp()
                .iter()
                .map(|t| t.throughput_pps),
        );
        xs
    }

    /// Jain's index over [`bottleneck_throughputs`].
    ///
    /// [`bottleneck_throughputs`]: MatrixCell::bottleneck_throughputs
    pub fn jain(&self) -> f64 {
        analysis::jain_index(&self.bottleneck_throughputs())
    }

    /// Worst pairwise ratio over [`bottleneck_throughputs`].
    ///
    /// [`bottleneck_throughputs`]: MatrixCell::bottleneck_throughputs
    pub fn worst_pair(&self) -> f64 {
        analysis::worst_pair_ratio(&self.bottleneck_throughputs())
    }

    /// `λ_RLA / λ_WTCP`, the paper's headline fairness ratio.
    pub fn rla_over_wtcp(&self) -> f64 {
        let wtcp = self.result.worst_tcp().map_or(0.0, |t| t.throughput_pps);
        self.result.rla[0].throughput_pps / wtcp.max(1e-9)
    }
}

/// Run every (case × variant) cell of the grid in parallel. Cells come
/// back in grid order: cases outer, variants inner.
pub fn run_matrix(cfg: &MatrixConfig) -> Vec<MatrixCell> {
    let grid: Vec<(CongestionCase, CcVariant)> = cfg
        .cases
        .iter()
        .flat_map(|&case| cfg.variants.iter().map(move |&cc| (case, cc)))
        .collect();
    let scenarios = grid
        .iter()
        .map(|&(case, cc)| {
            ScenarioSpec::paper(case)
                .with_duration(cfg.duration)
                .with_seed(cfg.seed)
                .with_tcp_cc(cc)
                .build()
        })
        .collect();
    grid.into_iter()
        .zip(run_parallel(scenarios))
        .map(|((case, cc), result)| MatrixCell { case, cc, result })
        .collect()
}

/// A [`scenario_entry`] with the run's controller recorded as a `tcp_cc`
/// field right after `gateway` — the layout `reno_cmp` has always
/// written, now shared with `cc_matrix`. `rla_diff` keys run alignment
/// on this field.
pub fn entry_with_cc(r: &ScenarioResult, cc: CcVariant) -> Json {
    let mut entry = scenario_entry(r);
    if let Json::Obj(ref mut fields) = entry {
        fields.insert(2, ("tcp_cc".to_string(), cc.name().into()));
    }
    entry
}

/// The fairness summary block of one cell.
pub fn fairness_json(cell: &MatrixCell) -> Json {
    Json::obj(vec![
        ("jain", cell.jain().into()),
        (
            "worst_pair_ratio",
            // `+∞` (a starved flow) is not a JSON number; report null so
            // the manifest stays parseable and the starvation is visible.
            if cell.worst_pair().is_finite() {
                cell.worst_pair().into()
            } else {
                Json::Null
            },
        ),
        ("rla_over_wtcp", cell.rla_over_wtcp().into()),
    ])
}

/// The `cc_matrix` manifest: the standard scenario-manifest shape with
/// `tcp_cc` and a per-run `fairness` block appended to every entry.
pub fn matrix_manifest(binary: &str, cfg: &MatrixConfig, cells: &[MatrixCell]) -> Json {
    let runs = cells
        .iter()
        .map(|cell| {
            let mut entry = entry_with_cc(&cell.result, cell.cc);
            if let Json::Obj(ref mut fields) = entry {
                fields.push(("fairness".to_string(), fairness_json(cell)));
            }
            entry
        })
        .collect();
    Json::obj(vec![
        ("binary", binary.into()),
        ("duration_secs", cfg.duration.as_secs_f64().into()),
        ("seed", cfg.seed.into()),
        (
            "tcp_cc_variants",
            Json::Arr(cfg.variants.iter().map(|v| v.name().into()).collect()),
        ),
        ("runs", Json::Arr(runs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GatewayKind;

    fn tiny_matrix() -> (MatrixConfig, Vec<MatrixCell>) {
        let cfg = MatrixConfig {
            cases: vec![CongestionCase::Case1RootLink],
            variants: vec![CcVariant::sack(), CcVariant::parse("cubic").unwrap()],
            duration: SimDuration::from_secs(60),
            seed: 1,
        };
        let cells = run_matrix(&cfg);
        (cfg, cells)
    }

    #[test]
    fn matrix_runs_the_grid_in_order_and_summarizes_fairness() {
        let (cfg, cells) = tiny_matrix();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].cc.name(), "sack");
        assert_eq!(cells[1].cc.name(), "cubic");
        for cell in &cells {
            assert_eq!(cell.case, CongestionCase::Case1RootLink);
            assert_eq!(cell.result.gateway, GatewayKind::DropTail);
            let j = cell.jain();
            assert!(
                (0.0..=1.0 + 1e-12).contains(&j),
                "{}: jain {j} out of range",
                cell.cc
            );
            assert!(cell.rla_over_wtcp() > 0.0, "{}", cell.cc);
        }
        let manifest = matrix_manifest("cc_matrix", &cfg, &cells);
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        for (run, cell) in runs.iter().zip(&cells) {
            assert_eq!(
                run.get("tcp_cc").and_then(Json::as_str),
                Some(cell.cc.name())
            );
            let fairness = run.get("fairness").expect("fairness block");
            assert!(fairness.get("jain").and_then(Json::as_f64).is_some());
        }
        // The manifest round-trips through the JSON parser.
        assert!(Json::parse(&manifest.pretty()).is_ok());
        // And the entry layout matches what reno_cmp has always written:
        // tcp_cc sits right after case and gateway.
        let entry = entry_with_cc(&cells[0].result, cells[0].cc);
        let Json::Obj(fields) = &entry else {
            panic!("entry must be an object")
        };
        assert_eq!(fields[2].0, "tcp_cc");
        assert_eq!(fields[2].1, Json::Str("sack".into()));
    }
}
