//! # experiments — regenerating the paper's evaluation
//!
//! Scenario builders, metric collection and renderers for every table and
//! figure in *Achieving Bounded Fairness for Multicast and TCP Traffic in
//! the Internet* (§5), plus the analytic figures of §4. Each artifact has
//! a binary (see `src/bin/`):
//!
//! | binary          | paper artifact | content |
//! |-----------------|----------------|---------|
//! | `fig4`          | figure 4       | drift field of two competing RLA windows |
//! | `fig5`          | figure 5       | stationary density of `(cwnd₁, cwnd₂)` |
//! | `fig7`          | figure 7       | drop-tail table, 5 congestion cases |
//! | `fig8`          | figure 8       | per-branch congestion-signal statistics |
//! | `fig9`          | figure 9       | RED table, same 5 cases |
//! | `fig10`         | figure 10      | generalized RLA, unequal RTTs |
//! | `sec52`         | §5.2           | two overlapping multicast sessions |
//! | `eq1`           | equation (1)   | PA window vs Monte Carlo |
//! | `eq3`           | equation (3)   | two-receiver fixed point + Lemma |
//! | `theorem_check` | Theorems I/II  | measured ratios vs proved bounds |
//! | `buffer_period` | §3.1           | drop-tail buffer oscillation trace |
//! | `phase_effect`  | §3.1           | drop pattern with/without random overhead |
//! | `baseline_cmp`  | §1             | LTRC/MBFC vs RLA fairness to TCP |
//! | `reno_cmp`      | robustness     | RLA fairness vs the TCP flavor (SACK/Reno) |
//! | `cc_matrix`     | robustness     | every CC variant × the five §5 cases, fairness grid |
//!
//! Run lengths follow the paper (3000 s) unless `RLA_DURATION_SECS` says
//! otherwise; every binary reads its knobs through [`cli`] and describes
//! its scenarios with [`ScenarioSpec`] (see [`prelude`]).
//!
//! Two further binaries are tooling rather than paper artifacts:
//! `debug_probe` (timeline-recorded diagnostic run) and `rla_diff`
//! (registry comparison between two run manifests, see [`diff`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccmatrix;
pub mod cli;
pub mod diff;
pub mod events;
pub mod manifest;
pub mod metrics;
pub mod plots;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod star;
pub mod tables;
pub mod tree;

pub use ccmatrix::{run_matrix, MatrixCell, MatrixConfig};
pub use events::{BackgroundLoad, EventCommand, ScenarioEvent};
pub use manifest::{emit_analysis_manifest, emit_scenario_manifest, Json};
pub use metrics::{BranchSignalStats, RlaRow, ScenarioResult, TcpRow};
pub use runner::{run_parallel, run_parallel_with_jobs};
pub use scenario::{GatewayKind, ScenarioWorld, TreeScenario};
pub use spec::ScenarioSpec;
pub use star::{build_star, BranchSpec, Star};
pub use tree::{build_tree, CongestionCase, TertiaryTree};

/// One-stop imports for experiment binaries.
///
/// ```no_run
/// use experiments::prelude::*;
///
/// let rows: Vec<_> = [CongestionCase::Case1RootLink]
///     .iter()
///     .map(|&case| {
///         ScenarioSpec::paper(case)
///             .with_gateway(GatewayKind::Red)
///             .with_duration(cli::run_duration())
///             .with_seed(cli::base_seed())
///             .run()
///     })
///     .collect();
/// emit_scenario_manifest("example", cli::run_duration(), &rows);
/// ```
pub mod prelude {
    pub use crate::ccmatrix::{run_matrix, MatrixCell, MatrixConfig};
    pub use crate::cli;
    pub use crate::events::{BackgroundLoad, EventCommand, ScenarioEvent};
    pub use crate::manifest::{emit_analysis_manifest, emit_scenario_manifest, Json};
    pub use crate::metrics::{BranchSignalStats, RlaRow, ScenarioResult, TcpRow};
    pub use crate::runner::{run_parallel, run_parallel_with_jobs};
    pub use crate::scenario::{GatewayKind, ScenarioWorld, TreeScenario};
    pub use crate::spec::ScenarioSpec;
    pub use crate::tree::{CongestionCase, TertiaryTree};
    pub use netsim::time::{SimDuration, SimTime};
}
