//! The timed scenario-event layer: receiver churn, link degradation and
//! background-traffic commands executed mid-run.
//!
//! A [`ScenarioEvent`] is a `(time, command)` pair attached to a
//! [`ScenarioSpec`]. The scenario runner
//! executes the schedule through the digest-preserving `run_until`
//! stepping loop (see `ScenarioWorld::run_span`): the engine is advanced
//! to each event's timestamp, the command is applied between events, and
//! stepping never perturbs the packet-event stream — so a run with an
//! *empty* schedule is bit-identical to a run that never heard of events,
//! and a run with a fixed schedule is bit-identical across repetitions
//! and worker-pool sizes.
//!
//! Equal timestamps are serviced in schedule order (FIFO): the sort
//! applied by the spec builder is stable, and the executor drains
//! same-time events in sequence, mirroring the engine calendar's own
//! FIFO tie-break.
//!
//! Schedules come from three places: explicit `with_event(s)` calls, the
//! seed-driven churn synthesizer ([`synth_churn`], knob `RLA_CHURN_RATE`),
//! and a JSON events file (knob `RLA_EVENTS_FILE`, format in
//! EXPERIMENTS.md, parsed by [`events_from_json`]).

use netsim::time::SimDuration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::manifest::Json;
use crate::scenario::GatewayKind;
use crate::spec::ScenarioSpec;
use crate::tree::CongestionCase;

/// A command the scenario runner applies at a scheduled time.
#[derive(Debug, Clone, PartialEq)]
pub enum EventCommand {
    /// A fresh RLA receiver joins `session`'s multicast group at leaf
    /// `leaf` (0-based, `0..27`). It enters the session at the sender's
    /// current sequence and starts feeding acks, the troubled-receiver
    /// count and `min_last_ack` from there.
    ReceiverJoin {
        /// RLA session index.
        session: usize,
        /// Leaf index `0..27`.
        leaf: usize,
    },
    /// The active receiver at `leaf` leaves `session`'s group: it is
    /// pruned from the distribution tree and detached from the sender's
    /// control loop (not an ejection — see `RlaSender::remove_receiver`).
    ReceiverLeave {
        /// RLA session index.
        session: usize,
        /// Leaf index `0..27`.
        leaf: usize,
    },
    /// Degrade the downstream link named by `link` (paper-style label:
    /// `L1`, `L2.1`, `L4.12`): inject random loss and optionally cap the
    /// bandwidth. Degrading an already-degraded link replaces the
    /// override.
    LinkDegrade {
        /// Link label, e.g. `"L2.1"`.
        link: String,
        /// Injected loss probability, `0.0..=1.0` (0 installs no fault
        /// injector — a pure bandwidth override).
        loss: f64,
        /// Bandwidth override in packets/second (1000-byte packets);
        /// `None` keeps the configured bandwidth.
        bandwidth_pps: Option<u64>,
    },
    /// Undo a previous [`EventCommand::LinkDegrade`] on `link`. Restoring
    /// a link that is not degraded is rejected with a clear error.
    LinkRestore {
        /// Link label, e.g. `"L2.1"`.
        link: String,
    },
    /// Fire a one-shot burst of background packets from the root toward
    /// leaf `leaf` — a short flow arriving at a chosen instant.
    StartBackgroundFlow {
        /// Leaf index `0..27` the burst is routed to.
        leaf: usize,
        /// Burst length in 1000-byte packets.
        packets: u32,
    },
}

/// One scheduled command. Times are offsets from simulation start and
/// must fall strictly inside the run (`0 < at < duration`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioEvent {
    /// When the command fires, from simulation start.
    pub at: SimDuration,
    /// What happens.
    pub command: EventCommand,
}

impl ScenarioEvent {
    /// A receiver join at `secs` seconds.
    pub fn join(secs: f64, session: usize, leaf: usize) -> Self {
        ScenarioEvent {
            at: SimDuration::from_secs_f64(secs),
            command: EventCommand::ReceiverJoin { session, leaf },
        }
    }

    /// A receiver leave at `secs` seconds.
    pub fn leave(secs: f64, session: usize, leaf: usize) -> Self {
        ScenarioEvent {
            at: SimDuration::from_secs_f64(secs),
            command: EventCommand::ReceiverLeave { session, leaf },
        }
    }

    /// A link degrade at `secs` seconds.
    pub fn degrade(secs: f64, link: &str, loss: f64, bandwidth_pps: Option<u64>) -> Self {
        ScenarioEvent {
            at: SimDuration::from_secs_f64(secs),
            command: EventCommand::LinkDegrade {
                link: link.to_string(),
                loss,
                bandwidth_pps,
            },
        }
    }

    /// A link restore at `secs` seconds.
    pub fn restore(secs: f64, link: &str) -> Self {
        ScenarioEvent {
            at: SimDuration::from_secs_f64(secs),
            command: EventCommand::LinkRestore {
                link: link.to_string(),
            },
        }
    }

    /// A one-shot background burst at `secs` seconds.
    pub fn background_burst(secs: f64, leaf: usize, packets: u32) -> Self {
        ScenarioEvent {
            at: SimDuration::from_secs_f64(secs),
            command: EventCommand::StartBackgroundFlow { leaf, packets },
        }
    }
}

/// Aggregate Poisson background load sharing the scenario's links (knob
/// `RLA_BG_LOAD`); materialized as a
/// [`PoissonFlowSource`](baselines::PoissonFlowSource) at the tree root
/// spraying short flows at every leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundLoad {
    /// Mean flow arrivals per second.
    pub flows_per_sec: f64,
    /// Mean flow length, packets.
    pub mean_flow_packets: f64,
}

// ---------------------------------------------------------------------
// JSON events-file format
// ---------------------------------------------------------------------

fn command_json(c: &EventCommand) -> Vec<(&'static str, Json)> {
    match c {
        EventCommand::ReceiverJoin { session, leaf } => vec![
            ("command", "receiver_join".into()),
            ("session", (*session).into()),
            ("leaf", (*leaf).into()),
        ],
        EventCommand::ReceiverLeave { session, leaf } => vec![
            ("command", "receiver_leave".into()),
            ("session", (*session).into()),
            ("leaf", (*leaf).into()),
        ],
        EventCommand::LinkDegrade {
            link,
            loss,
            bandwidth_pps,
        } => {
            let mut f = vec![
                ("command", "link_degrade".into()),
                ("link", link.as_str().into()),
                ("loss", (*loss).into()),
            ];
            if let Some(bw) = bandwidth_pps {
                f.push(("bandwidth_pps", (*bw).into()));
            }
            f
        }
        EventCommand::LinkRestore { link } => vec![
            ("command", "link_restore".into()),
            ("link", link.as_str().into()),
        ],
        EventCommand::StartBackgroundFlow { leaf, packets } => vec![
            ("command", "background_burst".into()),
            ("leaf", (*leaf).into()),
            ("packets", u64::from(*packets).into()),
        ],
    }
}

/// One event as a JSON object (`{"t_secs": ..., "command": ..., ...}`).
pub fn event_json(ev: &ScenarioEvent) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![("t_secs", ev.at.as_secs_f64().into())];
    fields.extend(command_json(&ev.command));
    Json::obj(fields)
}

/// A schedule as a JSON array — the manifest's `events` field and the
/// `RLA_EVENTS_FILE` format.
pub fn events_json(events: &[ScenarioEvent]) -> Json {
    Json::Arr(events.iter().map(event_json).collect())
}

fn field_f64(obj: &Json, key: &str, i: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {i}: missing numeric field {key:?}"))
}

fn field_usize(obj: &Json, key: &str, i: usize) -> Result<usize, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("event {i}: missing integer field {key:?}"))
}

fn field_str(obj: &Json, key: &str, i: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("event {i}: missing string field {key:?}"))
}

/// Parse a schedule from JSON: either a bare array of event objects or an
/// object with an `"events"` array (both shapes are accepted so a manifest
/// `events` section can be replayed directly).
pub fn events_from_json(json: &Json) -> Result<Vec<ScenarioEvent>, String> {
    let items = json
        .as_arr()
        .or_else(|| json.get("events").and_then(Json::as_arr))
        .ok_or("expected a JSON array of events or an object with an \"events\" array")?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let t = field_f64(item, "t_secs", i)?;
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!(
                "event {i}: t_secs {t} must be a non-negative number"
            ));
        }
        let at = SimDuration::from_secs_f64(t);
        let kind = field_str(item, "command", i)?;
        let command = match kind.as_str() {
            "receiver_join" => EventCommand::ReceiverJoin {
                session: field_usize(item, "session", i)?,
                leaf: field_usize(item, "leaf", i)?,
            },
            "receiver_leave" => EventCommand::ReceiverLeave {
                session: field_usize(item, "session", i)?,
                leaf: field_usize(item, "leaf", i)?,
            },
            "link_degrade" => EventCommand::LinkDegrade {
                link: field_str(item, "link", i)?,
                loss: field_f64(item, "loss", i)?,
                bandwidth_pps: item.get("bandwidth_pps").and_then(Json::as_u64),
            },
            "link_restore" => EventCommand::LinkRestore {
                link: field_str(item, "link", i)?,
            },
            "background_burst" => EventCommand::StartBackgroundFlow {
                leaf: field_usize(item, "leaf", i)?,
                packets: field_usize(item, "packets", i)? as u32,
            },
            other => {
                return Err(format!(
                    "event {i}: unknown command {other:?} (expected receiver_join, \
                     receiver_leave, link_degrade, link_restore or background_burst)"
                ))
            }
        };
        out.push(ScenarioEvent { at, command });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Seed-driven churn synthesis
// ---------------------------------------------------------------------

/// Salt so the churn stream never aliases the engine RNG stream, which is
/// seeded with the bare scenario seed.
const CHURN_SEED_SALT: u64 = 0x6368_7572_6e5f_7631; // "churn_v1"

/// Synthesize a deterministic churn schedule for session 0: leave/rejoin
/// events at exponential intervals of mean `1/rate_hz`, confined to
/// `(warmup, duration)` so the warmup statistics window stays clean and
/// the sender is guaranteed to have started. The schedule is a pure
/// function of `(rate_hz, seed, warmup, duration)` — it draws from its
/// own salted RNG, never the engine's, so adding churn to a scenario only
/// changes the run through the events themselves.
///
/// At most half of the 27 leaves are ever away at once; a departed leaf
/// is preferred for the next event (rejoin) with probability one half.
pub fn synth_churn(
    rate_hz: f64,
    seed: u64,
    warmup: SimDuration,
    duration: SimDuration,
) -> Vec<ScenarioEvent> {
    assert!(
        rate_hz > 0.0 && rate_hz.is_finite(),
        "churn rate must be positive and finite (got {rate_hz})"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ CHURN_SEED_SALT);
    let leaves = 27usize;
    let max_away = leaves / 2;
    let mut away: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    let margin = SimDuration::from_secs(1);
    let end = if duration > margin {
        SimDuration::from_nanos(duration.as_nanos() - margin.as_nanos())
    } else {
        SimDuration::ZERO
    };
    let mut t = warmup;
    loop {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        t += SimDuration::from_secs_f64(-u.ln() / rate_hz);
        if t >= end {
            break;
        }
        let rejoin = !away.is_empty() && (away.len() >= max_away || rng.gen_bool(0.5));
        let secs = t.as_secs_f64();
        if rejoin {
            let leaf = away.swap_remove(rng.gen_range(0..away.len()));
            events.push(ScenarioEvent::join(secs, 0, leaf));
        } else {
            // Pick a leaf that is currently present.
            let leaf = loop {
                let l = rng.gen_range(0..leaves);
                if !away.contains(&l) {
                    break l;
                }
            };
            away.push(leaf);
            events.push(ScenarioEvent::leave(secs, 0, leaf));
        }
    }
    events
}

// ---------------------------------------------------------------------
// Canonical dynamic scenarios (golden-pinned)
// ---------------------------------------------------------------------

/// The first golden dynamic scenario: case-5 drop-tail, 60 s, seed 1
/// (same base as the static golden), with a pinned literal schedule — a
/// leave, a degrade of the congested L2.1 with injected loss and a
/// bandwidth cap, a rejoin, and the restore.
pub fn canonical_churn_spec() -> ScenarioSpec {
    ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
        .with_gateway(GatewayKind::DropTail)
        .with_duration(SimDuration::from_secs(60))
        .with_seed(1)
        .with_events(vec![
            ScenarioEvent::leave(25.0, 0, 2),
            ScenarioEvent::degrade(30.0, "L2.1", 0.03, Some(800)),
            ScenarioEvent::join(40.0, 0, 2),
            ScenarioEvent::restore(45.0, "L2.1"),
        ])
}

/// The second golden dynamic scenario: the same base run under Poisson
/// background load plus one scheduled burst.
pub fn canonical_bgload_spec() -> ScenarioSpec {
    ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
        .with_gateway(GatewayKind::DropTail)
        .with_duration(SimDuration::from_secs(60))
        .with_seed(1)
        .with_background_load(2.0, 20.0)
        .with_events(vec![ScenarioEvent::background_burst(30.0, 5, 15)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_every_command() {
        let events = vec![
            ScenarioEvent::join(10.0, 0, 3),
            ScenarioEvent::leave(12.5, 1, 26),
            ScenarioEvent::degrade(15.0, "L2.1", 0.05, Some(500)),
            ScenarioEvent::degrade(16.0, "L1", 0.0, None),
            ScenarioEvent::restore(20.0, "L2.1"),
            ScenarioEvent::background_burst(22.0, 7, 40),
        ];
        let text = events_json(&events).pretty();
        let back = events_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn object_wrapper_with_events_array_is_accepted() {
        let obj = Json::obj(vec![(
            "events",
            events_json(&[ScenarioEvent::restore(5.0, "L1")]),
        )]);
        let back = events_from_json(&obj).unwrap();
        assert_eq!(back, vec![ScenarioEvent::restore(5.0, "L1")]);
    }

    #[test]
    fn parse_errors_name_the_event_and_field() {
        let bad = Json::parse(r#"[{"t_secs": 5.0, "command": "link_degrade"}]"#).unwrap();
        let err = events_from_json(&bad).unwrap_err();
        assert!(err.contains("event 0") && err.contains("link"), "{err}");
        let unknown = Json::parse(r#"[{"t_secs": 5.0, "command": "reboot"}]"#).unwrap();
        let err = events_from_json(&unknown).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn synth_churn_is_deterministic_and_windowed() {
        let w = SimDuration::from_secs(20);
        let d = SimDuration::from_secs(120);
        let a = synth_churn(0.5, 7, w, d);
        let b = synth_churn(0.5, 7, w, d);
        assert_eq!(a, b, "same inputs must give the same schedule");
        assert_ne!(a, synth_churn(0.5, 8, w, d), "seed must matter");
        assert!(!a.is_empty(), "0.5 Hz over 100 s should produce events");
        for ev in &a {
            assert!(
                ev.at > w && ev.at < d,
                "event at {:?} outside window",
                ev.at
            );
            assert!(matches!(
                ev.command,
                EventCommand::ReceiverJoin { session: 0, .. }
                    | EventCommand::ReceiverLeave { session: 0, .. }
            ));
        }
        // Leave/join balance: a leaf never leaves twice without rejoining.
        let mut away = std::collections::BTreeSet::new();
        for ev in &a {
            match ev.command {
                EventCommand::ReceiverLeave { leaf, .. } => {
                    assert!(away.insert(leaf), "double leave of leaf {leaf}");
                }
                EventCommand::ReceiverJoin { leaf, .. } => {
                    assert!(away.remove(&leaf), "join of a present leaf {leaf}");
                }
                _ => unreachable!(),
            }
            assert!(away.len() <= 13, "too many leaves away at once");
        }
    }

    #[test]
    fn canonical_specs_build() {
        let churn = canonical_churn_spec().build();
        assert_eq!(churn.events.len(), 4);
        assert!(churn.bg_load.is_none());
        let bg = canonical_bgload_spec().build();
        assert_eq!(bg.events.len(), 1);
        assert!(bg.bg_load.is_some());
    }
}
